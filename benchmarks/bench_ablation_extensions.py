"""Ablations beyond the paper's figures, for design choices DESIGN.md
calls out, plus the DNB extension design.

1. **Prefetcher ablation** — the stride prefetcher is part of the Table I
   memory system; quantify how much of every core's performance it
   carries (and that the *relative* scheduler ordering survives without it).
2. **DNB extension** — the hybrid Delay-and-Bypass design from the related
   work (§VII), positioned against CES/Ballerino/OoO.
"""

import dataclasses

from conftest import run_once

from repro.analysis import format_table, geomean
from repro.core import config_for
from repro.workloads.suite import SUITE_NAMES

STREAMY = ("stream_triad", "stencil3", "gather_stride", "matmul_tile")


def collect_prefetch(runner):
    out = {}
    for arch in ("inorder", "ballerino", "ooo"):
        base_cfg = config_for(arch)
        nopf_hier = dataclasses.replace(base_cfg.hierarchy, prefetch=False)
        nopf_cfg = dataclasses.replace(
            base_cfg, hierarchy=nopf_hier, name=f"{arch}-nopf"
        )
        out[arch] = {
            "with": geomean([
                runner.run(w, base_cfg).ipc for w in STREAMY
            ]),
            "without": geomean([
                runner.run(w, nopf_cfg).ipc for w in STREAMY
            ]),
        }
    return out


def collect_dnb(runner):
    speedups = {}
    for arch in ("casino", "spq", "ces", "dnb", "ballerino", "ooo"):
        speedups[arch] = geomean([
            runner.run_arch(w, "inorder").seconds
            / runner.run_arch(w, arch).seconds
            for w in SUITE_NAMES
        ])
    return speedups


def test_prefetcher_ablation(runner, benchmark):
    data = run_once(benchmark, lambda: collect_prefetch(runner))
    rows = [
        [arch, d["with"], d["without"], d["with"] / d["without"]]
        for arch, d in data.items()
    ]
    print()
    print(format_table(
        ["arch", "IPC w/ prefetch", "IPC w/o", "gain"],
        rows,
        title="Ablation: stride prefetcher on streaming kernels (geomean IPC)",
    ))
    # prefetching matters on streaming code for every design...
    for arch, d in data.items():
        assert d["with"] > d["without"]
    # ...and the scheduler ordering survives without it
    assert data["ooo"]["without"] > data["inorder"]["without"]


def test_extension_schedulers(runner, benchmark):
    data = run_once(benchmark, lambda: collect_dnb(runner))
    rows = [[arch, speedup] for arch, speedup in data.items()]
    print()
    print(format_table(
        ["design", "speedup over InO (geomean)"], rows,
        title="Extensions: DNB and SPQ vs the paper's designs",
    ))
    # the DNB hybrid lands between CASINO and the full OoO core
    assert data["casino"] < data["dnb"] <= data["ooo"] * 1.01
    # with a quarter-size OoO IQ it cannot beat Ballerino's full window
    assert data["dnb"] <= data["ballerino"] * 1.05
    # SPQ (balance-only steering, head-only issue) beats CASINO but not
    # the dependence-aware clustered designs
    assert data["casino"] < data["spq"]
    assert data["spq"] <= data["ballerino"] * 1.02
