"""Figure 3c: decode-to-issue cycle breakdown on InO / CES / CASINO / OoO.

Per instruction class (Ld = loads, LdC = load-dependent, Rst = the rest),
the average decode->dispatch, dispatch->ready and ready->issue delays.
Paper observations reproduced here:

* CES has by far the largest decode->dispatch delay (steering stalls);
* CASINO's Rst ops see small dispatch->ready *and* ready->issue delays
  (the S-IQ filters them), but LdC ops wait a long time;
* OoO's ready->issue delays are near zero for everything.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.stats import CLASSES, SEGMENTS
from repro.workloads.suite import SUITE_NAMES

ARCHES = ("inorder", "ces", "casino", "ooo")


def collect(runner):
    """Suite-weighted average breakdown per arch and class."""
    out = {}
    for arch in ARCHES:
        sums = {k: {s: 0.0 for s in SEGMENTS} for k in CLASSES}
        counts = {k: 0 for k in CLASSES}
        for workload in SUITE_NAMES:
            breakdown = runner.run_arch(workload, arch).stats.breakdown
            for klass in CLASSES:
                counts[klass] += breakdown.counts[klass]
                for segment in SEGMENTS:
                    sums[klass][segment] += breakdown.sums[klass][segment]
        out[arch] = {
            klass: {
                segment: sums[klass][segment] / max(1, counts[klass])
                for segment in SEGMENTS
            }
            for klass in CLASSES
        }
    return out


def test_fig03_breakdown(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    rows = []
    for arch in ARCHES:
        for klass in CLASSES:
            segs = data[arch][klass]
            rows.append(
                [arch, klass]
                + [segs[s] for s in SEGMENTS]
                + [sum(segs.values())]
            )
    print()
    print(format_table(
        ["arch", "class", "dec->disp", "disp->ready", "ready->issue", "total"],
        rows,
        title="Figure 3c: average decode-to-issue cycles by class",
        float_fmt="{:.1f}",
    ))

    # OoO and CES issue/ready Rst instructions almost immediately after
    # dispatch; CASINO's last in-order IQ delays them (paper SII-C)
    assert data["ooo"]["Rst"]["dispatch_to_ready"] < 20
    assert data["ces"]["Rst"]["dispatch_to_ready"] < 20
    assert (
        data["casino"]["Rst"]["dispatch_to_ready"]
        > 3 * data["ooo"]["Rst"]["dispatch_to_ready"]
    )
    # dynamic scheduling issues ready instructions promptly; the in-order
    # core's head-of-line blocking shows up as ready->issue delay
    assert data["ooo"]["Rst"]["ready_to_issue"] < 3.0
    assert data["ces"]["Rst"]["ready_to_issue"] < 3.0
    assert (
        data["inorder"]["Rst"]["ready_to_issue"]
        > 5 * data["ooo"]["Rst"]["ready_to_issue"]
    )
    # load consumers spend a long time waiting for memory on every design
    for arch in ARCHES:
        assert data[arch]["LdC"]["dispatch_to_ready"] > 50
    # the in-order core has the worst front-end backpressure overall
    assert all(
        data["inorder"]["Rst"]["decode_to_dispatch"]
        > data[arch]["Rst"]["decode_to_dispatch"]
        for arch in ("ces", "casino", "ooo")
    )
