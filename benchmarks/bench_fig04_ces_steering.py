"""Figure 4: breakdown of instruction-steering outcomes in CES (8 P-IQs).

Paper: ~27% of steering attempts follow a dependence chain ([Steer] DC);
the rest allocate a new P-IQ or stall — and ready-at-dispatch instructions
cause the large majority of allocations (72%) and stalls (79%).
"""

from conftest import run_once

from repro.analysis import format_table
from repro.workloads.suite import SUITE_NAMES

KEYS = ("steer_dc", "alloc_ready", "alloc_nonready", "stall_ready",
        "stall_nonready")


def collect(runner):
    per_workload = {}
    for workload in SUITE_NAMES:
        sched = runner.run_arch(workload, "ces").stats.scheduler
        total = sum(sched[k] for k in KEYS) or 1
        per_workload[workload] = {k: sched[k] / total for k in KEYS}
        per_workload[workload]["speedup"] = (
            runner.run_arch(workload, "inorder").seconds
            / runner.run_arch(workload, "ces").seconds
        )
    return per_workload


def test_fig04_ces_steering(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    # sort by [Stall] Ready as the paper's x-axis does
    order = sorted(SUITE_NAMES, key=lambda w: data[w]["stall_ready"])
    rows = [
        [w] + [data[w][k] for k in KEYS] + [data[w]["speedup"]]
        for w in order
    ]
    print()
    print(format_table(
        ["workload", "[Steer]DC", "[Alloc]Rdy", "[Alloc]NRdy",
         "[Stall]Rdy", "[Stall]NRdy", "speedup/InO"],
        rows,
        title="Figure 4: CES steering outcome fractions "
              "(sorted by ready-caused stalls)",
        float_fmt="{:.2f}",
    ))
    # aggregate shape: allocations dominated by ready-at-dispatch ops
    alloc_ready = sum(data[w]["alloc_ready"] for w in SUITE_NAMES)
    alloc_nonready = sum(data[w]["alloc_nonready"] for w in SUITE_NAMES)
    assert alloc_ready > alloc_nonready
    # dependence-chain steering is a meaningful minority, as in the paper
    mean_dc = sum(data[w]["steer_dc"] for w in SUITE_NAMES) / len(SUITE_NAMES)
    assert 0.05 < mean_dc < 0.7
