"""Figure 6: architectural bottleneck analysis of the Step-2 design.

6a — breakdown of cycles at the P-IQ heads: actually issuing, blocked on an
M-dependence, waiting for operands, losing port arbitration, or empty.
Paper: P-IQs issue only ~6% of head-cycles and ~9% of the stalls are
M-dependent loads waiting for their producer stores (measured on the
*Step-1* design, before MDA steering removes them).

6b — IPC sensitivity of Step 2 to the number and size of P-IQs.
Paper: performance is very sensitive to the P-IQ *count*, much less to
their *size*.
"""

from conftest import run_once

from repro.analysis import format_table, geomean
from repro.workloads.suite import SUITE_NAMES

HEAD_KEYS = ("issue", "wait_mdep", "wait_operand", "port_conflict", "empty")
COUNTS = (2, 4, 6, 8, 11)
SIZES = (6, 12, 24)

#: The sensitivity study uses the scheduling-bound kernels; purely serial
#: or bandwidth-bound kernels dilute the signal the figure is about.
SENSITIVE_KERNELS = (
    "matmul_tile",
    "hash_probe",
    "dag_wide",
    "mixed_int_fp",
    "histogram",
    "stencil3",
    "spill_fill",
)


def collect_6a(runner):
    per_arch = {}
    for arch in ("ballerino_step1", "ballerino_step2"):
        totals = {k: 0 for k in HEAD_KEYS}
        for workload in SUITE_NAMES:
            sched = runner.run_arch(workload, arch).stats.scheduler
            for key in HEAD_KEYS:
                totals[key] += sched[f"head_{key}"]
        total = sum(totals.values()) or 1
        per_arch[arch] = {k: v / total for k, v in totals.items()}
    return per_arch


def collect_6b(runner):
    ipc = {}
    for count in COUNTS:
        ipc[("count", count)] = geomean([
            runner.run_arch(w, "ballerino_step2", num_piqs=count).ipc
            for w in SENSITIVE_KERNELS
        ])
    for size in SIZES:
        ipc[("size", size)] = geomean([
            runner.run_arch(w, "ballerino_step2", piq_size=size).ipc
            for w in SENSITIVE_KERNELS
        ])
    return ipc


def test_fig06a_piq_head_breakdown(runner, benchmark):
    data = run_once(benchmark, lambda: collect_6a(runner))
    rows = [
        [arch] + [data[arch][k] for k in HEAD_KEYS]
        for arch in data
    ]
    print()
    print(format_table(
        ["design"] + list(HEAD_KEYS), rows,
        title="Figure 6a: P-IQ head-cycle breakdown (fraction of P-IQ-cycles)",
        float_fmt="{:.3f}",
    ))
    step1 = data["ballerino_step1"]
    step2 = data["ballerino_step2"]
    # P-IQs actually issue in only a small fraction of head-cycles
    assert step1["issue"] < 0.35
    # M-dependence stalls exist before MDA steering and shrink with it
    assert step1["wait_mdep"] > 0
    assert step2["wait_mdep"] <= step1["wait_mdep"]


def test_fig06b_piq_sensitivity(runner, benchmark):
    data = run_once(benchmark, lambda: collect_6b(runner))
    rows = [["P-IQ count", count, data[("count", count)]] for count in COUNTS]
    rows += [["P-IQ size", size, data[("size", size)]] for size in SIZES]
    print()
    print(format_table(
        ["sweep", "value", "geomean IPC"], rows,
        title="Figure 6b: Step-2 IPC sensitivity to P-IQ count vs size",
    ))
    # sensitivity to count: clear swing from 2 -> 11 queues
    count_gain = data[("count", 11)] / data[("count", 2)]
    assert count_gain > 1.08
    # sensitivity to size: small swing from 6 -> 24 entries
    size_gain = data[("size", 24)] / data[("size", 6)]
    assert size_gain < count_gain
    assert data[("count", 8)] >= data[("count", 4)]
