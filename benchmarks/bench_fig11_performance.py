"""Figure 11: performance of 8-wide designs, normalised to the in-order core.

Paper result: CES 2.4x, CASINO 2.1x, FXA 2.8x, Ballerino 2.7x and
Ballerino-12 2.8x over InO — Ballerino-12 within ~2% of OoO.  Absolute
multipliers depend on the workload suite; the *ordering* and the
Ballerino-12-vs-OoO gap are the reproduced shape.
"""

from conftest import run_once

from repro.analysis import format_table, geomean
from repro.core import FIG11_ARCHES, config_for
from repro.workloads.suite import SUITE_NAMES


def collect(runner):
    data = {}
    for workload in SUITE_NAMES:
        base = runner.run_arch(workload, "inorder")
        data[workload] = {
            arch: base.seconds / runner.run_arch(workload, arch).seconds
            for arch in FIG11_ARCHES
        }
    return data


def test_fig11_performance(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    rows = [
        [workload] + [data[workload][arch] for arch in FIG11_ARCHES]
        for workload in SUITE_NAMES
    ]
    means = {
        arch: geomean([data[w][arch] for w in SUITE_NAMES])
        for arch in FIG11_ARCHES
    }
    rows.append(["GEOMEAN"] + [means[arch] for arch in FIG11_ARCHES])
    print()
    print(format_table(
        ["workload"] + list(FIG11_ARCHES), rows,
        title="Figure 11: speedup over the 8-wide in-order core",
        float_fmt="{:.2f}",
    ))
    # reproduced shape assertions
    assert means["casino"] < means["ces"] < means["ooo"]
    assert means["ballerino"] > means["ces"]
    assert means["ballerino12"] >= means["ballerino"]
    # Ballerino-12 within a few percent of OoO (paper: within 2%)
    assert means["ballerino12"] / means["ooo"] > 0.93
    # oldest-first is a small gain over plain OoO (paper: ~2%)
    assert means["ooo_oldest"] / means["ooo"] > 0.98
