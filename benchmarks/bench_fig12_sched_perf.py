"""Figure 12: scheduling performance — decode-to-issue breakdown with
Ballerino included.

Paper observations reproduced:

* Ballerino's decode->dispatch delay is far below CES's (the S-IQ removes
  the steering stalls that block CES's dispatch);
* Ballerino's ready->issue delay for load consumers (LdC) is near zero,
  like CES (dependence heads issue as soon as the load returns);
* load-independent (Rst) ops in Ballerino may see a small ready->issue
  delay from steering stalls in the middle of the S-IQ.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.stats import CLASSES, SEGMENTS
from repro.workloads.suite import SUITE_NAMES

ARCHES = ("ces", "casino", "ballerino", "ooo")


def collect(runner):
    out = {}
    for arch in ARCHES:
        sums = {k: {s: 0.0 for s in SEGMENTS} for k in CLASSES}
        counts = {k: 0 for k in CLASSES}
        for workload in SUITE_NAMES:
            breakdown = runner.run_arch(workload, arch).stats.breakdown
            for klass in CLASSES:
                counts[klass] += breakdown.counts[klass]
                for segment in SEGMENTS:
                    sums[klass][segment] += breakdown.sums[klass][segment]
        out[arch] = {
            klass: {
                segment: sums[klass][segment] / max(1, counts[klass])
                for segment in SEGMENTS
            }
            for klass in CLASSES
        }
    return out


def test_fig12_scheduling_performance(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    rows = []
    for arch in ARCHES:
        for klass in CLASSES:
            segs = data[arch][klass]
            rows.append([arch, klass] + [segs[s] for s in SEGMENTS])
    print()
    print(format_table(
        ["arch", "class", "dec->disp", "disp->ready", "ready->issue"],
        rows,
        title="Figure 12: decode-to-issue breakdown incl. Ballerino",
        float_fmt="{:.1f}",
    ))
    # Ballerino's front end is much less blocked than CES's
    for klass in CLASSES:
        assert (
            data["ballerino"][klass]["decode_to_dispatch"]
            < data["ces"][klass]["decode_to_dispatch"]
        )
    # LdC ready->issue is near zero for the dependence-based designs
    assert data["ballerino"]["LdC"]["ready_to_issue"] < 5
    assert data["ces"]["LdC"]["ready_to_issue"] < 5
    # Ballerino tracks OoO's LdC operand-wait within a modest factor
    assert (
        data["ballerino"]["LdC"]["dispatch_to_ready"]
        < 2.0 * data["ooo"]["LdC"]["dispatch_to_ready"]
    )
