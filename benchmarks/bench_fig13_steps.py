"""Figure 13: performance impact of each proposed technique, step by step.

CES -> CES+MDA -> Step 1 (S-IQ + P-IQs) -> Step 2 (+MDA steering)
-> Step 3 (+P-IQ sharing = Ballerino) -> Step 3 without implementation
constraints (ideal sharing).

Paper: +4pp (MDA on CES), +7pp (S-IQ), +5pp (MDA), +13pp (sharing), and
the ideal design is only ~5pp above the constrained one.
"""

from conftest import run_once

from repro.analysis import format_table, geomean
from repro.core import FIG13_ARCHES
from repro.workloads.suite import SUITE_NAMES


def collect(runner):
    speedups = {}
    for arch in FIG13_ARCHES:
        speedups[arch] = geomean([
            runner.run_arch(w, "inorder").seconds
            / runner.run_arch(w, arch).seconds
            for w in SUITE_NAMES
        ])
    return speedups


def test_fig13_step_by_step(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    rows = [[arch, data[arch]] for arch in FIG13_ARCHES]
    print()
    print(format_table(
        ["design", "speedup over InO"], rows,
        title="Figure 13: step-by-step technique impact (geomean)",
        float_fmt="{:.3f}",
    ))
    # each step helps (or at worst is neutral within noise)
    assert data["ces_mda"] >= data["ces"] * 0.99
    assert data["ballerino_step1"] >= data["ces"] * 0.99
    assert data["ballerino_step2"] >= data["ballerino_step1"] * 0.99
    assert data["ballerino"] >= data["ballerino_step2"] * 0.99
    # the full design must be a real improvement over plain CES
    assert data["ballerino"] > data["ces"]
    # the implementation constraints cost little vs ideal sharing
    assert data["ballerino_ideal"] <= data["ballerino"] * 1.08
