"""Figure 14: which IQ issues the instructions, per Ballerino variant.

Paper: the S-IQ speculatively issues ~41% of dynamic instructions in
Step 1, and P-IQ sharing (Step 3) lets the P-IQ cluster issue several
percentage points more than Step 2, feeding the S-IQ more ready work.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.workloads.suite import SUITE_NAMES

STEPS = ("ballerino_step1", "ballerino_step2", "ballerino")


def collect(runner):
    mix = {}
    for arch in STEPS:
        siq = piq = 0
        for workload in SUITE_NAMES:
            sched = runner.run_arch(workload, arch).stats.scheduler
            siq += sched["issued_siq"]
            piq += sched["issued_piq"]
        total = siq + piq
        mix[arch] = {"siq": siq / total, "piq": piq / total, "total": total}
    return mix


def test_fig14_issue_mix(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    rows = [
        [arch, data[arch]["siq"], data[arch]["piq"]]
        for arch in STEPS
    ]
    print()
    print(format_table(
        ["design", "S-IQ fraction", "P-IQ fraction"], rows,
        title="Figure 14: fraction of instructions issued per IQ type",
        float_fmt="{:.3f}",
    ))
    for arch in STEPS:
        # the S-IQ filters a large minority of instructions (paper: ~41%)
        assert 0.15 < data[arch]["siq"] < 0.75
    # sharing must not reduce the P-IQ cluster's issue share
    assert data["ballerino"]["piq"] >= data["ballerino_step2"]["piq"] * 0.9
