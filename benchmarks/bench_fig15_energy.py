"""Figure 15: core-wide energy breakdown, normalised to OoO.

Paper: CES and Ballerino land around 0.8x of the OoO core's energy;
CASINO burns more scheduling energy than CES/Ballerino (multi-ported
S-IQs + inter-queue copies); FXA keeps a full out-of-order IQ and stays
closest to OoO.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core import config_for
from repro.energy import CATEGORIES, EnergyModel
from repro.workloads.suite import SUITE_NAMES

ARCHES = ("ces", "casino", "fxa", "ballerino", "ballerino12", "ooo")


def collect(runner):
    model = EnergyModel()
    totals = {arch: {cat: 0.0 for cat in CATEGORIES} for arch in ARCHES}
    for arch in ARCHES:
        cfg = config_for(arch)
        for workload in SUITE_NAMES:
            report = model.evaluate(runner.run_arch(workload, arch), cfg)
            for cat, pj in report.categories.items():
                totals[arch][cat] += pj
    return totals


def test_fig15_energy_breakdown(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    ooo_total = sum(data["ooo"].values())
    rows = []
    for arch in ARCHES:
        row = [arch] + [data[arch][cat] / ooo_total for cat in CATEGORIES]
        row.append(sum(data[arch].values()) / ooo_total)
        rows.append(row)
    print()
    print(format_table(
        ["arch"] + [c.replace(" ", "") for c in CATEGORIES] + ["TOTAL"],
        rows,
        title="Figure 15: core energy (suite total) normalised to OoO",
        float_fmt="{:.3f}",
    ))
    total = {arch: sum(data[arch].values()) / ooo_total for arch in ARCHES}
    # every in-order-IQ design undercuts the OoO core's energy
    for arch in ("ces", "ballerino", "ballerino12"):
        assert total[arch] < 1.0
    # Ballerino's scheduling energy is a fraction of OoO's
    assert data["ballerino"]["Schedule"] < 0.6 * data["ooo"]["Schedule"]
    # CASINO's scheduling energy exceeds CES's (copies + read ports)
    assert data["casino"]["Schedule"] > data["ces"]["Schedule"]
    # FXA's out-of-order back end keeps it the closest to OoO among
    # the energy-oriented designs
    assert data["fxa"]["Schedule"] > data["ballerino"]["Schedule"]
