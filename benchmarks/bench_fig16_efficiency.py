"""Figure 16: energy efficiency (performance per energy = 1/EDP) vs OoO.

Paper: Ballerino ~1.22x OoO, Ballerino-12 ~1.20x, FXA ~1.17x,
CES ~1.12x, CASINO ~0.8x (it is simply too slow at 8-wide).
"""

from conftest import run_once

from repro.analysis import format_table, geomean
from repro.core import config_for
from repro.energy import EnergyModel
from repro.workloads.suite import SUITE_NAMES

ARCHES = ("ces", "casino", "fxa", "ballerino", "ballerino12", "ooo")


def collect(runner):
    model = EnergyModel()
    efficiency = {}
    for arch in ARCHES:
        cfg = config_for(arch)
        ratios = []
        for workload in SUITE_NAMES:
            mine = model.evaluate(runner.run_arch(workload, arch), cfg)
            base = model.evaluate(
                runner.run_arch(workload, "ooo"), config_for("ooo")
            )
            ratios.append(mine.efficiency / base.efficiency)
        efficiency[arch] = geomean(ratios)
    return efficiency


def test_fig16_efficiency(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    rows = [[arch, data[arch]] for arch in ARCHES]
    print()
    print(format_table(
        ["arch", "1/EDP vs OoO (geomean)"], rows,
        title="Figure 16: energy efficiency normalised to OoO",
        float_fmt="{:.3f}",
    ))
    # headline: Ballerino variants beat OoO on efficiency
    assert data["ballerino"] > 1.0
    assert data["ballerino12"] > 1.0
    # and beat CES (faster at similar energy) and CASINO (far faster)
    assert data["ballerino"] > data["casino"]
    assert data["ballerino12"] >= data["ces"] * 0.98
    assert data["ooo"] == 1.0
