"""Figure 17a: issue-width scaling (2/4/8/10-wide) over the 2-wide InO core.

Paper: CASINO shines at 2-wide but scales poorly; CES and Ballerino scale
well (they track many chains); Ballerino beats CES at every width; beyond
8-wide, InO and CASINO gain almost nothing while the others gain ~5%.

Speedups are measured in execution *time* (frequency differs per width,
Table I).  A reduced kernel set keeps the 24-config sweep tractable.
"""

from conftest import run_once

from repro.analysis import format_table, geomean

ARCHES = ("inorder", "casino", "ces", "ballerino", "ooo")
WIDTHS = (2, 4, 8, 10)
KERNELS = (
    "matmul_tile",
    "hash_probe",
    "dag_wide",
    "mixed_int_fp",
    "histogram",
    "stencil3",
)


def collect(runner):
    speedups = {}
    for width in WIDTHS:
        for arch in ARCHES:
            speedups[(arch, width)] = geomean([
                runner.run_arch(w, "inorder", width=2).seconds
                / runner.run_arch(w, arch, width=width).seconds
                for w in KERNELS
            ])
    return speedups


def test_fig17a_width_scaling(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    rows = [
        [arch] + [data[(arch, width)] for width in WIDTHS]
        for arch in ARCHES
    ]
    print()
    print(format_table(
        ["arch"] + [f"{w}-wide" for w in WIDTHS], rows,
        title="Figure 17a: speedup over 2-wide InO vs issue width",
        float_fmt="{:.2f}",
    ))
    # everything scales up with width...
    for arch in ARCHES:
        assert data[(arch, 8)] > data[(arch, 2)]
    # ...but InO gains little beyond 8-wide
    assert data[("inorder", 10)] < data[("inorder", 8)] * 1.06
    # Ballerino at least matches CES at every width
    for width in WIDTHS:
        assert data[("ballerino", width)] >= data[("ces", width)] * 0.97
    # beyond 8-wide, InO and CASINO gain almost nothing while the
    # dependence-tracking designs keep scaling (paper: 5-6%)
    casino_gain_10 = data[("casino", 10)] / data[("casino", 8)]
    for arch in ("ces", "ballerino", "ooo"):
        assert data[(arch, 10)] / data[(arch, 8)] > casino_gain_10
    # CASINO stays the weakest dynamic scheduler at every width >= 4
    for width in (4, 8, 10):
        assert data[("casino", width)] < data[("ces", width)]
        assert data[("casino", width)] < data[("ballerino", width)]
