"""Figure 17b: frequency/voltage scaling of Ballerino and OoO vs CES.

The paper's four levels L4..L1 = [3.4 GHz, 1.04 V] .. [2.8 GHz, 0.96 V].
Reproduced shape: at a matched power budget or matched performance,
Ballerino can run one level down and still beat CES/OoO on efficiency.
"""

from conftest import run_once

from repro.analysis import format_table, geomean
from repro.core import config_for
from repro.energy import DVFS_LEVELS, EnergyModel, evaluate_level
from repro.workloads.suite import SUITE_NAMES

ARCHES = ("ces", "ballerino", "ooo")
LEVELS = ("L4", "L3", "L2", "L1")


def collect(runner):
    """Per (arch, level): suite-total seconds, energy, power, 1/EDP."""
    model = EnergyModel()
    out = {}
    for arch in ARCHES:
        cfg = config_for(arch)
        for level in LEVELS:
            seconds = energy = 0.0
            for workload in SUITE_NAMES:
                point = evaluate_level(
                    runner.run_arch(workload, arch), cfg, level, model
                )
                seconds += point.seconds
                energy += point.energy_joules
            out[(arch, level)] = {
                "seconds": seconds,
                "energy": energy,
                "power": energy / seconds,
                "efficiency": 1.0 / (energy * seconds),
            }
    return out


def test_fig17b_dvfs(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    ces_l4 = data[("ces", "L4")]
    rows = []
    for arch in ARCHES:
        for level in LEVELS:
            d = data[(arch, level)]
            rows.append([
                arch, level,
                ces_l4["seconds"] / d["seconds"],   # speedup vs CES@L4
                d["power"] / ces_l4["power"],
                d["energy"] / ces_l4["energy"],
                d["efficiency"] / ces_l4["efficiency"],
            ])
    print()
    print(format_table(
        ["arch", "level", "speedup", "power", "energy", "1/EDP"],
        rows,
        title="Figure 17b: DVFS levels, all normalised to CES @ L4",
        float_fmt="{:.3f}",
    ))
    # lower levels are slower and lower-power for every design
    for arch in ARCHES:
        assert data[(arch, "L1")]["seconds"] > data[(arch, "L4")]["seconds"]
        assert data[(arch, "L1")]["power"] < data[(arch, "L4")]["power"]
    # Ballerino matches-or-beats CES at the same level on both axes
    assert data[("ballerino", "L4")]["seconds"] <= ces_l4["seconds"] * 1.01
    assert (
        data[("ballerino", "L4")]["efficiency"]
        >= ces_l4["efficiency"] * 0.99
    )
    # OoO pays a power premium at every level for near-identical speed...
    assert data[("ooo", "L4")]["power"] > ces_l4["power"] * 1.05
    # ...so Ballerino at full speed is still more efficient than OoO even
    # when OoO drops levels to save power (paper: +27% vs OoO@L3)
    for level in LEVELS:
        assert (
            data[("ballerino", "L4")]["efficiency"]
            > data[("ooo", level)]["efficiency"]
        )
