"""Figure 17c: Ballerino performance vs number of P-IQs, against OoO.

Paper: performance climbs steadily up to eleven P-IQs (Ballerino-12 lands
within ~2% of OoO) and flattens beyond.
"""

from conftest import run_once

from repro.analysis import format_table, geomean
from repro.workloads.suite import SUITE_NAMES

COUNTS = (3, 5, 7, 9, 11, 13, 15)


def collect(runner):
    speedups = {}
    ooo = {
        w: runner.run_arch(w, "ooo").seconds for w in SUITE_NAMES
    }
    for count in COUNTS:
        speedups[count] = geomean([
            ooo[w] / runner.run_arch(w, "ballerino", num_piqs=count).seconds
            for w in SUITE_NAMES
        ])
    return speedups


def test_fig17c_piq_count(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    rows = [[count, data[count]] for count in COUNTS]
    print()
    print(format_table(
        ["P-IQs", "performance vs OoO"], rows,
        title="Figure 17c: Ballerino performance vs P-IQ count "
              "(1.0 = the 8-wide OoO core)",
        float_fmt="{:.3f}",
    ))
    # performance rises with P-IQ count...
    assert data[11] > data[3]
    # ...approaches OoO by eleven queues (paper: within ~2%)...
    assert data[11] > 0.93
    # ...and saturates: adding queues past eleven buys little
    assert data[15] < data[11] * 1.03
    # monotone (within small noise) across the sweep
    for a, b in zip(COUNTS, COUNTS[1:]):
        assert data[b] >= data[a] * 0.99
