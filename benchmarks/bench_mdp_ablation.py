"""Section III-B claim: MDP removes ~96% of memory-order violations and
buys a large speedup on the baseline out-of-order core.

Measured on the aliasing-heavy kernels, where speculative loads actually
collide with in-flight stores.
"""

import dataclasses

from conftest import run_once

from repro.analysis import format_table, geomean
from repro.core import config_for
from repro.core.pipeline import simulate
from repro.workloads.suite import get_trace

KERNELS = ("histogram", "spill_fill")


def collect(runner):
    out = {}
    for workload in KERNELS:
        with_mdp = runner.run_arch(workload, "ooo")
        trace = get_trace(workload, runner.target_ops, runner.seed)
        no_mdp_cfg = dataclasses.replace(
            config_for("ooo"), mdp_enabled=False, name="ooo-8w-nomdp"
        )
        without = runner.run(workload, no_mdp_cfg)
        out[workload] = {
            "violations_mdp": with_mdp.stats.order_violations,
            "violations_none": without.stats.order_violations,
            "speedup": without.seconds / with_mdp.seconds,
        }
    return out


def test_mdp_ablation(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    rows = [
        [
            w,
            data[w]["violations_none"],
            data[w]["violations_mdp"],
            1 - data[w]["violations_mdp"] / max(1, data[w]["violations_none"]),
            data[w]["speedup"],
        ]
        for w in KERNELS
    ]
    print()
    print(format_table(
        ["workload", "violations w/o MDP", "with MDP", "reduction",
         "speedup from MDP"],
        rows,
        title="SIII-B: store-set MDP ablation on the OoO baseline",
        float_fmt="{:.2f}",
    ))
    for w in KERNELS:
        assert data[w]["violations_none"] > 0
        reduction = 1 - (
            data[w]["violations_mdp"] / data[w]["violations_none"]
        )
        # paper: ~96% reduction; require the bulk of violations removed
        assert reduction > 0.6
    # paper: 1.5x average speedup.  Individual kernels can regress (a
    # single static store pc makes the whole kernel one store set, so MDP
    # over-serialises histogram), but the aggregate win must be large.
    assert geomean([data[w]["speedup"] for w in KERNELS]) > 1.2
