"""Methodological check: the headline ordering is seed-stable.

The workload generator is seeded; this benchmark re-runs the Figure 11
comparison on three different data seeds (reduced kernel set) and asserts
that the paper's ordering — CASINO < CES <= Ballerino <= OoO — holds for
every seed, i.e. the reproduction's conclusions are not an artifact of
one particular random dataset.
"""

from conftest import run_once

from repro.analysis import ExperimentRunner, format_table, geomean
from repro.core import config_for

ARCHES = ("inorder", "casino", "ces", "ballerino", "ooo")
KERNELS = ("hash_probe", "dag_wide", "mixed_int_fp", "histogram")
SEEDS = (7, 101, 2024)


def collect(runner):
    data = {}
    for seed in SEEDS:
        base = {
            w: runner.run(w, config_for("inorder"), seed=seed).seconds
            for w in KERNELS
        }
        for arch in ARCHES:
            data[(arch, seed)] = geomean([
                base[w] / runner.run(w, config_for(arch), seed=seed).seconds
                for w in KERNELS
            ])
    return data


def test_seed_stability(runner, benchmark):
    data = run_once(benchmark, lambda: collect(runner))
    rows = [
        [arch] + [data[(arch, seed)] for seed in SEEDS]
        for arch in ARCHES
    ]
    print()
    print(format_table(
        ["arch"] + [f"seed {s}" for s in SEEDS], rows,
        title="Seed stability: speedup over InO per data seed",
    ))
    for seed in SEEDS:
        assert data[("casino", seed)] < data[("ces", seed)] * 1.02
        assert data[("ces", seed)] <= data[("ballerino", seed)] * 1.03
        assert data[("ballerino", seed)] <= data[("ooo", seed)] * 1.02
        assert data[("inorder", seed)] < data[("ballerino", seed)]
    # cross-seed spread of the headline ratio stays tight
    ratios = [data[("ballerino", s)] / data[("ooo", s)] for s in SEEDS]
    assert max(ratios) - min(ratios) < 0.10
