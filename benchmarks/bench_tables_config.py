"""Tables I and II: the evaluated configurations, regenerated from code.

These tables are configuration inventories rather than measurements; the
bench prints them from the presets in :mod:`repro.core.config` so the
report documents exactly what every other benchmark ran.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core import config_for

ARCHES = ("inorder", "ooo", "ces", "casino", "fxa", "ballerino", "ballerino12")


def collect():
    table1 = []
    for width in (2, 4, 8):
        cfg = config_for("ooo", width=width)
        table1.append([
            f"{width}-wide", cfg.frequency_ghz, cfg.decode_width,
            cfg.rob_size, cfg.lq_size, cfg.sq_size,
            f"{cfg.phys_int}i/{cfg.phys_fp}f", cfg.recovery_penalty,
        ])
    table2 = []
    for arch in ARCHES:
        sched = config_for(arch).scheduler
        if sched.kind in ("inorder", "ooo"):
            desc = f"{sched.iq_size}-entry unified IQ"
        elif sched.kind == "ces":
            desc = f"{sched.num_piqs} x {sched.piq_size}-entry P-IQ"
        elif sched.kind == "casino":
            desc = " -> ".join(str(s) for s in sched.casino_queues)
        elif sched.kind == "fxa":
            desc = f"{sched.ixu_depth}-stage IXU + {sched.iq_size}-entry OoO IQ"
        else:
            desc = (
                f"{sched.siq_size}-entry S-IQ + "
                f"{sched.num_piqs} x {sched.piq_size}-entry P-IQ"
            )
        table2.append([arch, sched.kind, desc])
    return table1, table2


def test_tables_1_and_2(benchmark):
    table1, table2 = run_once(benchmark, collect)
    print()
    print(format_table(
        ["core", "GHz", "dec", "ROB", "LQ", "SQ", "PRF", "penalty"],
        table1, title="Table I: core configurations",
        float_fmt="{:.1f}",
    ))
    print()
    print(format_table(
        ["arch", "kind", "scheduling window"],
        table2, title="Table II: scheduling-window configurations",
    ))
    # Table II invariant: every non-FXA design gets ~the same entry budget
    from repro.energy.model import _window_entries

    budget = {
        arch: _window_entries(config_for(arch)) for arch in ARCHES
    }
    assert budget["ooo"] == 96
    assert budget["ces"] == 96
    assert budget["casino"] == 96
    assert budget["ballerino"] == 92  # 8 S-IQ + 7x12 (paper's Table II)
    assert budget["fxa"] < budget["ooo"]  # half-size back end
