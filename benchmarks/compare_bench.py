"""Performance-regression gate: diff two perf-harness reports.

Compares a fresh ``perf_harness`` run (or an existing report passed via
``--new``) against a committed baseline ``BENCH*.json`` and exits
non-zero when any phase regressed — wall-clock seconds grew past
``--threshold`` times the baseline, or a throughput rate
(``sims_per_sec`` / ``kcycles_per_sec``) fell below baseline /
threshold.  Phases faster than ``--seconds-floor`` in both reports are
skipped as timer noise.

Reports must describe the same matrix (ops, workloads, arches); a
mismatch exits 2 instead of producing a meaningless diff.  A ``jobs``
or ``cpu_count`` difference is only warned about — those are
machine-dependent, and the serial phases stay comparable.  Likewise a
phase present in only one report (new harness phase, retired phase, or
a phase recorded as skipped on this machine) is warned about, never
failed on — snapshots from different harness versions stay diffable.

Usage (the CI perf gate; see docs/performance.md)::

    PYTHONPATH=src python benchmarks/compare_bench.py --smoke \
        --baseline BENCH_PR2.json --threshold 2.0

    # diff two saved reports without running anything
    python benchmarks/compare_bench.py --baseline OLD.json --new NEW.json

Exit codes: 0 = no regression, 1 = regression(s), 2 = incomparable
reports / missing baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: rate fields a phase may carry (higher is better)
RATE_KEYS = ("sims_per_sec", "kcycles_per_sec")

#: the work counter behind each rate — a rate only means something when
#: the phase actually did that work (see the zero-work guard below)
RATE_WORK_KEYS = {"sims_per_sec": "simulations", "kcycles_per_sec": "cycles"}


def find_baseline(root: Path = REPO_ROOT) -> Optional[Path]:
    """Newest committed ``BENCH*.json`` by name (BENCH_PR5 > BENCH_PR2)."""
    candidates = sorted(root.glob("BENCH*.json"))
    return candidates[-1] if candidates else None


def comparability_issues(
    baseline: dict, fresh: dict
) -> Tuple[List[str], List[str]]:
    """(hard mismatches, machine-dependent warnings) between two reports."""
    issues: List[str] = []
    warnings: List[str] = []
    for key in ("ops", "workloads", "arches", "simulations"):
        if baseline.get(key) != fresh.get(key):
            issues.append(
                f"{key}: baseline={baseline.get(key)!r} "
                f"new={fresh.get(key)!r}"
            )
    for key in ("jobs", "cpu_count"):
        if baseline.get(key) != fresh.get(key):
            warnings.append(
                f"{key} differ (baseline={baseline.get(key)!r} "
                f"new={fresh.get(key)!r}); parallel-phase numbers are "
                "machine-dependent"
            )
    warnings.extend(_host_warnings(baseline, fresh))
    return issues, warnings


def _host_warnings(baseline: dict, fresh: dict) -> List[str]:
    """Cross-host comparison warnings from the reports' host metadata.

    Wall-clock numbers only mean something within one host; a diff
    across interpreters or machines still runs (the matrix is the hard
    gate) but every differing identity field is called out.  Reports
    that predate the ``host`` block get a softer heads-up instead.
    """
    old_host, new_host = baseline.get("host"), fresh.get("host")
    if old_host is None and new_host is None:
        return []
    if old_host is None or new_host is None:
        which = "baseline" if old_host is None else "new report"
        return [f"{which} predates host metadata; cannot confirm both "
                "reports were measured on the same host"]
    out: List[str] = []
    for key in sorted(set(old_host) | set(new_host)):
        old_v, new_v = old_host.get(key), new_host.get(key)
        if old_v != new_v:
            out.append(
                f"cross-host comparison: host.{key} differs "
                f"(baseline={old_v!r} new={new_v!r}); wall-clock numbers "
                "are not comparable across hosts"
            )
    return out


def compare_reports(
    baseline: dict,
    fresh: dict,
    threshold: float = 1.5,
    seconds_floor: float = 0.05,
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Diff every phase present in both reports.

    Returns ``(rows, regressions)``: one row per phase (phase, old/new
    seconds, ratio, verdict) and a flat list of human-readable
    regression descriptions (empty = gate passes).

    A phase present in only one report — the harness grew a new phase,
    an old one was retired, or a machine-dependent phase was recorded
    as skipped (e.g. ``parallel_cold`` on a single-core runner) — gets
    a warning row but can never regress: snapshots from different
    harness versions stay diffable.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must exceed 1.0, got {threshold}")
    rows: List[Dict[str, object]] = []
    regressions: List[str] = []
    fresh_phases = fresh.get("phases", {})
    baseline_phases = baseline.get("phases", {})
    for phase in fresh_phases:
        if phase not in baseline_phases:
            rows.append({
                "phase": phase, "old_seconds": None,
                "new_seconds": fresh_phases[phase].get("seconds"),
                "ratio": None,
                "verdict": "warning: not in baseline (new phase)",
            })
    for phase, old in baseline_phases.items():
        new = fresh_phases.get(phase)
        if new is None or "seconds" not in new:
            why = ("skipped in new report: " + str(new["skipped"])
                   if new and "skipped" in new else "missing from new report")
            rows.append({
                "phase": phase, "old_seconds": old.get("seconds"),
                "new_seconds": None, "ratio": None,
                "verdict": f"warning: {why}",
            })
            continue
        if "seconds" not in old:
            rows.append({
                "phase": phase, "old_seconds": None,
                "new_seconds": new.get("seconds"), "ratio": None,
                "verdict": "warning: skipped in baseline",
            })
            continue
        old_s, new_s = float(old["seconds"]), float(new["seconds"])
        row: Dict[str, object] = {
            "phase": phase,
            "old_seconds": old_s,
            "new_seconds": new_s,
            "ratio": round(new_s / old_s, 2) if old_s > 0 else None,
            "verdict": "ok",
        }
        if max(old_s, new_s) < seconds_floor:
            row["verdict"] = "skipped (sub-floor, timer noise)"
            rows.append(row)
            continue
        bad: List[str] = []
        if old_s > 0 and new_s > old_s * threshold:
            bad.append(
                f"wall-clock {old_s:.3f}s -> {new_s:.3f}s "
                f"({new_s / old_s:.2f}x, threshold {threshold:.2f}x)"
            )
        for key in RATE_KEYS:
            old_rate, new_rate = old.get(key), new.get(key)
            if old_rate is None or new_rate is None:
                continue
            # Rates are only comparable when BOTH snapshots did work in
            # this phase.  Truthiness (`not old_rate`) used to stand in
            # for this check, conflating a 0.0 rate with a missing one:
            # 0.0-vs-0.0 silently passed, and a 0.0 baseline rate could
            # never fail any fresh value.  Gate on the underlying work
            # counter instead, then treat a fresh rate of 0 with real
            # work behind it as the regression it is.
            work_key = RATE_WORK_KEYS[key]
            if not old.get(work_key) or not new.get(work_key):
                continue
            old_r, new_r = float(old_rate), float(new_rate)
            if old_r <= 0:
                continue  # baseline rate rounded to zero: no reference
            if new_r <= 0:
                bad.append(f"{key} {old_rate} -> {new_rate} (stalled)")
            elif old_r > new_r * threshold:
                bad.append(
                    f"{key} {old_rate} -> {new_rate} "
                    f"({old_r / new_r:.2f}x slower)"
                )
        if bad:
            row["verdict"] = "REGRESSION: " + "; ".join(bad)
            regressions.append(f"{phase}: " + "; ".join(bad))
        rows.append(row)
    return rows, regressions


def format_rows(rows: List[Dict[str, object]]) -> str:
    header = f"{'phase':<22} {'old (s)':>9} {'new (s)':>9} {'ratio':>6}  verdict"
    lines = [header, "-" * len(header)]

    def seconds(value) -> str:
        return f"{value:>9.3f}" if isinstance(value, (int, float)) else f"{'—':>9}"

    for row in rows:
        ratio = row["ratio"]
        lines.append(
            f"{row['phase']:<22} {seconds(row['old_seconds'])} "
            f"{seconds(row['new_seconds'])} "
            f"{ratio if ratio is not None else 'n/a':>6}  {row['verdict']}"
        )
    return "\n".join(lines)


def _load(path) -> dict:
    return json.loads(Path(path).read_text())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline report (default: newest BENCH*.json "
                             "in the repo root)")
    parser.add_argument("--new", default=None, metavar="FILE",
                        help="compare this saved report instead of running "
                             "the harness")
    parser.add_argument("--smoke", action="store_true",
                        help="run the harness with its CI smoke matrix")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="workers for the fresh harness run "
                             "(default: cpu count, capped at 8)")
    parser.add_argument("--ops", type=int, default=None,
                        help="micro-ops per trace for the fresh run "
                             "(default: the baseline's ops)")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="slowdown ratio that fails the gate "
                             "(default 1.5)")
    parser.add_argument("--seconds-floor", type=float, default=0.05,
                        metavar="S",
                        help="skip phases under S seconds in both reports "
                             "(default 0.05)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the fresh report here")
    args = parser.parse_args(argv)

    baseline_path = args.baseline or find_baseline()
    if baseline_path is None:
        print("no BENCH*.json baseline found (pass --baseline)",
              file=sys.stderr)
        return 2
    baseline = _load(baseline_path)
    print(f"baseline: {baseline_path}")

    if args.new:
        fresh = _load(args.new)
        print(f"new:      {args.new}")
    else:
        # lazy import: keeps `--new A --new B` diffs stdlib-only and the
        # harness (which inserts src/ into sys.path) out of test collection
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        from perf_harness import run_harness

        ops = args.ops or baseline.get("ops") or 3000
        jobs = args.jobs or min(os.cpu_count() or 1, 8)
        print(f"running fresh harness (ops={ops}, jobs={jobs}, "
              f"smoke={args.smoke}) ...")
        fresh = run_harness(ops=ops, jobs=jobs, smoke=args.smoke)
    if args.out:
        Path(args.out).write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"wrote {args.out}")

    issues, warnings = comparability_issues(baseline, fresh)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if issues:
        print("reports are not comparable:", file=sys.stderr)
        for issue in issues:
            print(f"  - {issue}", file=sys.stderr)
        return 2

    rows, regressions = compare_reports(
        baseline, fresh,
        threshold=args.threshold, seconds_floor=args.seconds_floor,
    )
    print()
    print(format_rows(rows))
    print()
    if regressions:
        print(f"FAIL: {len(regressions)} phase(s) regressed past "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for regression in regressions:
            print(f"  - {regression}", file=sys.stderr)
        return 1
    print(f"OK: no phase regressed past {args.threshold:.2f}x "
          f"(floor {args.seconds_floor}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
