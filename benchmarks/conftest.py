"""Shared fixtures for the figure-reproduction benchmarks.

All benchmarks share one :class:`ExperimentRunner` whose disk cache lives in
``.bench_cache/`` at the repo root, so each (workload, config) simulation is
paid for exactly once across the whole ``pytest benchmarks/`` invocation.

Knobs: ``REPRO_BENCH_OPS`` (trace length, default 10000) and
``REPRO_BENCH_SEED`` control fidelity vs. runtime.
"""

import pytest

from repro.analysis import ExperimentRunner


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
