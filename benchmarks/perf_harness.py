"""Wall-clock performance harness for the simulator and experiment runner.

Times a small suite matrix under the experiment runner in five phases —
trace construction, serial cold run, lock-step sweep (same matrix, one
interleaved pass per workload group), parallel cold run, fully-cached
warm run — plus a single-simulation microbenchmark, and writes the
numbers to a JSON file (``--out``, or ``$REPRO_BENCH_OUT``, default
``BENCH.json``)::

    PYTHONPATH=src python benchmarks/perf_harness.py --smoke
    PYTHONPATH=src python benchmarks/perf_harness.py --jobs 8 --ops 20000

``benchmarks/compare_bench.py`` diffs two such reports and fails on
regressions (the CI perf gate; see docs/performance.md).

The JSON records wall-clock seconds, simulations per second, and cache
hits per phase (see docs/performance.md for how to read it).  ``--smoke``
shrinks the matrix for CI.  All phases use throwaway cache directories,
so the harness never pollutes (or benefits from) the repo's
``.bench_cache``.

On a single-core machine the parallel phase is recorded as skipped (a
process pool cannot beat serial there — its spawn/IPC overhead would
read as a fake regression) and the warm phase runs off the serial
phase's cache instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.runner import ExperimentRunner  # noqa: E402
from repro.core.config import config_for  # noqa: E402
from repro.core.pipeline import simulate  # noqa: E402
from repro.core.sampling import with_sampling  # noqa: E402
from repro.workloads.suite import SMOKE_NAMES, get_trace  # noqa: E402

SMOKE_ARCHES = ("ooo", "ballerino", "ces")
FULL_ARCHES = ("inorder", "ooo", "ces", "casino", "fxa", "ballerino", "dnb")

#: the sampled-vs-full speedup microbench: one long trace, knobs tuned so
#: ~4.5% of it is measured (3 windows) and the rest fast-forwarded with a
#: bounded warm-up stretch before each window (docs/performance.md)
SAMPLED_OPS = 200_000
SAMPLED_KNOBS = dict(period=67_000, window=3_000, warmup=0,
                     ff_warmup_ops=2_000)


def _phase(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def host_metadata() -> dict:
    """Where this report was measured — wall-clock numbers only compare
    within one host, so the report carries enough identity for
    ``compare_bench.py`` to warn on cross-host diffs."""
    import platform

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def run_harness(ops: int, jobs: int, smoke: bool) -> dict:
    workloads = SMOKE_NAMES if smoke else SMOKE_NAMES + ("mdep_chain", "dag_wide")
    arches = SMOKE_ARCHES if smoke else FULL_ARCHES
    tasks = [(w, config_for(a)) for a in arches for w in workloads]
    report = {
        "ops": ops,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "host": host_metadata(),
        "workloads": list(workloads),
        "arches": list(arches),
        "simulations": len(tasks),
        "phases": {},
    }

    def record(name, seconds, runner=None, sims=None):
        sims = runner.simulations_run if sims is None else sims
        report["phases"][name] = {
            "seconds": round(seconds, 3),
            "simulations": sims,
            "sims_per_sec": round(sims / seconds, 2) if seconds > 0 else None,
            "cache_hits": runner.cache_hits if runner is not None else 0,
        }

    # 0) trace construction (functional execution), so the cold phases
    #    below time *simulation*, not workload generation
    seconds, _ = _phase(lambda: [get_trace(w, ops, 7) for w in workloads])
    report["phases"]["trace_warm"] = {
        "seconds": round(seconds, 3), "traces": len(workloads)
    }

    single_core = (os.cpu_count() or 1) == 1

    # 1) serial cold: one cell at a time, lock-step tier OFF, so this
    #    phase stays comparable with snapshots taken before the tier
    #    existed and gives lockstep_sweep an honest baseline
    with tempfile.TemporaryDirectory() as cold_dir:
        runner = ExperimentRunner(target_ops=ops, cache_dir=cold_dir)
        seconds, _ = _phase(
            lambda: runner.run_many(tasks, jobs=1, lockstep=False))
        record("serial_cold", seconds, runner)
        if single_core:
            # 3) warm phase runs off the serial cache instead (below, it
            #    runs off the parallel phase's cache)
            warm = ExperimentRunner(target_ops=ops, cache_dir=cold_dir)
            seconds, _ = _phase(lambda: warm.run_many(tasks, jobs=jobs))
            record("warm_cached", seconds, warm)

    if single_core:
        # a process pool on one core only adds spawn + pickle overhead:
        # serial-vs-parallel would measure that noise, not scaling, so
        # the comparison is recorded as skipped rather than as a bogus
        # slowdown that would trip the regression gate
        report["phases"]["parallel_cold"] = {
            "skipped": "cpu_count == 1: parallel speedup is undefined "
                       "on a single core",
        }
        report["parallel_speedup"] = None
    else:
        with tempfile.TemporaryDirectory() as cold_dir:
            runner = ExperimentRunner(target_ops=ops, cache_dir=cold_dir)
            seconds, _ = _phase(lambda: runner.run_many(tasks, jobs=jobs))
            record("parallel_cold", seconds, runner)

            # 3) warm: everything served from the parallel run's cache
            warm = ExperimentRunner(target_ops=ops, cache_dir=cold_dir)
            seconds, _ = _phase(lambda: warm.run_many(tasks, jobs=jobs))
            record("warm_cached", seconds, warm)

        serial = report["phases"]["serial_cold"]["seconds"]
        parallel = report["phases"]["parallel_cold"]["seconds"]
        report["parallel_speedup"] = (
            round(serial / parallel, 2) if parallel else None)

    # 3b) lock-step sweep: same matrix, cold cache, but cells grouped by
    #     workload and advanced in one pass per group (repro.core.lockstep)
    with tempfile.TemporaryDirectory() as lockstep_dir:
        runner = ExperimentRunner(target_ops=ops, cache_dir=lockstep_dir)
        seconds, _ = _phase(
            lambda: runner.run_many(tasks, jobs=1, lockstep=True))
        record("lockstep_sweep", seconds, runner)
        report["phases"]["lockstep_sweep"]["lockstep_groups"] = (
            runner.lockstep_groups)
    serial = report["phases"]["serial_cold"]["seconds"]
    lockstep = report["phases"]["lockstep_sweep"]["seconds"]
    report["lockstep_speedup"] = (
        round(serial / lockstep, 2) if lockstep else None)

    # 4) single-simulation microbench (the event-driven wakeup fast path)
    trace = get_trace(workloads[0], ops, 7)
    for arch in ("ooo", "ballerino"):
        config = config_for(arch)
        seconds, result = _phase(lambda: simulate(trace, config))
        report["phases"][f"single_sim_{arch}"] = {
            "seconds": round(seconds, 3),
            "cycles": result.cycles,
            "kcycles_per_sec": round(result.cycles / seconds / 1000, 1),
        }

    # 5) sampled sweep: the same matrix through the sampled tier, cold
    #    cache — exercises dispatch + extrapolation end to end and pins
    #    its overhead in the regression gate
    sampled_tasks = [
        (w, with_sampling(config_for(a), period=1000, window=1000, warmup=0))
        for a in arches for w in workloads
    ]
    with tempfile.TemporaryDirectory() as sampled_dir:
        runner = ExperimentRunner(target_ops=ops, cache_dir=sampled_dir)
        seconds, _ = _phase(
            lambda: runner.run_many(sampled_tasks, jobs=1, lockstep=False))
        record("sampled_sweep", seconds, runner)

    # 6) sampled speedup: one long trace, full-detail vs sampled — the
    #    headline number (>= 10x with < 5% IPC error, docs/performance.md)
    long_trace = get_trace("stream_triad", SAMPLED_OPS, 7)
    full_cfg = config_for("ooo")
    seconds, full = _phase(lambda: simulate(long_trace, full_cfg))
    report["phases"]["single_full_200k"] = {
        "seconds": round(seconds, 3),
        "cycles": full.cycles,
        "kcycles_per_sec": round(full.cycles / seconds / 1000, 1),
    }
    sampled_cfg = with_sampling(full_cfg, **SAMPLED_KNOBS)
    seconds, sampled = _phase(lambda: simulate(long_trace, sampled_cfg))
    report["phases"]["single_sampled_200k"] = {
        "seconds": round(seconds, 3),
        "cycles": sampled.cycles,
        "kcycles_per_sec": round(sampled.cycles / seconds / 1000, 1),
        "windows": sampled.sampling["windows"],
        "measured_ops": sampled.sampling["measured_ops"],
    }
    full_s = report["phases"]["single_full_200k"]["seconds"]
    sampled_s = report["phases"]["single_sampled_200k"]["seconds"]
    report["sampled_speedup"] = (
        round(full_s / sampled_s, 2) if sampled_s else None)
    report["sampled_ipc_error"] = (
        round(abs(sampled.ipc - full.ipc) / full.ipc, 4) if full.ipc else None)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small matrix for CI (4 workloads x 3 arches)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="workers for the parallel phase "
                             "(default: cpu count, capped at 8)")
    parser.add_argument("--ops", type=int, default=None,
                        help="micro-ops per trace (default: 3000 smoke, "
                             "10000 full)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="output JSON path (default: $REPRO_BENCH_OUT "
                             "or BENCH.json)")
    args = parser.parse_args(argv)

    out = args.out or os.environ.get("REPRO_BENCH_OUT") or "BENCH.json"
    jobs = args.jobs if args.jobs else min(os.cpu_count() or 1, 8)
    ops = args.ops if args.ops else (3000 if args.smoke else 10_000)
    report = run_harness(ops=ops, jobs=jobs, smoke=args.smoke)
    Path(out).write_text(json.dumps(report, indent=2) + "\n")

    phases = report["phases"]
    print(f"wrote {out}")
    print(f"  serial cold    {phases['serial_cold']['seconds']:8.2f}s "
          f"({phases['serial_cold']['sims_per_sec']} sims/s)")
    print(f"  lockstep sweep {phases['lockstep_sweep']['seconds']:8.2f}s "
          f"({phases['lockstep_sweep']['lockstep_groups']} groups, "
          f"speedup {report['lockstep_speedup']}x)")
    if "skipped" in phases["parallel_cold"]:
        print(f"  parallel cold  skipped: {phases['parallel_cold']['skipped']}")
    else:
        print(f"  parallel cold  {phases['parallel_cold']['seconds']:8.2f}s "
              f"(jobs={jobs}, speedup {report['parallel_speedup']}x)")
    print(f"  warm cached    {phases['warm_cached']['seconds']:8.2f}s "
          f"({phases['warm_cached']['cache_hits']} hits)")
    for arch in ("ooo", "ballerino"):
        p = phases[f"single_sim_{arch}"]
        print(f"  single {arch:10s} {p['seconds']:6.2f}s "
              f"({p['kcycles_per_sec']} kcycles/s)")
    print(f"  sampled sweep  {phases['sampled_sweep']['seconds']:8.2f}s "
          f"({phases['sampled_sweep']['sims_per_sec']} sims/s)")
    print(f"  sampled 200k   "
          f"{phases['single_sampled_200k']['seconds']:8.2f}s vs "
          f"{phases['single_full_200k']['seconds']:.2f}s full "
          f"(speedup {report['sampled_speedup']}x, "
          f"IPC err {100 * report['sampled_ipc_error']:.1f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
