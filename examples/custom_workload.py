#!/usr/bin/env python3
"""Write your own workload with the program DSL and study its scheduling.

This example builds a binary-search kernel from scratch (the kind of
pointer-light but branch- and latency-sensitive loop the paper's intro
motivates), executes it functionally to obtain a trace, and compares how
each scheduler class copes — including the per-class decode-to-issue
breakdown from the paper's Figure 3c/12 methodology and Ballerino's
S-IQ/P-IQ issue mix.

Run:  python examples/custom_workload.py
"""

import random

from repro import ProgramBuilder, config_for, simulate
from repro.isa import R
from repro.workloads import execute

TABLE = 0x0100_0000
TABLE_WORDS = 1 << 14  # 16K sorted words spread over ~128 KiB (L2-resident)


def build_binary_search(num_lookups: int = 400, seed: int = 11):
    """Repeated binary searches over a sorted in-memory table."""
    rng = random.Random(seed)
    memory = {TABLE + i * 8: i * 3 for i in range(TABLE_WORDS)}

    b = ProgramBuilder("binary_search")
    b.li(R[20], num_lookups)
    b.li(R[21], 123 + seed)  # LCG state for the probe keys
    b.label("lookup")
    # key = lcg() % (3 * TABLE_WORDS)
    b.li(R[22], 1103515245)
    b.mul(R[21], R[21], R[22])
    b.addi(R[21], R[21], 12345)
    b.li(R[23], 3 * TABLE_WORDS - 1)
    b.and_(R[1], R[21], R[23])
    # lo = 0, hi = TABLE_WORDS
    b.li(R[2], 0)
    b.li(R[3], TABLE_WORDS)
    b.label("bsearch")
    b.sub(R[4], R[3], R[2])
    b.li(R[5], 1)
    b.blt(R[4], R[5], "done")  # hi - lo < 1 -> done
    # mid = (lo + hi) / 2 ; probe = table[mid]
    b.add(R[6], R[2], R[3])
    b.shr(R[6], R[6], 1)
    b.shl(R[7], R[6], 3)
    b.li(R[8], TABLE)
    b.add(R[7], R[7], R[8])
    b.load(R[9], R[7], 0)  # data-dependent, hard-to-prefetch load
    b.blt(R[9], R[1], "go_right")
    b.mov(R[3], R[6])  # hi = mid
    b.jmp("bsearch")
    b.label("go_right")
    b.addi(R[2], R[6], 1)  # lo = mid + 1
    b.jmp("bsearch")
    b.label("done")
    b.add(R[10], R[10], R[2])  # accumulate to keep the result live
    b.addi(R[20], R[20], -1)
    b.bne(R[20], R[0], "lookup")
    b.halt()
    return b.build(), memory


def main() -> None:
    program, memory = build_binary_search()
    print(f"program: {len(program)} static instructions")
    trace = execute(program, memory=memory, max_ops=500_000)
    print(f"trace:   {trace.summary()}")
    print()

    header = f"{'arch':12s} {'ipc':>6s} {'cycles':>9s} {'mispred':>8s} {'LdC wait':>9s}"
    print(header)
    print("-" * len(header))
    for arch in ("inorder", "ces", "casino", "fxa", "ballerino", "ooo"):
        result = simulate(trace, config_for(arch))
        breakdown = result.stats.breakdown.averages()
        print(
            f"{arch:12s} {result.ipc:6.2f} {result.cycles:9d} "
            f"{result.stats.branch_mispredicts:8d} "
            f"{breakdown['LdC']['dispatch_to_ready']:9.1f}"
        )

    print()
    result = simulate(trace, config_for("ballerino"))
    sched = result.stats.scheduler
    total_issued = sched["issued_siq"] + sched["issued_piq"]
    print("Ballerino internals on this workload:")
    print(f"  issued from S-IQ:  {sched['issued_siq']:6d} "
          f"({sched['issued_siq'] / total_issued:.0%})")
    print(f"  issued from P-IQs: {sched['issued_piq']:6d} "
          f"({sched['issued_piq'] / total_issued:.0%})")
    print(f"  P-IQ sharing activations: {sched['share_activations']}")
    print(f"  MDA steers: {sched['steer_mda']}, chain steers: {sched['steer_dc']}")


if __name__ == "__main__":
    main()
