#!/usr/bin/env python3
"""Design-space exploration: size Ballerino's scheduler for a power budget.

Sweeps the number of P-IQs and the DVFS level and reports, for each point,
performance and efficiency relative to the 8-wide out-of-order baseline —
the §VI-E analysis as a reusable script.  This is the workflow a
microarchitect would use the library for: pick the cheapest configuration
that stays within X% of OoO performance.

Run:  python examples/design_space.py [target_perf]   (default 0.95)
"""

import sys

from repro import config_for
from repro.analysis import ExperimentRunner, geomean
from repro.energy import DVFS_LEVELS, EnergyModel, evaluate_level
from repro.workloads.suite import SUITE_NAMES

KERNELS = tuple(SUITE_NAMES[:8])  # trimmed suite keeps the sweep snappy


def main() -> None:
    target = float(sys.argv[1]) if len(sys.argv) > 1 else 0.95
    runner = ExperimentRunner(target_ops=6000)
    model = EnergyModel()

    ooo_cfg = config_for("ooo")
    ooo_seconds = {w: runner.run(w, ooo_cfg).seconds for w in KERNELS}
    ooo_energy = sum(
        model.evaluate(runner.run(w, ooo_cfg), ooo_cfg).total_joules
        for w in KERNELS
    )

    print(f"target: >= {target:.0%} of OoO performance, minimal energy")
    print()
    print(f"{'P-IQs':>5s} {'level':>5s} {'perf vs OoO':>12s} "
          f"{'energy vs OoO':>14s} {'1/EDP vs OoO':>13s}")

    best = None
    for num_piqs in (5, 7, 9, 11):
        cfg = config_for("ballerino", num_piqs=num_piqs)
        results = {w: runner.run(w, cfg) for w in KERNELS}
        for level, (freq, _volt) in DVFS_LEVELS.items():
            perf = geomean([
                ooo_seconds[w]
                / (results[w].cycles / (freq * 1e9))
                for w in KERNELS
            ])
            energy = sum(
                evaluate_level(results[w], cfg, level, model).energy_joules
                for w in KERNELS
            )
            eff = (1.0 / energy) * perf  # ~ 1/EDP ratio vs OoO
            marker = ""
            if perf >= target:
                if best is None or energy < best[0]:
                    best = (energy, num_piqs, level, perf)
                    marker = "  <- feasible"
            print(
                f"{num_piqs:5d} {level:>5s} {perf:12.3f} "
                f"{energy / ooo_energy:14.3f} "
                f"{eff * ooo_energy:13.3f}{marker}"
            )

    print()
    if best is None:
        print(f"no configuration reaches {target:.0%} of OoO — widen the sweep")
    else:
        _, piqs, level, perf = best
        freq, volt = DVFS_LEVELS[level]
        print(
            f"cheapest feasible point: {piqs} P-IQs @ {level} "
            f"({freq} GHz, {volt} V) -> {perf:.1%} of OoO performance"
        )


if __name__ == "__main__":
    main()
