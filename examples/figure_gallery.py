#!/usr/bin/env python3
"""Render the paper's headline figures as terminal bar charts.

Uses the shared experiment cache (populated by `pytest benchmarks/
--benchmark-only`, or on demand here — the first run takes minutes), then
draws Figures 11, 13, 16 and 17c with `repro.analysis.plotting`.

Run:  python examples/figure_gallery.py [ops]
"""

import sys

from repro.analysis import ExperimentRunner
from repro.analysis.experiments import (
    collect_energy,
    collect_fig11,
    collect_fig13,
    collect_fig14_siq_share,
    collect_fig17c,
)
from repro.analysis.plotting import bar_chart


def main() -> None:
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    runner = ExperimentRunner(target_ops=ops)

    fig11 = collect_fig11(runner)
    print(bar_chart(
        fig11,
        title="Figure 11 - speedup over the 8-wide in-order core (geomean)",
        reference=fig11["ooo"],
    ))
    print()

    print(bar_chart(
        collect_fig13(runner),
        title="Figure 13 - step-by-step technique impact (speedup over InO)",
    ))
    print()

    share = collect_fig14_siq_share(runner)
    print(bar_chart(
        {"S-IQ (speculative issue)": share, "P-IQs (dependence chains)": 1 - share},
        title="Figure 14 - where Ballerino's instructions issue from",
        fmt="{:.0%}",
    ))
    print()

    energy = collect_energy(runner)
    ooo = energy["ooo"]
    efficiency = {
        arch: (ooo["total"] * ooo["seconds"]) / (d["total"] * d["seconds"])
        for arch, d in energy.items()
    }
    print(bar_chart(
        efficiency,
        title="Figure 16 - energy efficiency (1/EDP) vs OoO",
        reference=1.0,
    ))
    print()

    fig17c = {f"{n} P-IQs": v for n, v in collect_fig17c(runner).items()}
    print(bar_chart(
        fig17c,
        title="Figure 17c - Ballerino performance vs OoO by P-IQ count",
        reference=1.0,
        fmt="{:.3f}",
    ))
    print()
    print(
        f"(traces: {ops} micro-ops each; results cached in .bench_cache/ — "
        "see EXPERIMENTS.md for the full paper-vs-measured comparison)"
    )


if __name__ == "__main__":
    main()
