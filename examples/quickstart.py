#!/usr/bin/env python3
"""Quickstart: simulate one workload on Ballerino and the baselines.

Builds a synthetic workload trace, runs it through the in-order,
out-of-order and Ballerino cores, and prints IPC, speedups, and the
core-energy comparison — the library's whole API surface in ~40 lines.

Run:  python examples/quickstart.py [workload] [ops]
"""

import sys

from repro import build_trace, config_for, simulate
from repro.energy import EnergyModel


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "dag_wide"
    ops = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000

    print(f"building trace: {workload} (~{ops} micro-ops)")
    trace = build_trace(workload, target_ops=ops)
    print(f"  {trace.summary()}")

    model = EnergyModel()
    results = {}
    for arch in ("inorder", "ooo", "ballerino", "ballerino12"):
        config = config_for(arch)
        result = simulate(trace, config)
        energy = model.evaluate(result, config)
        results[arch] = (result, energy)
        print(
            f"{arch:12s} ipc={result.ipc:5.2f} cycles={result.cycles:8d} "
            f"energy/op={energy.energy_per_instruction_pj:6.1f} pJ "
            f"mispredicts={result.stats.branch_mispredicts}"
        )

    ino = results["inorder"][0]
    ooo_result, ooo_energy = results["ooo"]
    bal_result, bal_energy = results["ballerino12"]
    print()
    print(f"OoO speedup over InO:          {ino.cycles / ooo_result.cycles:.2f}x")
    print(f"Ballerino-12 speedup over InO: {ino.cycles / bal_result.cycles:.2f}x")
    print(
        "Ballerino-12 vs OoO:           "
        f"{ooo_result.cycles / bal_result.cycles:.1%} of OoO performance, "
        f"{bal_energy.total_pj / ooo_energy.total_pj:.1%} of OoO energy, "
        f"{bal_energy.efficiency / ooo_energy.efficiency:.2f}x efficiency (1/EDP)"
    )


if __name__ == "__main__":
    main()
