"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (this environment is offline, so PEP 517 build isolation cannot
download build dependencies)."""

from setuptools import setup

setup()
