"""Ballerino reproduction: an out-of-order issue queue rebuilt from in-order IQs.

A from-scratch cycle-level core simulator plus the six scheduling windows
evaluated in *Reconstructing Out-of-Order Issue Queue* (MICRO 2022):
in-order, out-of-order, CES, CASINO, FXA and Ballerino.

Quickstart::

    from repro import build_trace, config_for, simulate

    trace = build_trace("stream_triad", target_ops=20_000)
    result = simulate(trace, config_for("ballerino"))
    print(result.ipc)
"""

from .core.config import CoreConfig, SchedulerParams, config_for
from .core.pipeline import DeadlockError, Pipeline, SimulationDeadlock, simulate
from .core.stats import SimResult
from .telemetry import StallAttribution, Tracer
from .workloads.kernels import KERNELS, build_trace
from .workloads.program import Program, ProgramBuilder
from .workloads.suite import SUITE_NAMES, default_suite, get_trace
from .workloads.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "SchedulerParams",
    "config_for",
    "DeadlockError",
    "Pipeline",
    "SimulationDeadlock",
    "simulate",
    "SimResult",
    "StallAttribution",
    "Tracer",
    "KERNELS",
    "build_trace",
    "Program",
    "ProgramBuilder",
    "SUITE_NAMES",
    "default_suite",
    "get_trace",
    "Trace",
    "__version__",
]
