"""Experiment running, caching, analysis, and reporting."""

from .dataflow import DataflowReport, analyze, characterize_suite
from .plotting import bar_chart, stacked_bars
from .report import format_table, normalise
from .runner import DEFAULT_OPS, DEFAULT_SEED, ExperimentRunner, geomean
from .sweep import SweepPoint, SweepResult, sweep

__all__ = [
    "bar_chart",
    "stacked_bars",
    "SweepPoint",
    "SweepResult",
    "sweep",
    "DataflowReport",
    "analyze",
    "characterize_suite",
    "format_table",
    "normalise",
    "DEFAULT_OPS",
    "DEFAULT_SEED",
    "ExperimentRunner",
    "geomean",
]
