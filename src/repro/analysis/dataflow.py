"""Dataflow-limit analysis: the ideal-machine upper bound for a trace.

Given a dynamic trace, computes the length of its *dataflow critical path*
— the longest chain of true (register and, optionally, memory) dependences
weighted by execution latency — and the resulting ideal IPC for a machine
with infinite fetch/issue/memory bandwidth and perfect branch prediction.

This is the classic "dataflow limit" oracle: no real scheduler can beat
it, which makes it both a workload-characterisation tool (how much ILP is
there to find?) and a simulator-wide sanity invariant (each simulated IPC
must stay below the limit).

Memory is modelled optimistically at the L1 hit latency; store->load
memory dependences through the same word are honoured when
``memory_dependences=True``, so the bound stays sound for the real
machines (which also forward through memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..isa.registers import ZERO
from ..workloads.trace import Trace


@dataclass(frozen=True)
class DataflowReport:
    """Critical-path summary of one trace."""

    ops: int
    critical_path: int  # cycles along the longest dependence chain
    ideal_ipc: float
    chain_fraction: float  # ops on the critical path / all ops

    def bounds(self, measured_ipc: float) -> float:
        """How much of the dataflow limit a measured IPC achieves."""
        return measured_ipc / self.ideal_ipc if self.ideal_ipc else 0.0


def analyze(
    trace: Trace,
    load_latency: int = 5,
    memory_dependences: bool = True,
) -> DataflowReport:
    """Compute the dataflow critical path of ``trace``.

    Args:
        trace: The dynamic micro-op stream.
        load_latency: Optimistic load completion latency (AGU + L1 hit).
        memory_dependences: Honour store->load same-word dependences.
    """
    reg_ready: Dict[int, int] = {}  # arch reg -> completion time of producer
    mem_ready: Dict[int, int] = {}  # word addr -> completion of last store
    critical = 0
    # count ops whose completion defines the running critical path
    on_path = 0
    last_critical_op: Optional[int] = None

    for op in trace:
        start = 0
        for src in op.srcs:
            if src != ZERO:
                start = max(start, reg_ready.get(src, 0))
        if memory_dependences and op.is_load and op.mem_addr in mem_ready:
            start = max(start, mem_ready[op.mem_addr])
        if op.is_load:
            latency = load_latency
        else:
            latency = op.opcode.latency
        done = start + latency
        if op.dest is not None and op.dest != ZERO:
            reg_ready[op.dest] = done
        if memory_dependences and op.is_store and op.mem_addr is not None:
            mem_ready[op.mem_addr] = done
        if done > critical:
            critical = done
            if last_critical_op != op.seq:
                on_path += 1
                last_critical_op = op.seq

    ops = len(trace)
    ideal_ipc = ops / critical if critical else float(ops)
    return DataflowReport(
        ops=ops,
        critical_path=critical,
        ideal_ipc=ideal_ipc,
        chain_fraction=on_path / ops if ops else 0.0,
    )


def characterize_suite(
    traces, load_latency: int = 5
) -> Dict[str, DataflowReport]:
    """Dataflow reports for a collection of traces (suite helper)."""
    return {trace.name: analyze(trace, load_latency) for trace in traces}
