"""Terminal plotting: ASCII bar charts for figure rendering.

The benchmarks print numeric tables; the CLI's ``figure`` command uses
these helpers to render the same data as horizontal bar charts so a
reproduction figure can be eyeballed directly in a terminal.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

FULL = "#"

#: sparkline glyphs, shortest to tallest
BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    width: Optional[int] = None,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Render a numeric series as a one-line unicode sparkline.

    Args:
        values: The series (empty -> "").
        width: Downsample to at most this many glyphs (bucket means).
        lo / hi: Fix the scale endpoints (default: the series min/max).
            A flat series renders at the bottom of the scale.
    """
    series = [float(v) for v in values]
    if not series:
        return ""
    if width is not None and width > 0 and len(series) > width:
        # bucket means preserve the envelope shape when downsampling
        step = len(series) / width
        series = [
            (lambda chunk: sum(chunk) / len(chunk))(
                series[int(i * step):max(int((i + 1) * step), int(i * step) + 1)]
            )
            for i in range(width)
        ]
    floor = min(series) if lo is None else lo
    ceil = max(series) if hi is None else hi
    span = ceil - floor
    if span <= 0:
        return BLOCKS[0] * len(series)
    top = len(BLOCKS) - 1
    return "".join(
        BLOCKS[min(top, max(0, int((v - floor) / span * top + 0.5)))]
        for v in series
    )


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    fmt: str = "{:.2f}",
    reference: Optional[float] = None,
) -> str:
    """Render ``label -> value`` as horizontal bars.

    Args:
        values: Ordered mapping of label to (non-negative) value.
        title: Optional heading line.
        width: Maximum bar width in characters.
        fmt: Number format for the value column.
        reference: Draw a ``|`` marker at this value (e.g. the baseline).
    """
    if not values:
        return title
    peak = max(max(values.values()), reference or 0.0) or 1.0
    label_width = max(len(str(label)) for label in values)
    lines = [title] if title else []
    marker_col = (
        round(reference / peak * width) if reference is not None else None
    )
    for label, value in values.items():
        length = round(value / peak * width)
        bar = FULL * length
        if marker_col is not None and marker_col <= width:
            padded = bar.ljust(marker_col)
            if len(padded) > marker_col:
                padded = padded[:marker_col] + "|" + padded[marker_col + 1:]
            else:
                padded += "|"
            bar = padded
        lines.append(
            f"{str(label).ljust(label_width)} | {bar.ljust(width)} "
            + fmt.format(value)
        )
    return "\n".join(lines)


def stacked_bars(
    labels: Sequence[str],
    segments: Dict[str, Sequence[float]],
    title: str = "",
    width: int = 60,
) -> str:
    """Render stacked horizontal bars (one letter per segment category).

    Args:
        labels: One label per bar.
        segments: category -> per-bar values (all sequences same length).
        title: Optional heading.
        width: Width of the largest total bar.
    """
    categories = list(segments)
    # assign each category a unique letter: first unused character of its
    # name, falling back to any unused letter
    letters: Dict[str, str] = {}
    used = set()
    alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    for cat in categories:
        candidates = [c.upper() for c in cat if c.isalnum()]
        choice = next(
            (c for c in candidates if c not in used),
            next(c for c in alphabet if c not in used),
        )
        letters[cat] = choice
        used.add(choice)
    totals = [
        sum(segments[cat][i] for cat in categories)
        for i in range(len(labels))
    ]
    peak = max(totals) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for i, label in enumerate(labels):
        bar = ""
        for cat in categories:
            length = round(segments[cat][i] / peak * width)
            bar += letters[cat] * length
        lines.append(f"{str(label).ljust(label_width)} | {bar}")
    legend = "  ".join(f"{letters[cat]}={cat}" for cat in categories)
    lines.append(f"{''.ljust(label_width)}   [{legend}]")
    return "\n".join(lines)
