"""Plain-text table rendering for benchmark reports.

The benchmark harness prints every figure/table it regenerates as an ASCII
table (one per paper figure), so ``pytest benchmarks/ --benchmark-only``
output doubles as the reproduction report.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def normalise(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Divide every value by the baseline entry."""
    base = values[baseline_key]
    if base == 0:
        raise ValueError(f"baseline {baseline_key!r} is zero")
    return {key: value / base for key, value in values.items()}
