"""Experiment runner with a persistent result cache and a parallel mode.

Every figure in the paper's evaluation replays the same (workload, config)
simulations; the runner memoises each run both in memory and on disk
(JSON under ``.bench_cache/``) so the whole benchmark suite pays for each
simulation exactly once.  :meth:`ExperimentRunner.run_many` additionally
fans uncached (workload, config, seed) tuples across a
``ProcessPoolExecutor``; the disk cache is the merge point, so parallel
and serial execution are byte-identical and every later lookup is a hit.

Cache entries are written atomically (``*.tmp`` + ``os.replace``) so
concurrent workers can never expose a torn file, and a corrupt/truncated
entry is treated as a miss (deleted and re-simulated), never a crash.

Environment knobs:

* ``REPRO_BENCH_OPS`` — dynamic micro-ops per workload trace (default 10000).
* ``REPRO_BENCH_SEED`` — workload data seed (default 7).
* ``REPRO_BENCH_CACHE`` — cache directory ("" disables the disk cache).
* ``REPRO_BENCH_JOBS`` — default worker count for ``run_many`` (default 1).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.config import CoreConfig, config_for
from ..core.pipeline import simulate
from ..core.stats import RESULT_SCHEMA_VERSION, SimResult
from ..workloads.suite import SUITE_NAMES, get_trace

DEFAULT_OPS = int(os.environ.get("REPRO_BENCH_OPS", "10000"))
DEFAULT_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
DEFAULT_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: One run request: (workload, config) or (workload, config, seed).
Task = Union[
    Tuple[str, CoreConfig],
    Tuple[str, CoreConfig, Optional[int]],
]


def _atomic_write_json(path: Path, payload: Dict) -> None:
    """Write ``payload`` to ``path`` so readers never see a torn file."""
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)


def _run_task(payload) -> Dict:
    """Pool worker: simulate one (workload, config, seed) tuple.

    Module-level so it pickles; returns ``SimResult.to_dict()`` and, when
    a cache directory is configured, publishes the entry atomically so
    sibling workers and future runners share it.
    """
    workload, config, seed, target_ops, cache_dir, key = payload
    trace = get_trace(workload, target_ops, seed)
    result = simulate(trace, config)
    data = result.to_dict()
    if cache_dir:
        _atomic_write_json(Path(cache_dir) / f"{key}.json", data)
    return data


class ExperimentRunner:
    """Runs and caches (workload x config) simulations."""

    def __init__(
        self,
        target_ops: int = DEFAULT_OPS,
        seed: int = DEFAULT_SEED,
        cache_dir: Optional[str] = None,
        jobs: Optional[int] = None,
    ):
        self.target_ops = target_ops
        self.seed = seed
        self.jobs = max(1, DEFAULT_JOBS if jobs is None else jobs)
        if cache_dir is None:
            cache_dir = os.environ.get(
                "REPRO_BENCH_CACHE",
                str(Path(__file__).resolve().parents[3] / ".bench_cache"),
            )
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, SimResult] = {}
        self.simulations_run = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    def _key(self, workload: str, config: CoreConfig, seed: int) -> str:
        blob = json.dumps(
            {
                # key on the result schema so stale on-disk entries are
                # skipped (not silently deserialized) after field changes
                "schema": RESULT_SCHEMA_VERSION,
                "workload": workload,
                "ops": self.target_ops,
                "seed": seed,
                "config": config.name,
                "sched": vars(config.scheduler) if hasattr(config.scheduler, "__dict__")
                else str(config.scheduler),
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    def _load_disk(self, key: str) -> Optional[SimResult]:
        """Fetch one disk-cache entry; a corrupt entry is a miss."""
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.json"
        if not path.exists():
            return None
        try:
            return SimResult.from_dict(json.loads(path.read_text()))
        except (ValueError, KeyError, TypeError):
            # truncated / corrupt (e.g. a worker died mid-write before
            # writes were atomic): drop it and re-simulate
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _fetch_cached(self, key: str) -> Optional[SimResult]:
        """Memory-then-disk lookup; counts a hit when found."""
        result = self._memory.get(key)
        if result is None:
            result = self._load_disk(key)
            if result is not None:
                self._memory[key] = result
        if result is not None:
            self.cache_hits += 1
        return result

    def _store(self, key: str, result: SimResult) -> None:
        self._memory[key] = result
        if self.cache_dir is not None:
            _atomic_write_json(
                self.cache_dir / f"{key}.json", result.to_dict()
            )

    def run(self, workload: str, config: CoreConfig,
            seed: Optional[int] = None) -> SimResult:
        """Run (or fetch) one simulation.

        ``seed`` overrides the runner's workload-data seed for seed-
        sensitivity studies; the cache distinguishes seeds.
        """
        seed = self.seed if seed is None else seed
        key = self._key(workload, config, seed)
        result = self._fetch_cached(key)
        if result is not None:
            return result
        trace = get_trace(workload, self.target_ops, seed)
        result = simulate(trace, config)
        self.simulations_run += 1
        self._store(key, result)
        return result

    # ------------------------------------------------------------------
    # parallel execution
    # ------------------------------------------------------------------
    def run_many(self, tasks: Sequence[Task],
                 jobs: Optional[int] = None) -> List[SimResult]:
        """Run (or fetch) a batch of simulations, results in task order.

        Each task is ``(workload, config)`` or ``(workload, config,
        seed)``.  Cached tuples are served immediately; the uncached
        remainder is deduplicated and — with ``jobs > 1`` — fanned
        across a ``ProcessPoolExecutor``.  Workers publish their results
        through the (atomic) disk cache, so a parallel batch leaves the
        cache in exactly the state a serial run would, and results are
        byte-identical to serial execution.

        ``jobs=None`` uses the runner's default (the ``jobs``
        constructor argument / ``REPRO_BENCH_JOBS``).
        """
        norm: List[Tuple[str, CoreConfig, int]] = []
        for task in tasks:
            workload, config = task[0], task[1]
            seed = task[2] if len(task) > 2 and task[2] is not None else self.seed
            norm.append((workload, config, seed))
        keys = [self._key(w, c, s) for w, c, s in norm]
        jobs = self.jobs if jobs is None else max(1, jobs)

        pending: Dict[str, Tuple[str, CoreConfig, int]] = {}
        for key, triple in zip(keys, norm):
            if key in pending:
                continue
            if self._fetch_cached(key) is None:
                pending[key] = triple

        if pending and jobs > 1 and len(pending) > 1:
            from concurrent.futures import ProcessPoolExecutor

            cache = str(self.cache_dir) if self.cache_dir is not None else ""
            payloads = [
                (w, c, s, self.target_ops, cache, key)
                for key, (w, c, s) in pending.items()
            ]
            with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) \
                    as pool:
                for key, data in zip(
                    pending, pool.map(_run_task, payloads)
                ):
                    self._memory[key] = SimResult.from_dict(data)
                    self.simulations_run += 1
        else:
            for key, (w, c, s) in pending.items():
                trace = get_trace(w, self.target_ops, s)
                result = simulate(trace, c)
                self.simulations_run += 1
                self._store(key, result)
        return [self._memory[key] for key in keys]

    def run_seeds(self, workload: str, config: CoreConfig,
                  seeds: Sequence[int],
                  jobs: Optional[int] = None) -> List[SimResult]:
        """Run the same (workload, config) across several data seeds."""
        return self.run_many(
            [(workload, config, seed) for seed in seeds], jobs=jobs
        )

    def run_arch(self, workload: str, arch: str, width: int = 8, **overrides) -> SimResult:
        """Run (or fetch) using a named architecture preset."""
        return self.run(workload, config_for(arch, width=width, **overrides))

    # ------------------------------------------------------------------
    def suite_results(
        self,
        config: CoreConfig,
        workloads: Sequence[str] = SUITE_NAMES,
        jobs: Optional[int] = None,
    ) -> Dict[str, SimResult]:
        """Run the whole suite under one configuration."""
        results = self.run_many(
            [(name, config) for name in workloads], jobs=jobs
        )
        return dict(zip(workloads, results))

    def speedups_over(
        self,
        config: CoreConfig,
        baseline: CoreConfig,
        workloads: Sequence[str] = SUITE_NAMES,
        jobs: Optional[int] = None,
    ) -> Dict[str, float]:
        """Per-workload speedup (execution time ratio) of config vs baseline."""
        tasks: List[Task] = [(name, baseline) for name in workloads]
        tasks += [(name, config) for name in workloads]
        results = self.run_many(tasks, jobs=jobs)
        out = {}
        for index, name in enumerate(workloads):
            base = results[index]
            test = results[index + len(workloads)]
            out[name] = base.seconds / test.seconds
        return out


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-suite aggregate)."""
    values = [v for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
