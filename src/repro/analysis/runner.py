"""Experiment runner with a persistent result cache.

Every figure in the paper's evaluation replays the same (workload, config)
simulations; the runner memoises each run both in memory and on disk
(JSON under ``.bench_cache/``) so the whole benchmark suite pays for each
simulation exactly once.

Environment knobs:

* ``REPRO_BENCH_OPS`` — dynamic micro-ops per workload trace (default 10000).
* ``REPRO_BENCH_SEED`` — workload data seed (default 7).
* ``REPRO_BENCH_CACHE`` — cache directory ("" disables the disk cache).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.config import CoreConfig, config_for
from ..core.pipeline import simulate
from ..core.stats import RESULT_SCHEMA_VERSION, SimResult
from ..workloads.suite import SUITE_NAMES, get_trace

DEFAULT_OPS = int(os.environ.get("REPRO_BENCH_OPS", "10000"))
DEFAULT_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


class ExperimentRunner:
    """Runs and caches (workload x config) simulations."""

    def __init__(
        self,
        target_ops: int = DEFAULT_OPS,
        seed: int = DEFAULT_SEED,
        cache_dir: Optional[str] = None,
    ):
        self.target_ops = target_ops
        self.seed = seed
        if cache_dir is None:
            cache_dir = os.environ.get(
                "REPRO_BENCH_CACHE",
                str(Path(__file__).resolve().parents[3] / ".bench_cache"),
            )
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, SimResult] = {}
        self.simulations_run = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    def _key(self, workload: str, config: CoreConfig, seed: int) -> str:
        blob = json.dumps(
            {
                # key on the result schema so stale on-disk entries are
                # skipped (not silently deserialized) after field changes
                "schema": RESULT_SCHEMA_VERSION,
                "workload": workload,
                "ops": self.target_ops,
                "seed": seed,
                "config": config.name,
                "sched": vars(config.scheduler) if hasattr(config.scheduler, "__dict__")
                else str(config.scheduler),
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    def run(self, workload: str, config: CoreConfig,
            seed: Optional[int] = None) -> SimResult:
        """Run (or fetch) one simulation.

        ``seed`` overrides the runner's workload-data seed for seed-
        sensitivity studies; the cache distinguishes seeds.
        """
        seed = self.seed if seed is None else seed
        key = self._key(workload, config, seed)
        if key in self._memory:
            self.cache_hits += 1
            return self._memory[key]
        if self.cache_dir is not None:
            path = self.cache_dir / f"{key}.json"
            if path.exists():
                result = SimResult.from_dict(json.loads(path.read_text()))
                self._memory[key] = result
                self.cache_hits += 1
                return result
        trace = get_trace(workload, self.target_ops, seed)
        result = simulate(trace, config)
        self.simulations_run += 1
        self._memory[key] = result
        if self.cache_dir is not None:
            (self.cache_dir / f"{key}.json").write_text(
                json.dumps(result.to_dict())
            )
        return result

    def run_seeds(self, workload: str, config: CoreConfig,
                  seeds: Sequence[int]) -> List[SimResult]:
        """Run the same (workload, config) across several data seeds."""
        return [self.run(workload, config, seed=seed) for seed in seeds]

    def run_arch(self, workload: str, arch: str, width: int = 8, **overrides) -> SimResult:
        """Run (or fetch) using a named architecture preset."""
        return self.run(workload, config_for(arch, width=width, **overrides))

    # ------------------------------------------------------------------
    def suite_results(
        self,
        config: CoreConfig,
        workloads: Sequence[str] = SUITE_NAMES,
    ) -> Dict[str, SimResult]:
        """Run the whole suite under one configuration."""
        return {name: self.run(name, config) for name in workloads}

    def speedups_over(
        self,
        config: CoreConfig,
        baseline: CoreConfig,
        workloads: Sequence[str] = SUITE_NAMES,
    ) -> Dict[str, float]:
        """Per-workload speedup (execution time ratio) of config vs baseline."""
        out = {}
        for name in workloads:
            base = self.run(name, baseline)
            test = self.run(name, config)
            out[name] = base.seconds / test.seconds
        return out


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-suite aggregate)."""
    values = [v for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
