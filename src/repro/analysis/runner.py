"""Experiment runner with a persistent result cache and a parallel mode.

Every figure in the paper's evaluation replays the same (workload, config)
simulations; the runner memoises each run both in memory and on disk
(JSON under ``.bench_cache/``) so the whole benchmark suite pays for each
simulation exactly once.  :meth:`ExperimentRunner.run_many` additionally
fans uncached (workload, config, seed) tuples across a
``ProcessPoolExecutor``; the disk cache is the merge point, so parallel
and serial execution are byte-identical and every later lookup is a hit.

Cache entries are written atomically (``*.tmp`` + ``os.replace``) so
concurrent workers can never expose a torn file, and a corrupt,
truncated, zero-byte or unreadable entry is treated as a miss (and
counted on :attr:`ExperimentRunner.cache_warnings`), never a crash.

Campaign fault tolerance (see docs/robustness.md): ``run_many`` submits
each cell as its own future, enforces a per-task wall-clock timeout,
retries crashed/timed-out cells with exponential backoff, survives
``BrokenProcessPool`` by respawning the pool and requeueing the in-flight
cells, and quarantines a persistently failing cell as a structured
:class:`FailedResult` instead of sinking the whole batch.  ``Ctrl-C``
stops the pool but preserves everything already merged into the cache.

Environment knobs:

* ``REPRO_BENCH_OPS`` — dynamic micro-ops per workload trace (default 10000).
* ``REPRO_BENCH_SEED`` — workload data seed (default 7).
* ``REPRO_BENCH_CACHE`` — cache directory ("" disables the disk cache).
* ``REPRO_BENCH_JOBS`` — default worker count for ``run_many`` (default 1).
* ``REPRO_BENCH_TIMEOUT`` — per-task wall-clock timeout in seconds
  (default 0 = no timeout).
* ``REPRO_BENCH_RETRIES`` — attempts after the first failure (default 2).
* ``REPRO_LOCKSTEP`` — "0" disables the lock-step batching tier (default
  on): serial batches group uncached cells by (workload, seed) and run
  each group's configs through :func:`repro.core.lockstep.run_lockstep`,
  decoding the shared trace once and advancing all pipelines in one
  pass.  Results are bit-identical to per-cell execution (the golden
  equivalence test pins this); the knob exists for A/B measurement and
  as an escape hatch.
* ``REPRO_RUN_LOG`` — path of a JSONL campaign run-log (see
  :mod:`repro.telemetry.runlog`); empty/unset disables it.
* ``REPRO_SPANS`` — path of a spans-JSONL trace file (see
  :mod:`repro.telemetry.spans`); empty/unset disables span tracing.
* ``REPRO_CHAOS`` — fault-injection spec for the chaos harness (see
  :mod:`repro.verify.chaos`); empty/unset means no injection.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.config import CoreConfig, config_for
from ..core.lockstep import run_lockstep
from ..core.pipeline import SimulationDeadlock, simulate
from ..core.stats import RESULT_SCHEMA_VERSION, SimResult
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.runlog import RunLog
from ..telemetry.spans import SpanContext, SpanRecorder, derive_span_id
from ..workloads.suite import SUITE_NAMES, get_trace

DEFAULT_OPS = int(os.environ.get("REPRO_BENCH_OPS", "10000"))
DEFAULT_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
DEFAULT_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
DEFAULT_TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "0"))
DEFAULT_RETRIES = int(os.environ.get("REPRO_BENCH_RETRIES", "2"))
DEFAULT_LOCKSTEP = os.environ.get("REPRO_LOCKSTEP", "1") != "0"

#: Base delay (seconds) for the exponential pool-respawn backoff.
BACKOFF_BASE = 0.1
#: How often the parallel loop polls for completions/timeouts (seconds).
_POLL_INTERVAL = 0.1

#: One run request: (workload, config) or (workload, config, seed).
Task = Union[
    Tuple[str, CoreConfig],
    Tuple[str, CoreConfig, Optional[int]],
]


@dataclass
class FailedResult:
    """A quarantined cell: what failed, how, and after how many attempts.

    Returned by :meth:`ExperimentRunner.run_many` in place of a
    :class:`~repro.core.stats.SimResult` once a (workload, config, seed)
    cell has exhausted its retries, so a single poisoned cell degrades
    to a structured record instead of aborting the campaign.  ``kind``
    is one of ``deadlock`` / ``timeout`` / ``worker-lost`` / ``error``;
    ``snapshot`` holds the pipeline snapshot for deadlocks (see
    :mod:`repro.telemetry.snapshot`).
    """

    workload: str
    config_name: str
    seed: int
    kind: str
    error: str
    attempts: int
    snapshot: Dict = field(default_factory=dict)

    #: Counterpart of ``SimResult.ok`` for batch consumers.
    ok = False

    def describe(self) -> str:
        return (f"{self.workload}/{self.config_name} seed={self.seed}: "
                f"{self.kind} after {self.attempts} attempt(s) — {self.error}")

    def to_dict(self) -> Dict:
        return {
            "ok": False,
            "workload": self.workload,
            "config_name": self.config_name,
            "seed": self.seed,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
            "snapshot": self.snapshot,
        }


def _atomic_write_json(path: Path, payload: Dict) -> None:
    """Write ``payload`` to ``path`` so readers never see a torn file."""
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)


def _run_task(payload) -> Dict:
    """Pool worker: simulate one (workload, config, seed) tuple.

    Module-level so it pickles; returns an envelope carrying
    ``SimResult.to_dict()`` plus the worker pid and wall-clock seconds
    (for the campaign run-log) and, when a cache directory is
    configured, publishes the entry atomically so sibling workers and
    future runners share it.  With ``REPRO_CHAOS`` set, the chaos
    harness gets a chance to inject a fault (worker kill, hang, error,
    wedged scheduler) before/instead of the real run.
    """
    workload, config, seed, target_ops, cache_dir, key, attempt = payload
    started = time.perf_counter()
    if os.environ.get("REPRO_CHAOS"):
        from ..verify import chaos

        result = chaos.worker_fault(workload, config, seed, target_ops,
                                    key, attempt)
    else:
        result = None
    if result is None:
        trace = get_trace(workload, target_ops, seed)
        result = simulate(trace, config)
    data = result.to_dict()
    if cache_dir:
        _atomic_write_json(Path(cache_dir) / f"{key}.json", data)
    return {
        "result": data,
        "worker": os.getpid(),
        "seconds": round(time.perf_counter() - started, 6),
    }


def _phase_span_hook(recorder: SpanRecorder, parent):
    """Phase-transition callback turning sampled-sim phases into spans.

    :class:`~repro.core.sampling.SampledSimulation` calls the hook with
    ``(old_phase, new_phase)`` at every transition; each interesting
    phase (fast-forward, warmup window, measured window) becomes one
    ``sim.<phase>`` span under the cell.  Only the in-process serial
    path wires this — pool workers have no recorder to stream to.
    """
    state = {"span": None}

    def hook(old_phase: str, new_phase: str) -> None:
        if state["span"] is not None:
            recorder.finish(state["span"])
            state["span"] = None
        if new_phase in ("ff", "warmup", "measure"):
            state["span"] = recorder.start(f"sim.{new_phase}",
                                           parent=parent)

    return hook


class ExperimentRunner:
    """Runs and caches (workload x config) simulations.

    Args:
        target_ops: Dynamic micro-ops per workload trace.
        seed: Workload data seed.
        cache_dir: On-disk result cache ("" disables it; ``None`` uses
            ``$REPRO_BENCH_CACHE`` or the repo-local ``.bench_cache``).
        jobs: Default worker count for :meth:`run_many`.
        lockstep: Whether serial batches use the lock-step multi-config
            tier (``None`` reads ``$REPRO_LOCKSTEP``, default on).
        task_timeout: Per-task wall-clock timeout (seconds) for parallel
            batches; ``None``/0 disables it.
        retries: Extra attempts a failing cell gets before quarantine.
        run_log: Path of a JSONL campaign run-log (see :mod:`repro.
            telemetry.runlog`); ``None`` uses ``$REPRO_RUN_LOG``, ""
            disables it.
        progress: Callable fed one-line heartbeat strings while a batch
            executes (e.g. ``print``); ``None`` disables the heartbeat.
        heartbeat_interval: Minimum seconds between heartbeats.
        metrics: Optional :class:`~repro.telemetry.metrics.
            MetricsRegistry` fed campaign health counters (currently
            ``runner.cache_warnings``) so long-lived hosts — the
            ``repro serve`` daemon — can export them.
        spans: Span tracing (see :mod:`repro.telemetry.spans`): a
            :class:`SpanRecorder`, a spans-JSONL path, "" to disable,
            or ``None`` to read ``$REPRO_SPANS``.  Off by default;
            like the tracer, every hook is a nullable-reference check.
        trace_ctx: Parent :class:`SpanContext` for this runner's
            campaigns (a shard span, a serve job span); ``None`` makes
            each traced :meth:`run_many` open its own campaign root.
    """

    def __init__(
        self,
        target_ops: int = DEFAULT_OPS,
        seed: int = DEFAULT_SEED,
        cache_dir: Optional[str] = None,
        jobs: Optional[int] = None,
        lockstep: Optional[bool] = None,
        task_timeout: Optional[float] = None,
        retries: Optional[int] = None,
        run_log: Optional[str] = None,
        progress=None,
        heartbeat_interval: float = 2.0,
        metrics: Optional[MetricsRegistry] = None,
        spans: Union[None, str, SpanRecorder] = None,
        trace_ctx: Optional[SpanContext] = None,
    ):
        self.target_ops = target_ops
        self.seed = seed
        self.jobs = max(1, DEFAULT_JOBS if jobs is None else jobs)
        self.lockstep = DEFAULT_LOCKSTEP if lockstep is None else lockstep
        self.task_timeout = (
            (DEFAULT_TIMEOUT or None) if task_timeout is None
            else (task_timeout or None)
        )
        self.retries = max(0, DEFAULT_RETRIES if retries is None else retries)
        if cache_dir is None:
            cache_dir = os.environ.get(
                "REPRO_BENCH_CACHE",
                str(Path(__file__).resolve().parents[3] / ".bench_cache"),
            )
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, SimResult] = {}
        self.simulations_run = 0
        self.cache_hits = 0
        #: unreadable / zero-byte / corrupt disk-cache entries seen
        self.cache_warnings = 0
        #: persistently failing cells: key -> FailedResult (never retried
        #: again by this runner; a fresh runner starts clean)
        self.quarantined: Dict[str, FailedResult] = {}
        #: every quarantine event, in discovery order
        self.failures: List[FailedResult] = []
        #: resilience telemetry for reports / tests
        self.retries_performed = 0
        self.timeouts = 0
        self.pool_restarts = 0
        #: lock-step groups executed (each covers >= 2 cells in one pass)
        self.lockstep_groups = 0
        if run_log is None:
            run_log = os.environ.get("REPRO_RUN_LOG", "")
        self.run_log: Optional[RunLog] = RunLog(run_log) if run_log else None
        self.progress = progress
        self.heartbeat_interval = heartbeat_interval
        self._last_heartbeat = 0.0
        self.metrics = metrics
        if spans is None:
            spans = os.environ.get("REPRO_SPANS", "")
        if isinstance(spans, SpanRecorder):
            self.spans: Optional[SpanRecorder] = spans
        else:
            self.spans = SpanRecorder(spans) if spans else None
        self.trace_ctx = trace_ctx
        #: parent context of the campaign currently executing (the
        #: campaign root span, a shard span or a serve job span);
        #: stamps trace/span ids onto run-log lifecycle events.
        self._trace_parent: Optional[SpanContext] = trace_ctx
        self._campaign_t0 = time.perf_counter()

    # ------------------------------------------------------------------
    # campaign observability
    # ------------------------------------------------------------------
    def _log(self, event: str, **fields) -> None:
        if self.run_log is not None:
            self.run_log.log(event, **fields)

    def _cell_trace(self, key: str) -> Dict[str, str]:
        """Trace-correlation fields for one cell's lifecycle events.

        The span id is *derived* from the trace id and cache key, so
        every host executing (or re-executing) the same cell agrees on
        it without coordination — run-logs and span files merge by id.
        Empty when tracing is off (the common case, one attr check).
        """
        parent = self._trace_parent
        if parent is None:
            return {}
        return {
            "trace_id": parent.trace_id,
            "span_id": derive_span_id(parent.trace_id, "cell", key),
            "parent_id": parent.span_id,
        }

    def _campaign_trace(self) -> Dict[str, str]:
        parent = self._trace_parent
        if parent is None:
            return {}
        return {"trace_id": parent.trace_id, "span_id": parent.span_id}

    def _heartbeat(self, done: int, total: int, inflight: int,
                   queued: int, force: bool = False) -> None:
        """Emit a progress line + run-log record, rate-limited."""
        if self.progress is None and self.run_log is None:
            return
        now = time.monotonic()
        if not force and now - self._last_heartbeat < self.heartbeat_interval:
            return
        self._last_heartbeat = now
        elapsed = max(time.perf_counter() - self._campaign_t0, 1e-9)
        rate = done / elapsed
        eta = (round((total - done) / rate, 3)
               if rate > 0 and total >= done else None)
        self._log("heartbeat", done=done, total=total,
                  inflight=inflight, queued=queued,
                  elapsed_s=round(elapsed, 3),
                  sims_per_sec=round(rate, 4), eta_s=eta,
                  **self._campaign_trace())
        if self.progress is not None:
            eta_text = "--" if eta is None else f"{eta:.0f}s"
            self.progress(
                f"[runner] {done}/{total} done · {inflight} in flight · "
                f"{queued} queued · {rate:.2f} sims/s · ETA {eta_text} · "
                f"{self.retries_performed} retried · "
                f"{len(self.quarantined)} quarantined"
            )

    # ------------------------------------------------------------------
    def _key(self, workload: str, config: CoreConfig, seed: int) -> str:
        blob = json.dumps(
            {
                # key on the result schema so stale on-disk entries are
                # skipped (not silently deserialized) after field changes
                "schema": RESULT_SCHEMA_VERSION,
                "workload": workload,
                "ops": self.target_ops,
                "seed": seed,
                "config": config.name,
                "sched": vars(config.scheduler) if hasattr(config.scheduler, "__dict__")
                else str(config.scheduler),
                # sampled and full runs of the same cell coexist in one
                # cache: the sampling knobs join the key whenever the
                # config samples (None keeps full-run keys stable
                # across knob-default changes)
                "sampling": (
                    [config.sample_period, config.sample_window,
                     config.warmup_cycles, config.ff_width,
                     config.ff_warmup_ops]
                    if getattr(config, "sample_period", 0) else None
                ),
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    def key_for(self, workload: str, config: CoreConfig,
                seed: Optional[int] = None) -> str:
        """Public cell-key derivation (the disk-cache / run-log key).

        The reconciliation detector (:mod:`repro.distrib.reconcile`)
        uses it to line up the expected campaign matrix against cache
        entries and run-log records; ``seed=None`` resolves to the
        runner's default, matching :meth:`run` / :meth:`run_many`.
        """
        return self._key(workload, config, self.seed if seed is None else seed)

    def cache_path(self, key: str) -> Optional[Path]:
        """Where ``key``'s disk-cache entry lives (None: cache disabled)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.json"

    def _cache_warning(self, key: str, reason: str) -> None:
        """Count one tolerated cache corruption, everywhere it matters.

        Beyond the in-process :attr:`cache_warnings` counter (surfaced
        on stderr by the CLI), the event lands in the structured run-log
        and — when a registry is attached — on the
        ``runner.cache_warnings`` metrics counter, so a long-lived host
        like the serve daemon can report cache health on ``/healthz``.
        """
        self.cache_warnings += 1
        self._log("cache_warning", key=key, reason=reason,
                  count=self.cache_warnings)
        if self.metrics is not None:
            self.metrics.count("runner.cache_warnings")

    def _load_disk(self, key: str) -> Optional[SimResult]:
        """Fetch one disk-cache entry; any unusable entry is a miss.

        Tolerates (and counts on :attr:`cache_warnings`) corrupt JSON,
        zero-byte files from a crashed pre-atomic writer, and unreadable
        entries (permissions, transient IO errors).  Unreadable files are
        left in place — the next writer's ``os.replace`` repairs them;
        corrupt ones are deleted so they get re-simulated exactly once.
        """
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.json"
        if not path.exists():
            return None
        try:
            text = path.read_text()
        except OSError:
            self._cache_warning(key, "unreadable")
            return None
        except UnicodeDecodeError:
            # binary garbage where JSON should be: definitely corrupt
            self._cache_warning(key, "binary-garbage")
            self._discard_entry(path)
            return None
        if not text.strip():
            self._cache_warning(key, "zero-byte")
            self._discard_entry(path)
            return None
        try:
            return SimResult.from_dict(json.loads(text))
        except (ValueError, KeyError, TypeError):
            # truncated / corrupt (e.g. a worker died mid-write before
            # writes were atomic): drop it and re-simulate
            self._cache_warning(key, "corrupt")
            self._discard_entry(path)
            return None

    @staticmethod
    def _discard_entry(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _fetch_cached(self, key: str) -> Optional[SimResult]:
        """Memory-then-disk lookup; counts a hit when found."""
        result = self._memory.get(key)
        if result is None:
            result = self._load_disk(key)
            if result is not None:
                self._memory[key] = result
        if result is not None:
            self.cache_hits += 1
        return result

    def _store(self, key: str, result: SimResult) -> None:
        self._memory[key] = result
        if self.cache_dir is not None:
            _atomic_write_json(
                self.cache_dir / f"{key}.json", result.to_dict()
            )

    def run(self, workload: str, config: CoreConfig,
            seed: Optional[int] = None) -> SimResult:
        """Run (or fetch) one simulation.

        ``seed`` overrides the runner's workload-data seed for seed-
        sensitivity studies; the cache distinguishes seeds.
        """
        seed = self.seed if seed is None else seed
        key = self._key(workload, config, seed)
        result = self._fetch_cached(key)
        if result is not None:
            self._log("cache_hit", key=key, workload=workload,
                      config=config.name, seed=seed,
                      **self._cell_trace(key))
            return result
        self._log("start", key=key, workload=workload, config=config.name,
                  seed=seed, attempt=0, **self._cell_trace(key))
        started = time.perf_counter()
        trace = get_trace(workload, self.target_ops, seed)
        result = simulate(trace, config)
        self.simulations_run += 1
        self._store(key, result)
        self._log("finish", key=key, workload=workload, config=config.name,
                  seed=seed, attempt=0,
                  seconds=round(time.perf_counter() - started, 6),
                  worker=os.getpid(), **self._cell_trace(key))
        return result

    # ------------------------------------------------------------------
    # failure bookkeeping
    # ------------------------------------------------------------------
    def _quarantine(self, key: str, triple: Tuple[str, CoreConfig, int],
                    kind: str, error: str, attempts: int,
                    snapshot: Optional[Dict] = None) -> FailedResult:
        workload, config, seed = triple
        failed = FailedResult(
            workload=workload, config_name=config.name, seed=seed,
            kind=kind, error=error, attempts=attempts,
            snapshot=snapshot or {},
        )
        self.quarantined[key] = failed
        self.failures.append(failed)
        self._log("quarantine", key=key, kind=kind, error=error,
                  attempts=attempts, **self._cell_trace(key))
        if self.spans is not None and self._trace_parent is not None:
            # instant error span: the live/envelope timing was lost to
            # the failure, but the derived id still lands the cell in
            # the merged trace, marked failed
            now_t = time.time()
            self.spans.record(
                "cell", parent=self._trace_parent, start_t=now_t,
                end_t=now_t, status="error",
                span_id=derive_span_id(self._trace_parent.trace_id,
                                       "cell", key),
                workload=workload, config=config.name, seed=seed,
                kind=kind, attempts=attempts)
        return failed

    @staticmethod
    def _classify_failure(exc: BaseException) -> Tuple[str, str, Dict]:
        if isinstance(exc, SimulationDeadlock):
            return ("deadlock", str(exc), getattr(exc, "snapshot", {}) or {})
        return ("error", f"{type(exc).__name__}: {exc}", {})

    def failure_summary(self) -> str:
        """Human-readable summary of every quarantined cell ("" if none)."""
        if not self.failures:
            return ""
        lines = [f"{len(self.failures)} cell(s) quarantined:"]
        lines += [f"  - {failed.describe()}" for failed in self.failures]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # parallel execution
    # ------------------------------------------------------------------
    def run_many(self, tasks: Sequence[Task], jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 lockstep: Optional[bool] = None,
                 trace: Optional[SpanContext] = None,
                 ) -> List[Union[SimResult, FailedResult]]:
        """Run (or fetch) a batch of simulations, results in task order.

        Each task is ``(workload, config)`` or ``(workload, config,
        seed)``.  Cached tuples are served immediately; the uncached
        remainder is deduplicated and — with ``jobs > 1`` — fanned
        across a ``ProcessPoolExecutor``.  Workers publish their results
        through the (atomic) disk cache, so a parallel batch leaves the
        cache in exactly the state a serial run would, and results are
        byte-identical to serial execution.

        A cell whose worker crashes, hangs past ``timeout`` or raises is
        retried up to ``retries`` times (deterministic failures —
        deadlocks — are not retried) and then **quarantined**: its slot
        in the returned list holds a :class:`FailedResult` and later
        batches serve the same record without re-running it.  Callers
        that need every cell healthy should check ``result.ok`` or
        :attr:`failures`.  ``KeyboardInterrupt`` aborts the batch but
        every already-finished cell stays merged in the cache.

        On the serial path (``jobs == 1``), uncached cells sharing a
        (workload, seed) run as one **lock-step group**: the trace is
        decoded once and every config's pipeline advances cycle-by-cycle
        in a single pass (see :mod:`repro.core.lockstep`).  Results are
        bit-identical to per-cell execution; ``lockstep=False`` opts a
        batch out (e.g. for A/B throughput measurement).

        ``jobs`` / ``timeout`` / ``retries`` / ``lockstep`` default to
        the runner's constructor values.  ``trace`` names the parent
        span context for this batch (overriding the runner-level
        ``trace_ctx``): with a recorder attached, cell spans parent
        directly under it; with neither, a traced batch opens its own
        ``campaign`` root span.
        """
        norm: List[Tuple[str, CoreConfig, int]] = []
        for task in tasks:
            workload, config = task[0], task[1]
            seed = task[2] if len(task) > 2 and task[2] is not None else self.seed
            norm.append((workload, config, seed))
        keys = [self._key(w, c, s) for w, c, s in norm]
        jobs = self.jobs if jobs is None else max(1, jobs)
        timeout = self.task_timeout if timeout is None else (timeout or None)
        retries = self.retries if retries is None else max(0, retries)
        lockstep = self.lockstep if lockstep is None else lockstep

        recorder = self.spans
        previous_parent = self._trace_parent
        parent = trace if trace is not None else self.trace_ctx
        campaign_span = None
        if recorder is not None and parent is None:
            campaign_span = recorder.start("campaign", tasks=len(norm))
            parent = campaign_span.context
        self._trace_parent = parent
        try:
            probe_span = None
            if recorder is not None and parent is not None:
                probe_span = recorder.start("cache_probe", parent=parent)
            pending: Dict[str, Tuple[str, CoreConfig, int]] = {}
            logged_hits = set()
            for key, triple in zip(keys, norm):
                if key in pending or key in self.quarantined:
                    continue
                if self._fetch_cached(key) is None:
                    pending[key] = triple
                elif key not in logged_hits:
                    logged_hits.add(key)
                    self._log("cache_hit", key=key, workload=triple[0],
                              config=triple[1].name, seed=triple[2],
                              **self._cell_trace(key))
                    if recorder is not None and parent is not None:
                        now_t = time.time()
                        recorder.record(
                            "cell", parent=parent, start_t=now_t,
                            end_t=now_t,
                            span_id=derive_span_id(parent.trace_id,
                                                   "cell", key),
                            workload=triple[0], config=triple[1].name,
                            seed=triple[2], cached=True)
            if probe_span is not None:
                recorder.finish(probe_span, tasks=len(norm),
                                hits=len(logged_hits),
                                misses=len(pending))

            parallel = bool(pending) and jobs > 1 and len(pending) > 1
            self._log("campaign_start", tasks=len(norm),
                      pending=len(pending), jobs=jobs,
                      mode="parallel" if parallel else "serial",
                      **self._campaign_trace())
            campaign_started = time.perf_counter()
            self._campaign_t0 = campaign_started
            sims_before, hits_before = self.simulations_run, self.cache_hits
            if parallel:
                self._run_parallel(pending, jobs, timeout, retries)
            elif pending:
                self._run_serial(pending, retries, lockstep)
            self._log("campaign_end",
                      seconds=round(time.perf_counter() - campaign_started,
                                    6),
                      simulations=self.simulations_run - sims_before,
                      cache_hits=self.cache_hits - hits_before,
                      retries=self.retries_performed,
                      timeouts=self.timeouts,
                      quarantined=len(self.quarantined),
                      **self._campaign_trace())
            if campaign_span is not None:
                recorder.finish(
                    campaign_span,
                    simulations=self.simulations_run - sims_before,
                    cache_hits=self.cache_hits - hits_before,
                    quarantined=len(self.quarantined))
        finally:
            self._trace_parent = previous_parent

        out: List[Union[SimResult, FailedResult]] = []
        for key in keys:
            result = self._memory.get(key)
            out.append(result if result is not None else self.quarantined[key])
        return out

    def _finish(self, key: str, result: SimResult) -> None:
        """Merge one fresh simulation through the unified store path.

        Both the serial and the parallel path land here, so the memory
        and disk caches end up in the identical state either way (the
        parallel worker's own publish writes the same bytes)."""
        self.simulations_run += 1
        self._store(key, result)

    def _run_serial(self, pending: Dict[str, Tuple[str, CoreConfig, int]],
                    retries: int, lockstep: bool = True) -> None:
        """In-process fallback with the same retry/quarantine semantics.

        With ``lockstep`` (the default), cells sharing a (workload,
        seed) first go through the lock-step tier as a shared-trace
        group; whatever that tier could not finish — singleton groups,
        cells whose pipeline raised a transient error — falls through
        to the per-cell retry loop below.

        ``KeyboardInterrupt`` propagates immediately — every cell
        finished before it is already merged into the cache by
        :meth:`_finish`, so an interrupted campaign resumes where it
        stopped."""
        if lockstep and len(pending) > 1:
            pending = self._run_lockstep_tier(pending)
        total = len(pending)
        recorder, parent = self.spans, self._trace_parent
        for done, (key, (workload, config, seed)) in enumerate(pending.items()):
            cell_span = None
            if recorder is not None and parent is not None:
                cell_span = recorder.start(
                    "cell", parent=parent,
                    span_id=derive_span_id(parent.trace_id, "cell", key),
                    workload=workload, config=config.name, seed=seed)
            attempt = 0
            while True:
                self._log("start", key=key, workload=workload,
                          config=config.name, seed=seed, attempt=attempt,
                          **self._cell_trace(key))
                started = time.perf_counter()
                try:
                    if cell_span is not None:
                        with recorder.span("trace_decode",
                                           parent=cell_span):
                            trace = get_trace(workload, self.target_ops,
                                              seed)
                        hook = _phase_span_hook(recorder, cell_span)
                        with recorder.span("simulate", parent=cell_span):
                            result = simulate(trace, config,
                                              phase_hook=hook)
                        self._finish(key, result)
                    else:
                        trace = get_trace(workload, self.target_ops, seed)
                        self._finish(key, simulate(trace, config))
                    self._log("finish", key=key, workload=workload,
                              config=config.name, seed=seed, attempt=attempt,
                              seconds=round(time.perf_counter() - started, 6),
                              worker=os.getpid(), **self._cell_trace(key))
                    if cell_span is not None:
                        recorder.finish(cell_span, attempts=attempt + 1)
                    break
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    kind, error, snapshot = self._classify_failure(exc)
                    attempt += 1
                    if kind != "deadlock" and attempt <= retries:
                        self.retries_performed += 1
                        self._log("retry", key=key, attempt=attempt,
                                  kind=kind, error=error,
                                  **self._cell_trace(key))
                        continue
                    # the open cell_span is dropped unwritten; the
                    # quarantine path records the cell's error span
                    self._quarantine(key, (workload, config, seed), kind,
                                     error, attempt, snapshot)
                    break
            self._heartbeat(done + 1, total, 0, total - done - 1)

    def _run_lockstep_tier(
        self, pending: Dict[str, Tuple[str, CoreConfig, int]],
    ) -> Dict[str, Tuple[str, CoreConfig, int]]:
        """Run multi-config (workload, seed) groups in lock-step.

        Each group decodes its trace once and advances every config's
        pipeline in a single pass (:func:`repro.core.lockstep.
        run_lockstep`).  Completed cells merge through :meth:`_finish`
        exactly like per-cell runs; a deadlocked cell is quarantined
        immediately (deadlocks are deterministic — rerunning the same
        trace/config serially would deadlock again); any other
        per-pipeline failure is charged one retry and handed back to
        the per-cell loop.  Returns the cells still owed a result.

        A failure *outside* the per-pipeline boundary (the trace
        decoder raised, the driver itself failed) leaves the whole
        group untouched for the per-cell path, which reproduces and
        classifies the error with its own retry budget.
        """
        groups: Dict[Tuple[str, int], List[str]] = {}
        for key, (workload, _config, seed) in pending.items():
            groups.setdefault((workload, seed), []).append(key)
        remaining = dict(pending)
        for (workload, seed), group_keys in groups.items():
            if len(group_keys) < 2:
                continue  # no shared work to batch
            configs = [pending[key][1] for key in group_keys]
            for key, config in zip(group_keys, configs):
                self._log("start", key=key, workload=workload,
                          config=config.name, seed=seed, attempt=0,
                          **self._cell_trace(key))
            started = time.perf_counter()
            group_start_t = time.time()
            try:
                trace = get_trace(workload, self.target_ops, seed)
                outcomes = run_lockstep(trace, configs)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                self._log("lockstep", workload=workload, seed=seed,
                          cells=len(group_keys), completed=0,
                          seconds=round(time.perf_counter() - started, 6))
                self._log("retry", key=group_keys[0], attempt=1,
                          kind="error", error=f"{type(exc).__name__}: {exc}",
                          **self._cell_trace(group_keys[0]))
                continue
            seconds = time.perf_counter() - started
            cell_seconds = round(seconds / len(group_keys), 6)
            completed = 0
            recorder, parent = self.spans, self._trace_parent
            group_end_t = time.time()
            for key, config, outcome in zip(group_keys, configs, outcomes):
                if isinstance(outcome, SimResult):
                    self._finish(key, outcome)
                    self._log("finish", key=key, workload=workload,
                              config=config.name, seed=seed, attempt=0,
                              seconds=cell_seconds, worker=os.getpid(),
                              **self._cell_trace(key))
                    if recorder is not None and parent is not None:
                        # the group ran all cells in one pass; each cell
                        # span carries the shared wall-clock bracket
                        recorder.record(
                            "cell", parent=parent, start_t=group_start_t,
                            end_t=group_end_t,
                            span_id=derive_span_id(parent.trace_id,
                                                   "cell", key),
                            workload=workload, config=config.name,
                            seed=seed, lockstep=True)
                    del remaining[key]
                    completed += 1
                elif isinstance(outcome, SimulationDeadlock):
                    kind, error, snapshot = self._classify_failure(outcome)
                    self._quarantine(key, (workload, config, seed), kind,
                                     error, 1, snapshot)
                    del remaining[key]
                else:  # transient failure: one attempt charged, fall back
                    self.retries_performed += 1
                    self._log("retry", key=key, attempt=1, kind="error",
                              error=f"{type(outcome).__name__}: {outcome}",
                              **self._cell_trace(key))
            if recorder is not None and parent is not None:
                recorder.record(
                    "lockstep_group", parent=parent,
                    start_t=group_start_t, end_t=group_end_t,
                    workload=workload, seed=seed,
                    cells=len(group_keys), completed=completed)
            self.lockstep_groups += 1
            if self.metrics is not None:
                self.metrics.count("runner.lockstep_groups")
            self._log("lockstep", workload=workload, seed=seed,
                      cells=len(group_keys), completed=completed,
                      seconds=round(seconds, 6))
        return remaining

    def _run_parallel(self, pending: Dict[str, Tuple[str, CoreConfig, int]],
                      jobs: int, timeout: Optional[float],
                      retries: int) -> None:
        """Fan ``pending`` over a worker pool, surviving worker failures.

        Structure: a work queue of (key, attempt) plus an in-flight map
        of future -> (key, deadline).  Completions merge through
        :meth:`_finish`; failures either requeue (attempt+1) or
        quarantine.  A hung task (deadline exceeded) or a broken pool
        kills every worker, charges an attempt to the in-flight cells,
        requeues them, and respawns the pool after an exponential
        backoff.  ``KeyboardInterrupt`` tears the pool down without
        waiting; the cache keeps everything already merged.
        """
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
        from concurrent.futures.process import BrokenProcessPool

        cache = str(self.cache_dir) if self.cache_dir is not None else ""
        max_workers = min(jobs, len(pending))
        queue: Deque[Tuple[str, int]] = deque(
            (key, 0) for key in pending
        )
        inflight: Dict[object, Tuple[str, Optional[float], int]] = {}
        pool: Optional[ProcessPoolExecutor] = None
        breaks = 0

        def payload(key: str, attempt: int):
            workload, config, seed = pending[key]
            return (workload, config, seed, self.target_ops, cache, key,
                    attempt)

        def fail_or_requeue(key: str, attempt: int, kind: str, error: str,
                            snapshot: Optional[Dict] = None) -> None:
            if kind != "deadlock" and attempt < retries:
                self.retries_performed += 1
                self._log("retry", key=key, attempt=attempt + 1,
                          kind=kind, error=error, **self._cell_trace(key))
                queue.append((key, attempt + 1))
            else:
                self._quarantine(key, pending[key], kind, error,
                                 attempt + 1, snapshot)

        def kill_pool() -> None:
            nonlocal pool
            if pool is None:
                return
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.terminate()
                except OSError:  # already gone
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None

        def abandon_inflight(culprits: Sequence[object]) -> None:
            """Pool died / was killed: requeue every in-flight cell.

            The cells named in ``culprits`` already had their failure
            charged; the rest get an attempt charged too (the dying
            worker cannot be attributed, so everybody pays one — this
            bounds a kill-looping cell at ``retries`` pool restarts)."""
            for future, (key, _, attempt) in list(inflight.items()):
                if future not in culprits:
                    fail_or_requeue(key, attempt, "worker-lost",
                                    "worker pool died mid-task")
            inflight.clear()

        try:
            while queue or inflight:
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=max_workers)
                while queue and len(inflight) < 2 * max_workers:
                    key, attempt = queue.popleft()
                    workload, config, seed = pending[key]
                    self._log("submit", key=key, workload=workload,
                              config=config.name, seed=seed, attempt=attempt,
                              **self._cell_trace(key))
                    future = pool.submit(_run_task, payload(key, attempt))
                    deadline = (time.monotonic() + timeout) if timeout else None
                    inflight[future] = (key, deadline, attempt)
                done, _ = wait(list(inflight), timeout=_POLL_INTERVAL,
                               return_when=FIRST_COMPLETED)
                broke = False
                for future in done:
                    key, _, attempt = inflight.pop(future)
                    try:
                        envelope = future.result()
                    except BrokenProcessPool:
                        fail_or_requeue(key, attempt, "worker-lost",
                                        "worker process died (BrokenProcessPool)")
                        broke = True
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        kind, error, snapshot = self._classify_failure(exc)
                        fail_or_requeue(key, attempt, kind, error, snapshot)
                    else:
                        self._finish(key, SimResult.from_dict(envelope["result"]))
                        workload, config, seed = pending[key]
                        self._log("finish", key=key, workload=workload,
                                  config=config.name, seed=seed,
                                  attempt=attempt,
                                  seconds=envelope["seconds"],
                                  worker=envelope["worker"],
                                  **self._cell_trace(key))
                        if self.spans is not None \
                                and self._trace_parent is not None:
                            # the worker reported its wall-clock bracket;
                            # record the cell span on its behalf
                            parent = self._trace_parent
                            end_t = time.time()
                            self.spans.record(
                                "cell", parent=parent,
                                start_t=end_t - envelope["seconds"],
                                end_t=end_t,
                                span_id=derive_span_id(parent.trace_id,
                                                       "cell", key),
                                workload=workload, config=config.name,
                                seed=seed, worker=envelope["worker"])
                finished = sum(
                    1 for k in pending
                    if k in self._memory or k in self.quarantined
                )
                self._heartbeat(finished, len(pending), len(inflight),
                                len(queue))
                if broke:
                    abandon_inflight(culprits=())
                    kill_pool()
                    breaks += 1
                    self.pool_restarts += 1
                    self._log("pool_restart", restarts=self.pool_restarts)
                    time.sleep(BACKOFF_BASE * (2 ** min(breaks - 1, 6)))
                    continue
                if timeout:
                    now = time.monotonic()
                    expired = [
                        future
                        for future, (_, deadline, _) in inflight.items()
                        if deadline is not None and now > deadline
                    ]
                    if expired:
                        for future in expired:
                            key, _, attempt = inflight[future]
                            self.timeouts += 1
                            self._log("timeout", key=key, attempt=attempt,
                                      timeout_s=timeout,
                                      **self._cell_trace(key))
                            fail_or_requeue(
                                key, attempt, "timeout",
                                f"exceeded {timeout:g}s wall-clock timeout")
                        # a hung worker cannot be cancelled — only killed
                        abandon_inflight(culprits=expired)
                        kill_pool()
                        breaks += 1
                        self.pool_restarts += 1
                        self._log("pool_restart", restarts=self.pool_restarts)
                        time.sleep(BACKOFF_BASE * (2 ** min(breaks - 1, 6)))
        except KeyboardInterrupt:
            kill_pool()
            raise
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

    def run_cell(self, workload: str, config: CoreConfig,
                 seed: Optional[int] = None,
                 retries: Optional[int] = None,
                 ) -> Union[SimResult, FailedResult]:
        """Reusable single-cell entry point with quarantine semantics.

        Unlike :meth:`run` (which raises on failure), a cell that keeps
        failing comes back as a structured :class:`FailedResult` — the
        same retry/quarantine/cache machinery as :meth:`run_many`, for
        hosts that execute one task at a time (e.g. the ``repro serve``
        worker pool).
        """
        return self.run_many([(workload, config, seed)], jobs=1,
                             retries=retries)[0]

    def run_seeds(self, workload: str, config: CoreConfig,
                  seeds: Sequence[int],
                  jobs: Optional[int] = None) -> List[SimResult]:
        """Run the same (workload, config) across several data seeds."""
        return self.run_many(
            [(workload, config, seed) for seed in seeds], jobs=jobs
        )

    def run_arch(self, workload: str, arch: str, width: int = 8, **overrides) -> SimResult:
        """Run (or fetch) using a named architecture preset."""
        return self.run(workload, config_for(arch, width=width, **overrides))

    # ------------------------------------------------------------------
    def suite_results(
        self,
        config: CoreConfig,
        workloads: Sequence[str] = SUITE_NAMES,
        jobs: Optional[int] = None,
    ) -> Dict[str, Union[SimResult, FailedResult]]:
        """Run the whole suite under one configuration.

        Quarantined cells appear as :class:`FailedResult` values —
        filter with ``result.ok`` and see :meth:`failure_summary`.
        """
        results = self.run_many(
            [(name, config) for name in workloads], jobs=jobs
        )
        return dict(zip(workloads, results))

    def speedups_over(
        self,
        config: CoreConfig,
        baseline: CoreConfig,
        workloads: Sequence[str] = SUITE_NAMES,
        jobs: Optional[int] = None,
    ) -> Dict[str, float]:
        """Per-workload speedup (execution time ratio) of config vs baseline.

        Workloads whose baseline or test cell was quarantined are left
        out of the result (check :attr:`failures` for the why).
        """
        tasks: List[Task] = [(name, baseline) for name in workloads]
        tasks += [(name, config) for name in workloads]
        results = self.run_many(tasks, jobs=jobs)
        out = {}
        for index, name in enumerate(workloads):
            base = results[index]
            test = results[index + len(workloads)]
            if not (base.ok and test.ok):
                continue
            out[name] = base.seconds / test.seconds
        return out


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-suite aggregate)."""
    values = [v for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
