"""Structured parameter sweeps over (configs x workloads).

A thin layer above :class:`~repro.analysis.runner.ExperimentRunner` for
design-space exploration: declare the axes, get back a tidy list of
records plus aggregate helpers.  Used by ``examples/design_space.py``-style
studies and handy for ad-hoc research scripts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.config import CoreConfig, config_for
from ..core.sampling import with_sampling
from ..core.stats import SimResult
from ..workloads.suite import SUITE_NAMES
from .runner import ExperimentRunner, geomean


@dataclass(frozen=True)
class SweepPoint:
    """One (config, workload) cell of a sweep.

    ``result`` is normally a :class:`~repro.core.stats.SimResult`; a cell
    quarantined by the fault-tolerant runner carries a
    :class:`~repro.analysis.runner.FailedResult` instead (``ok`` False).
    """

    params: Dict[str, object]
    workload: str
    result: SimResult

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def ipc(self) -> float:
        return self.result.ipc

    @property
    def seconds(self) -> float:
        return self.result.seconds


@dataclass
class SweepResult:
    """All cells of a sweep, with aggregation helpers.

    Aggregations (:meth:`geomean_ipc`, :meth:`best`) skip quarantined
    cells so one poisoned cell degrades the sweep instead of crashing
    it; :attr:`failures` lists what was skipped.
    """

    points: List[SweepPoint]

    @property
    def failures(self) -> List[SweepPoint]:
        """Cells the runner quarantined (``result`` is a FailedResult)."""
        return [p for p in self.points if not p.ok]

    def filter(self, **params) -> "SweepResult":
        """Cells whose parameters match every given key=value."""
        kept = [
            p for p in self.points
            if all(p.params.get(k) == v for k, v in params.items())
        ]
        return SweepResult(kept)

    def geomean_ipc(self, **params) -> float:
        cells = self.filter(**params).points
        return geomean([p.ipc for p in cells if p.ok])

    def best(self, metric: Callable[[SweepPoint], float]) -> SweepPoint:
        """The healthy cell maximising ``metric``."""
        healthy = [p for p in self.points if p.ok]
        if not healthy:
            raise ValueError("empty sweep")
        return max(healthy, key=metric)

    def table(self, metric: Callable[[SweepPoint], float] = None):
        """(params, workload, value) triples for rendering."""
        metric = metric if metric is not None else (lambda p: p.ipc)
        return [
            (dict(p.params), p.workload, metric(p)) for p in self.points
        ]

    def __len__(self) -> int:
        return len(self.points)


def sweep(
    axes: Mapping[str, Sequence],
    config_builder: Callable[..., CoreConfig] = None,
    workloads: Sequence[str] = SUITE_NAMES,
    runner: Optional[ExperimentRunner] = None,
    jobs: Optional[int] = None,
    sampling: Optional[Dict[str, int]] = None,
) -> SweepResult:
    """Run the cartesian product of ``axes`` over ``workloads``.

    Args:
        axes: parameter name -> values; each combination is passed as
            keyword arguments to ``config_builder``.
        config_builder: ``f(**params) -> CoreConfig``; defaults to
            :func:`~repro.core.config.config_for` (so an ``arch`` axis is
            expected, plus optional ``width`` / ``num_piqs`` / ...).
        workloads: kernels to run each configuration on.
        runner: shared (cached) runner; a default one is created if absent.
        jobs: worker processes for the uncached cells (``None``: the
            runner's default; ``1``: serial).  Results are identical
            either way — parallel workers merge through the disk cache.
        sampling: when given, every built config is wrapped with
            :func:`~repro.core.sampling.with_sampling` (keys: ``period``,
            ``window``, ``warmup``, ``ff_width``, ``ff_warmup_ops``) so
            the whole sweep runs in sampled mode; ``{}`` uses the
            defaults.  Sampled cells cache separately from full runs.

    Example::

        result = sweep(
            {"arch": ["ballerino"], "num_piqs": [5, 7, 9, 11]},
            workloads=["dag_wide", "hash_probe"],
            jobs=4,
        )
        result.geomean_ipc(num_piqs=11)
    """
    config_builder = config_builder if config_builder is not None else config_for
    runner = runner if runner is not None else ExperimentRunner()
    names = list(axes)
    cells: List[tuple] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        params = dict(zip(names, combo))
        config = config_builder(**params)
        if sampling is not None:
            config = with_sampling(config, **sampling)
        for workload in workloads:
            cells.append((params, workload, config))
    results = runner.run_many(
        [(workload, config) for _, workload, config in cells], jobs=jobs
    )
    points = [
        SweepPoint(params=params, workload=workload, result=result)
        for (params, workload, _), result in zip(cells, results)
    ]
    return SweepResult(points)
