"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``workloads`` — list the kernel suite with one-line descriptions.
* ``configs`` — list the microarchitecture presets (Tables I & II).
* ``simulate WORKLOAD ARCH`` — run one simulation and print its summary.
* ``compare WORKLOAD [ARCH ...]`` — side-by-side IPC/energy comparison.
* ``suite ARCH`` — run the whole suite under one design.
* ``report`` — print the paper-vs-measured EXPERIMENTS report.
* ``trace WORKLOAD ARCH --trace-out F`` — cycle-level pipeline trace:
  writes a Chrome trace-event JSON (or Konata log) and prints the
  stall-attribution and occupancy breakdowns (see docs/observability.md).
* ``metrics WORKLOAD ARCH`` — hardware-counter metrics registry plus
  the interval time-series sampler: sparkline tables of IPC /
  occupancy / queue depth / stall-class history, top counters and
  histograms; ``--csv`` exports the samples, ``--trace-out`` writes a
  Chrome trace with counter ("C") tracks overlaid
  (docs/observability.md).  ``simulate --metrics`` prints the same
  tables after the normal summary.
* ``fuzz`` — differential fuzzing across the scheduler zoo with
  per-cycle invariants and ddmin-shrunken repros (docs/correctness.md);
  the global ``--ops`` caps each generated program's dynamic length and
  ``--seed`` seeds the campaign.
* ``chaos`` — fault-injection drill for the campaign runner: kills,
  hangs, injected errors, forced deadlocks and corrupted caches, then a
  byte-identity check against a clean serial run (docs/robustness.md);
  ``--distributed`` drills the sharded-campaign path instead — a shard
  killed outright, poisoned cells, shredded run-logs and damaged cache
  entries, closed by ``reconcile`` detecting every hole and repairing
  back to byte-identity.
* ``campaign`` — run one shard of a distributed campaign (``--shard
  K/N``; cells are assigned by salted hash, so shards coordinate only
  through the shared cache directory) or merge every shard's run-log
  back into one submission-ordered result stream (``--merge``); see
  docs/robustness.md.
* ``reconcile`` — audit a campaign three ways (expected matrix vs disk
  cache vs run-logs), classify every cell (ok / missing / quarantined /
  orphaned / corrupt / stale-schema) and repair it to convergence under
  a bounded per-cell budget; ``--check`` detects without repairing
  (docs/robustness.md).
* ``serve`` — the simulation-as-a-service daemon: a REST API over a
  durable job queue (priority lanes, per-tenant rate limits,
  backpressure) and a worker pool that drives jobs through the
  fault-tolerant runner, streaming results back in submission order
  (docs/serving.md).
* ``submit`` / ``poll`` — the matching client pair: submit a cell list
  or sweep matrix to a running daemon, poll status, fetch the ordered
  result stream.

``repro --version`` prints the package version plus the serve protocol
version so clients can check compatibility against ``GET /healthz``.

All simulation commands honour ``--ops`` / ``--seed`` / ``--width`` /
``--jobs`` and use the shared ``.bench_cache`` result cache
(``--jobs N`` fans uncached simulations across N worker processes —
results are identical to serial; see docs/performance.md).
``--task-timeout`` / ``--retries`` tune the fault tolerance of batch
runs: cells that crash, hang or raise are retried and eventually
quarantined instead of sinking the campaign (batch commands then report
partial results and exit non-zero; see docs/robustness.md).  Traced
and metrics-instrumented runs bypass the cache (``simulate``/
``compare`` also accept ``--trace-out``).  ``--run-log FILE`` (or
``$REPRO_RUN_LOG``) appends a structured JSONL campaign log —
submit/start/finish/retry/timeout/quarantine events with durations and
worker pids — and ``--progress`` prints a live heartbeat line to
stderr during batch runs (docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.report import format_table
from .analysis.runner import ExperimentRunner, geomean
from .core.config import FIG11_ARCHES, config_for
from .energy.model import EnergyModel
from .workloads.kernels import KERNELS
from .workloads.suite import SUITE_NAMES

_ALL_ARCHES = (
    "inorder", "ooo", "ooo_oldest", "ces", "ces_mda", "casino", "fxa",
    "ballerino", "ballerino12", "ballerino_step1", "ballerino_step2",
    "ballerino_ideal", "dnb", "spq",
)


def _version_string() -> str:
    """Package version (from metadata, falling back to the module) plus
    the serve protocol version — what clients compare against
    ``/healthz``."""
    from .serve.protocol import PROTOCOL_VERSION

    try:
        from importlib.metadata import version

        package = version("repro")
    except Exception:
        from . import __version__ as package
    return f"repro {package} (serve protocol {PROTOCOL_VERSION})"


def _add_sampling_flags(parser: argparse.ArgumentParser) -> None:
    """The sampled-simulation flag group shared by simulate/suite."""
    group = parser.add_argument_group("sampled simulation")
    group.add_argument("--sample", action="store_true",
                       help="SimPoint-style sampled simulation: fast-"
                            "forward between detailed measured windows "
                            "and extrapolate whole-run statistics "
                            "(docs/performance.md)")
    group.add_argument("--sample-period", type=int, default=None,
                       metavar="OPS",
                       help="micro-ops between measured-window starts "
                            "(default 20000; implies --sample)")
    group.add_argument("--sample-window", type=int, default=None,
                       metavar="OPS",
                       help="committed micro-ops measured per window "
                            "(default 2000; implies --sample)")
    group.add_argument("--warmup-cycles", type=int, default=None,
                       metavar="N",
                       help="detailed unmeasured cycles before each "
                            "window (default 0: measure the whole "
                            "window; implies --sample)")
    group.add_argument("--ff-width", type=int, default=None, metavar="W",
                       help="micro-ops retired per fast-forward cycle "
                            "(default 8; implies --sample)")
    group.add_argument("--ff-warmup-ops", type=int, default=None,
                       metavar="OPS",
                       help="cap on warming micro-ops per fast-forward "
                            "stretch, 0 = warm everything (implies "
                            "--sample)")


def _sampling_from_args(args) -> Optional[dict]:
    """``with_sampling`` kwargs from the CLI flags, or None (full run)."""
    knobs = {
        "period": args.sample_period,
        "window": args.sample_window,
        "warmup": args.warmup_cycles,
        "ff_width": args.ff_width,
        "ff_warmup_ops": args.ff_warmup_ops,
    }
    knobs = {key: value for key, value in knobs.items() if value is not None}
    if not args.sample and not knobs:
        return None
    return knobs


def _make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ballerino (MICRO 2022) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=_version_string())
    parser.add_argument("--ops", type=int, default=10_000,
                        help="dynamic micro-ops per workload trace")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload data seed")
    parser.add_argument("--width", type=int, default=8, choices=(2, 4, 8, 10),
                        help="issue width")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for uncached simulations "
                             "(default: $REPRO_BENCH_JOBS or 1)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="S",
                        help="wall-clock timeout per simulation in batch "
                             "runs (default: $REPRO_BENCH_TIMEOUT or none)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retry budget per failing cell before "
                             "quarantine (default: $REPRO_BENCH_RETRIES "
                             "or 2)")
    parser.add_argument("--run-log", default=None, metavar="FILE",
                        help="append a structured JSONL campaign run-log "
                             "here (default: $REPRO_RUN_LOG)")
    parser.add_argument("--progress", action="store_true",
                        help="print live heartbeat progress lines to "
                             "stderr during batch runs")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the kernel suite")
    sub.add_parser("configs", help="list the microarchitecture presets")

    sim = sub.add_parser("simulate", help="run one simulation")
    sim.add_argument("workload", choices=sorted(KERNELS))
    sim.add_argument("arch", choices=_ALL_ARCHES)
    sim.add_argument("--trace-out", default=None, metavar="FILE",
                     help="also write a cycle-level pipeline trace here")
    sim.add_argument("--trace-format", choices=("chrome", "konata"),
                     default=None, help="trace format (default: by extension)")
    sim.add_argument("--metrics", action="store_true",
                     help="enable the metrics registry + interval sampler "
                          "and print their tables (bypasses the cache)")
    sim.add_argument("--sample-interval", type=int, default=None,
                     metavar="N",
                     help="cycles between time-series samples "
                          "(default 1000; implies --metrics)")
    sim.add_argument("--profile", action="store_true",
                     help="run under cProfile and print the top functions "
                          "by cumulative time (bypasses the result cache "
                          "so a real simulation is what gets profiled)")
    sim.add_argument("--profile-out", default=None, metavar="FILE",
                     help="also dump raw cProfile stats here for pstats/"
                          "snakeviz (implies --profile)")
    _add_sampling_flags(sim)

    cmp_cmd = sub.add_parser("compare", help="compare designs on a workload")
    cmp_cmd.add_argument("workload", choices=sorted(KERNELS))
    cmp_cmd.add_argument("arches", nargs="*",
                         default=["inorder", "ces", "casino", "fxa",
                                  "ballerino", "ooo"])
    cmp_cmd.add_argument("--trace-out", default=None, metavar="FILE",
                         help="write one pipeline trace per arch "
                              "(arch name is inserted before the suffix)")
    cmp_cmd.add_argument("--trace-format", choices=("chrome", "konata"),
                         default=None,
                         help="trace format (default: by extension)")

    trace_cmd = sub.add_parser(
        "trace", help="cycle-level pipeline trace + stall attribution")
    trace_cmd.add_argument("workload", choices=sorted(KERNELS))
    trace_cmd.add_argument("arch", choices=_ALL_ARCHES)
    trace_cmd.add_argument("--trace-out", default=None, metavar="FILE",
                           help="trace output file (omit to only print "
                                "the stall/occupancy breakdowns)")
    trace_cmd.add_argument("--trace-format", choices=("chrome", "konata"),
                           default=None,
                           help="trace format (default: by extension)")

    met = sub.add_parser(
        "metrics",
        help="hardware-counter metrics + interval time-series for one "
             "run (bypasses the cache; see docs/observability.md)")
    met.add_argument("workload", choices=sorted(KERNELS))
    met.add_argument("arch", choices=_ALL_ARCHES)
    met.add_argument("--sample-interval", type=int, default=1000,
                     metavar="N",
                     help="cycles between time-series samples "
                          "(default 1000)")
    met.add_argument("--csv", default=None, metavar="FILE",
                     help="write the interval samples as CSV")
    met.add_argument("--json-out", default=None, metavar="FILE",
                     help="write the metrics snapshot + samples as JSON")
    met.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write a Chrome trace with counter ('C') "
                          "tracks overlaid on the pipeline events")
    met.add_argument("--prometheus", action="store_true",
                     help="print the metrics registry in Prometheus "
                          "text exposition format instead of tables")

    suite = sub.add_parser("suite", help="run the whole suite on one design")
    suite.add_argument("arch", choices=_ALL_ARCHES)
    _add_sampling_flags(suite)

    sub.add_parser("report", help="print the paper-vs-measured report")

    fig = sub.add_parser("figure", help="render a figure as ASCII bars")
    fig.add_argument("which", choices=("fig11", "fig13", "fig16", "fig17c"))

    char = sub.add_parser("characterize",
                          help="dataflow-limit analysis of the suite")

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing across the scheduler zoo "
             "(see docs/correctness.md)")
    fuzz.add_argument("--programs", type=int, default=200,
                      help="number of generated programs (default 200)")
    fuzz.add_argument("--arches", nargs="*", default=list(FIG11_ARCHES),
                      metavar="ARCH",
                      help="configs to differential-test "
                           "(default: the Figure 11 set)")
    fuzz.add_argument("--out", default=None, metavar="FILE",
                      help="write the full failure report (shrunken "
                           "repros included) to this file")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip ddmin minimisation of failures")
    fuzz.add_argument("--no-invariants", action="store_true",
                      help="disable the per-cycle invariant checker "
                           "(differential checks only; much faster)")
    # accept the global knobs after the subcommand too
    # (`repro fuzz --seed 0`); SUPPRESS keeps a pre-subcommand value
    fuzz.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                      help="campaign seed (default 7)")
    fuzz.add_argument("--ops", type=int, default=argparse.SUPPRESS,
                      help="dynamic op cap per generated program")

    chaos_cmd = sub.add_parser(
        "chaos",
        help="fault-injection drill for the campaign runner "
             "(see docs/robustness.md)")
    chaos_cmd.add_argument("--arches", nargs="*",
                           default=["inorder", "ooo", "ballerino"],
                           metavar="ARCH",
                           help="configs to drill (default: inorder ooo "
                                "ballerino)")
    chaos_cmd.add_argument("--smoke", action="store_true",
                           help="fast kernel subset (CI smoke)")
    chaos_cmd.add_argument("--kill", type=float, default=0.12,
                           help="P(worker killed mid-task) per cell")
    chaos_cmd.add_argument("--hang", type=float, default=0.10,
                           help="P(worker hangs past the timeout) per cell")
    chaos_cmd.add_argument("--error", type=float, default=0.12,
                           help="P(transient worker error) per cell")
    chaos_cmd.add_argument("--wedge", type=float, default=0.10,
                           help="P(forced scheduler deadlock) per cell")
    chaos_cmd.add_argument("--poison", type=float, default=0.10,
                           help="P(persistent error -> quarantine) per cell")
    chaos_cmd.add_argument("--timeout", type=float, default=30.0,
                           help="per-task wall-clock timeout in seconds "
                                "(default 30)")
    chaos_cmd.add_argument("--out", default=None, metavar="FILE",
                           help="write the full campaign report here")
    # accept the global knobs after the subcommand too (`repro chaos
    # --seed 0`); SUPPRESS keeps a pre-subcommand value
    chaos_cmd.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                           help="campaign seed: workload data AND fault "
                                "selection (default 7)")
    chaos_cmd.add_argument("--ops", type=int, default=argparse.SUPPRESS,
                           help="dynamic micro-ops per workload trace")
    chaos_cmd.add_argument("--jobs", type=int, default=argparse.SUPPRESS,
                           help="worker processes for the fault run "
                                "(default 4)")
    chaos_cmd.add_argument("--distributed", action="store_true",
                           help="drill the sharded-campaign path "
                                "instead: shard death, shredded run-"
                                "logs, damaged cache entries, closed "
                                "by reconciliation")
    chaos_cmd.add_argument("--shards", type=int, default=3, metavar="N",
                           help="shard count for --distributed "
                                "(default 3; one shard is killed)")
    chaos_cmd.add_argument("--work-dir", default=None, metavar="DIR",
                           help="keep the drill's campaign/cache trees "
                                "here instead of a throwaway tempdir")

    serve_cmd = sub.add_parser(
        "serve",
        help="simulation-as-a-service daemon: REST API + durable job "
             "queue + worker pool (see docs/serving.md)")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=8023,
                           help="bind port; 0 picks an ephemeral port "
                                "(default 8023)")
    serve_cmd.add_argument("--port-file", default=None, metavar="FILE",
                           help="write the bound port here once "
                                "listening (for scripts/CI)")
    serve_cmd.add_argument("--workers", type=int, default=2, metavar="N",
                           help="worker threads in the pool (default 2)")
    serve_cmd.add_argument("--shard-size", type=int, default=4, metavar="N",
                           help="cells per dispatch shard (default 4)")
    serve_cmd.add_argument("--shard-jobs", type=int, default=1, metavar="N",
                           help="processes each shard fans its run_many "
                                "over (default 1 = in-thread serial)")
    serve_cmd.add_argument("--queue-dir", default=None, metavar="DIR",
                           help="durable queue directory (default: "
                                "<cache>/queue)")
    serve_cmd.add_argument("--max-depth", type=int, default=64, metavar="N",
                           help="queued-job bound before backpressure "
                                "(default 64)")
    serve_cmd.add_argument("--rate", type=float, default=10.0,
                           help="per-tenant sustained submit rate, "
                                "jobs/s (default 10)")
    serve_cmd.add_argument("--burst", type=float, default=20,
                           help="per-tenant submit burst (default 20)")
    serve_cmd.add_argument("--spans", action="store_true",
                           help="record job/shard/cell spans to "
                                "<queue-dir>/spans.jsonl "
                                "(see docs/observability.md)")

    submit_cmd = sub.add_parser(
        "submit", help="submit a job to a running `repro serve` daemon")
    submit_cmd.add_argument("--server", required=True, metavar="URL",
                            help="daemon base URL, e.g. "
                                 "http://127.0.0.1:8023")
    submit_cmd.add_argument("--workloads", nargs="+", required=True,
                            metavar="W", help="workload axis of the sweep")
    submit_cmd.add_argument("--arches", nargs="+", required=True,
                            metavar="ARCH", help="arch axis of the sweep")
    submit_cmd.add_argument("--widths", nargs="*", type=int, default=None,
                            metavar="N",
                            help="width axis (default: the global --width)")
    submit_cmd.add_argument("--priority", choices=("interactive", "batch"),
                            default="batch",
                            help="queue lane (default batch)")
    submit_cmd.add_argument("--tenant", default="default",
                            help="tenant for rate accounting")
    submit_cmd.add_argument("--idempotency-key", default=None, metavar="KEY",
                            help="resubmitting the same key returns the "
                                 "original job instead of a duplicate")
    submit_cmd.add_argument("--wait", action="store_true",
                            help="poll to completion and print the "
                                 "result table")
    submit_cmd.add_argument("--timeout", type=float, default=300.0,
                            help="--wait timeout in seconds (default 300)")
    submit_cmd.add_argument("--trace", nargs="?", const="new", default=None,
                            metavar="TRACE_ID:SPAN_ID",
                            help="propagate a span-trace parent context "
                                 "with the job; bare --trace mints fresh "
                                 "ids (printed for correlation)")

    poll_cmd = sub.add_parser(
        "poll", help="poll a job on a running `repro serve` daemon")
    poll_cmd.add_argument("job_id", help="job id returned by submit")
    poll_cmd.add_argument("--server", required=True, metavar="URL",
                          help="daemon base URL")
    poll_cmd.add_argument("--results", action="store_true",
                          help="wait for completion and print the "
                               "ordered result table")
    poll_cmd.add_argument("--timeout", type=float, default=300.0,
                          help="--results timeout in seconds (default 300)")

    campaign_cmd = sub.add_parser(
        "campaign",
        help="run one shard of a distributed campaign, or merge its "
             "shards into the ordered result stream "
             "(see docs/robustness.md)")
    campaign_cmd.add_argument("--campaign-dir", required=True,
                              metavar="DIR",
                              help="directory holding the manifest, "
                                   "shard run-logs and merged stream")
    campaign_cmd.add_argument("--shard", default=None, metavar="K/N",
                              help="run shard K of N (e.g. 0/4); the "
                                   "matrix axes are read from the "
                                   "manifest if one exists")
    campaign_cmd.add_argument("--merge", action="store_true",
                              help="merge every shard's run-log into "
                                   "merged.json (submission order, "
                                   "gaps named)")
    campaign_cmd.add_argument("--workloads", nargs="+", default=None,
                              metavar="W",
                              help="workload axis (first shard only; "
                                   "later shards read the manifest)")
    campaign_cmd.add_argument("--arches", nargs="+", default=None,
                              metavar="ARCH", help="arch axis")
    campaign_cmd.add_argument("--widths", nargs="*", type=int,
                              default=None, metavar="N",
                              help="width axis (default: the global "
                                   "--width)")
    campaign_cmd.add_argument("--salt", type=int, default=0,
                              help="shard-assignment salt (default 0); "
                                   "re-salting rebalances the split")
    campaign_cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="shared result cache the shards "
                                   "merge through (default: the global "
                                   "cache)")
    campaign_cmd.add_argument("--spans", action="store_true",
                              help="shard runs: record shard/cell spans "
                                   "to spans-K-of-N.jsonl; merge: stitch "
                                   "them into merged-spans.jsonl + a "
                                   "Chrome trace.json")
    # global knobs after the subcommand too (`repro campaign --seed 0`)
    campaign_cmd.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    campaign_cmd.add_argument("--ops", type=int, default=argparse.SUPPRESS)
    campaign_cmd.add_argument("--jobs", type=int, default=argparse.SUPPRESS)

    reconcile_cmd = sub.add_parser(
        "reconcile",
        help="audit a campaign (expected matrix vs cache vs run-logs) "
             "and repair it to convergence (see docs/robustness.md)")
    reconcile_cmd.add_argument("--campaign-dir", required=True,
                               metavar="DIR",
                               help="campaign directory (must hold a "
                                    "manifest)")
    reconcile_cmd.add_argument("--check", action="store_true",
                               help="detect and report only — no "
                                    "repairs are executed")
    reconcile_cmd.add_argument("--max-rounds", type=int, default=3,
                               metavar="N",
                               help="repair/re-verify rounds before "
                                    "giving up (default 3)")
    reconcile_cmd.add_argument("--budget", type=int, default=2,
                               metavar="N",
                               help="repair attempts per damaged cell "
                                    "(default 2)")
    reconcile_cmd.add_argument("--server", default=None, metavar="URL",
                               help="execute repairs via this running "
                                    "`repro serve` daemon (it must "
                                    "share the cache) instead of "
                                    "locally")
    reconcile_cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                               help="the campaign's shared result cache "
                                    "(default: the global cache)")
    reconcile_cmd.add_argument("--out", default=None, metavar="FILE",
                               help="write the machine-readable JSON "
                                    "reconcile report here")
    reconcile_cmd.add_argument("--jobs", type=int,
                               default=argparse.SUPPRESS,
                               help="worker processes for local repairs")
    reconcile_cmd.add_argument("--spans", action="store_true",
                               help="record reconcile-round and repair "
                                    "spans into the campaign's trace")

    top_cmd = sub.add_parser(
        "top",
        help="live campaign monitor: tail run-logs and/or poll a "
             "`repro serve` daemon (see docs/observability.md)")
    top_cmd.add_argument("run_logs", nargs="*", metavar="LOG",
                         help="JSONL run-log(s) to tail (shard logs, "
                              "reconcile logs, runner logs)")
    top_cmd.add_argument("--server", default=None, metavar="URL",
                         help="also poll this daemon's /healthz and "
                              "/metricsz")
    top_cmd.add_argument("--interval", type=float, default=2.0,
                         metavar="S",
                         help="refresh interval in seconds (default 2)")
    top_cmd.add_argument("--once", action="store_true",
                         help="render one frame and exit (scripting/CI)")
    top_cmd.add_argument("--window", type=float, default=60.0, metavar="S",
                         help="rolling window for the sims/sec rate "
                              "(default 60)")
    return parser


def _runner(args) -> ExperimentRunner:
    cache = "" if args.no_cache else None
    progress = None
    if args.progress:
        # heartbeat goes to stderr so piped table output stays clean
        progress = lambda line: print(line, file=sys.stderr)  # noqa: E731
    return ExperimentRunner(target_ops=args.ops, seed=args.seed,
                            cache_dir=cache, jobs=args.jobs,
                            task_timeout=args.task_timeout,
                            retries=args.retries,
                            run_log=args.run_log, progress=progress)


def _cmd_workloads(args) -> int:
    rows = [[spec.name, spec.description] for spec in KERNELS.values()]
    print(format_table(["kernel", "behaviour"], rows,
                       title="workload suite"))
    return 0


def _cmd_configs(args) -> int:
    rows = []
    for arch in _ALL_ARCHES:
        cfg = config_for(arch, width=args.width)
        sched = cfg.scheduler
        rows.append([arch, sched.kind, cfg.issue_width,
                     f"{cfg.frequency_ghz:.1f} GHz", cfg.rob_size])
    print(format_table(["arch", "scheduler", "width", "freq", "ROB"], rows,
                       title=f"presets at {args.width}-wide"))
    return 0


def _traced_run(workload: str, arch: str, args, metrics=None, sampler=None):
    """Run one simulation with telemetry on (bypasses the result cache)."""
    from .core.pipeline import Pipeline
    from .telemetry import StallAttribution, Tracer
    from .workloads.suite import get_trace

    cfg = config_for(arch, width=args.width)
    trace = get_trace(workload, args.ops, args.seed)
    tracer, attribution = Tracer(), StallAttribution()
    result = Pipeline(trace, cfg, tracer=tracer, attribution=attribution,
                      metrics=metrics, sampler=sampler).run()
    return result, tracer, attribution


def _write_trace_file(tracer, path: str, fmt: Optional[str], label: str,
                      metadata=None, samples=None) -> None:
    from pathlib import Path

    from .telemetry import write_chrome_trace, write_konata

    Path(path).resolve().parent.mkdir(parents=True, exist_ok=True)
    if fmt is None:
        fmt = "konata" if path.endswith((".kanata", ".konata", ".log")) \
            else "chrome"
    if fmt == "konata":
        # Konata has no counter-track concept; samples are chrome-only
        write_konata(tracer, path)
    else:
        write_chrome_trace(tracer, path, label=label, metadata=metadata,
                           samples=samples)
    print(f"wrote {fmt} trace: {path}")


def _print_stall_tables(result) -> None:
    stats = result.stats
    total = stats.cycles or 1
    rows = [
        [category, cycles, f"{100.0 * cycles / total:.1f}%"]
        for category, cycles in stats.stall_cycles.items()
    ]
    rows.append(["TOTAL", sum(stats.stall_cycles.values()), "100.0%"])
    print()
    print(format_table(
        ["category", "cycles", "share"], rows,
        title="stall attribution (every cycle charged once)",
    ))
    print()
    print(format_table(
        ["structure", "mean occupancy"],
        [[name, value] for name, value in stats.occupancy.items()],
        title="average structure occupancy", float_fmt="{:.2f}",
    ))


def _profiled_simulate(args, cfg):
    """Run one simulation under cProfile; returns the SimResult.

    Bypasses the result cache on purpose: a cache hit would profile a
    JSON load, not the pipeline.  The trace is built *before* the
    profiler starts, so the report shows simulation cost only.
    """
    import cProfile
    import pstats

    from .core.pipeline import simulate as _simulate
    from .workloads.suite import get_trace

    trace = get_trace(args.workload, args.ops, args.seed)
    profiler = cProfile.Profile()
    profiler.enable()
    result = _simulate(trace, cfg)
    profiler.disable()
    if args.profile_out:
        profiler.dump_stats(args.profile_out)
        print(f"wrote cProfile stats: {args.profile_out}", file=sys.stderr)
    stats = pstats.Stats(profiler, stream=sys.stderr)
    stats.sort_stats("cumulative").print_stats(25)
    return result


def _cmd_simulate(args) -> int:
    cfg = config_for(args.arch, width=args.width)
    profiling = args.profile or args.profile_out is not None
    if profiling and (args.metrics or args.sample_interval or args.trace_out):
        print("--profile measures an undecorated run; ignoring "
              "--metrics/--sample-interval/--trace-out", file=sys.stderr)
        args.metrics, args.sample_interval, args.trace_out = False, None, None
    metrics_on = args.metrics or args.sample_interval is not None
    sampling = _sampling_from_args(args)
    if sampling is not None and (profiling or metrics_on or args.trace_out):
        # telemetry hooks force full-detail simulation, so a "sampled
        # traced run" cannot exist — refuse rather than silently pick one
        print("--sample cannot be combined with --metrics/"
              "--sample-interval/--trace-out/--profile (telemetry "
              "requires a full-detail run)", file=sys.stderr)
        return 2
    registry = sampler = None
    if metrics_on:
        from .telemetry import IntervalSampler, MetricsRegistry

        registry = MetricsRegistry()
        sampler = IntervalSampler(args.sample_interval or 1000)
    if sampling is not None:
        from .core.sampling import with_sampling

        runner = _runner(args)
        result = runner.run(args.workload, with_sampling(cfg, **sampling))
    elif profiling:
        result = _profiled_simulate(args, cfg)
    elif args.trace_out or metrics_on:
        result, tracer, _ = _traced_run(args.workload, args.arch, args,
                                        metrics=registry, sampler=sampler)
        if args.trace_out:
            # write the file before the tables so a closed stdout pipe
            # (e.g. `... | head`) can't lose the trace
            _write_trace_file(
                tracer, args.trace_out, args.trace_format,
                label=f"{args.workload}/{cfg.name}",
                metadata={"workload": args.workload, "config": cfg.name},
                samples=result.interval_samples,
            )
    else:
        runner = _runner(args)
        result = runner.run_arch(args.workload, args.arch, width=args.width)
    report = EnergyModel().evaluate(result, cfg)
    print(format_table(
        ["metric", "value"],
        [
            ["workload", args.workload],
            ["config", cfg.name],
            ["cycles", result.cycles],
            ["committed", result.stats.committed],
            ["IPC", round(result.ipc, 3)],
            ["branch mispredicts", result.stats.branch_mispredicts],
            ["order violations", result.stats.order_violations],
            ["energy/op (pJ)", round(report.energy_per_instruction_pj, 1)],
        ],
        title="simulation summary",
    ))
    if result.sampled:
        print()
        _print_sampled_summary(result)
    breakdown = result.stats.breakdown.averages()
    rows = [[klass] + [breakdown[klass][seg] for seg in
                       ("decode_to_dispatch", "dispatch_to_ready",
                        "ready_to_issue")]
            for klass in ("Ld", "LdC", "Rst", "All")]
    print()
    print(format_table(
        ["class", "dec->disp", "disp->ready", "ready->issue"], rows,
        title="decode-to-issue breakdown (cycles)", float_fmt="{:.1f}",
    ))
    print()
    fractions = report.fractions()
    from .analysis.plotting import stacked_bars

    print(stacked_bars(
        [cfg.name],
        {category: [fraction] for category, fraction in fractions.items()
         if fraction > 0.005},
        title="core energy by component (Fig. 15 categories)",
    ))
    if args.trace_out:
        _print_stall_tables(result)
    if metrics_on:
        _print_metrics_tables(result, registry)
    return 0


def _print_sampled_summary(result) -> None:
    """Window counts, coverage and per-metric confidence intervals."""
    info = result.sampling or {}
    rows = [
        ["mode", "exact" if info.get("exact") else "sampled"],
        ["measured windows", info.get("windows", 0)],
        ["measured ops", info.get("measured_ops", 0)],
        ["measured cycles", info.get("measured_cycles", 0)],
        ["fast-forwarded ops", info.get("ff_ops", 0)],
        ["warmup ops (discarded)", info.get("warmup_ops", 0)],
    ]
    for metric, estimate in sorted((info.get("estimates") or {}).items()):
        mean = estimate.get("mean")
        ci95 = estimate.get("ci95")
        if mean is None:
            continue
        value = (f"{mean:.4g}" if ci95 is None
                 else f"{mean:.4g} +/- {ci95:.2g} (95% CI)")
        rows.append([metric, value])
    print(format_table(["sampled run", "value"], rows,
                       title="sampling summary (extrapolated statistics)"))


def _print_metrics_tables(result, registry) -> None:
    """Sparkline time-series, top counters and histograms for one run."""
    from .analysis.plotting import sparkline
    from .telemetry import series

    samples = result.interval_samples
    if samples:
        keys = ["ipc", "occupancy.rob", "occupancy.sched",
                "occupancy.decode_queue", "occupancy.lq", "occupancy.sq"]
        keys += [f"queues.{name}"
                 for name in sorted(samples[-1].get("queues", {}))]
        rows = []
        for key in keys:
            data = series(samples, key)
            # series() yields None where a sample lacks the key (ragged
            # series are legal); aggregate over the present points only
            present = [value for value in data if value is not None]
            if not present:
                continue
            rows.append([key,
                         sparkline([0.0 if value is None else value
                                    for value in data], width=40),
                         round(min(present), 3), round(max(present), 3),
                         round(present[-1], 3)])
        print()
        print(format_table(
            ["series", "history", "min", "max", "last"], rows,
            title=f"interval time-series ({len(samples)} samples, "
                  f"every {result.sample_interval} cycles)",
        ))
        stalls = samples[-1].get("stall_fractions") or {}
        rows = []
        for category in stalls:
            data = series(samples, f"stall_fractions.{category}")
            present = [value for value in data if value is not None]
            if not present or max(present) <= 0:
                continue
            rows.append([category,
                         sparkline([0.0 if value is None else value
                                    for value in data],
                                   width=40, lo=0.0, hi=1.0),
                         f"{100.0 * present[-1]:.1f}%"])
        if rows:
            print()
            print(format_table(
                ["stall class", "history (0..1 scale)", "last"], rows,
                title="per-interval stall-class fractions",
            ))
    snap = registry.snapshot()
    counters = sorted(
        ((name, s["value"]) for name, s in snap.items()
         if s["type"] == "counter"),
        key=lambda kv: (-kv[1], kv[0]),
    )
    if counters:
        print()
        print(format_table(
            ["counter", "value"], [list(kv) for kv in counters[:15]],
            title=f"top counters ({len(counters)} registered)",
        ))
    histograms = [(name, s) for name, s in snap.items()
                  if s["type"] == "histogram"]
    if histograms:
        rows = [[name, s["count"], round(s["mean"], 2),
                 sparkline(list(s["buckets"].values()))]
                for name, s in histograms]
        bounds = list(histograms[0][1]["buckets"])
        print()
        print(format_table(
            ["histogram", "count", "mean", "distribution"], rows,
            title=f"histograms (buckets: {' '.join(bounds)})",
        ))


def _cmd_metrics(args) -> int:
    import json
    from pathlib import Path

    from .telemetry import IntervalSampler, MetricsRegistry

    registry = MetricsRegistry()
    sampler = IntervalSampler(args.sample_interval)
    result, tracer, _ = _traced_run(args.workload, args.arch, args,
                                    metrics=registry, sampler=sampler)
    cfg = config_for(args.arch, width=args.width)
    samples = result.interval_samples
    # write artefacts before the tables so a closed stdout pipe
    # (e.g. `... | head`) can't lose them
    if args.trace_out:
        _write_trace_file(
            tracer, args.trace_out, "chrome",
            label=f"{args.workload}/{cfg.name}",
            metadata={"workload": args.workload, "config": cfg.name},
            samples=samples,
        )
    if args.csv:
        from .telemetry import write_samples_csv

        Path(args.csv).resolve().parent.mkdir(parents=True, exist_ok=True)
        write_samples_csv(samples, args.csv)
        print(f"wrote samples CSV: {args.csv}")
    if args.json_out:
        payload = {
            "workload": args.workload,
            "config": cfg.name,
            "cycles": result.cycles,
            "committed": result.stats.committed,
            "sample_interval": result.sample_interval,
            "metrics": registry.snapshot(),
            "samples": samples,
        }
        target = Path(args.json_out).resolve()
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote metrics JSON: {args.json_out}")
    if args.prometheus:
        from .telemetry import render_prometheus

        labels = {"workload": args.workload, "config": cfg.name}
        print(render_prometheus(registry.snapshot(), labels=labels), end="")
        return 0
    print(format_table(
        ["metric", "value"],
        [
            ["workload", args.workload],
            ["config", cfg.name],
            ["cycles", result.cycles],
            ["committed", result.stats.committed],
            ["IPC", round(result.ipc, 3)],
            ["samples", len(samples)],
            ["sample interval", result.sample_interval],
            ["metrics registered", len(registry)],
        ],
        title="instrumented simulation",
    ))
    _print_metrics_tables(result, registry)
    return 0


def _trace_path_for_arch(path: str, arch: str) -> str:
    stem, dot, suffix = path.rpartition(".")
    if not dot:
        return f"{path}.{arch}"
    return f"{stem}.{arch}.{suffix}"


def _cmd_compare(args) -> int:
    runner = _runner(args)
    model = EnergyModel()
    for arch in args.arches:
        if arch not in _ALL_ARCHES:
            print(f"unknown arch: {arch}", file=sys.stderr)
            return 2
    by_arch = {}
    if not args.trace_out:
        # batch the uncached runs (parallel under --jobs); quarantined
        # cells come back as FailedResult rows instead of raising
        results = runner.run_many([
            (args.workload, config_for(arch, width=args.width))
            for arch in args.arches
        ])
        by_arch = dict(zip(args.arches, results))
    rows = []
    for arch in args.arches:
        if args.trace_out:
            result, tracer, _ = _traced_run(args.workload, arch, args)
            _write_trace_file(
                tracer, _trace_path_for_arch(args.trace_out, arch),
                args.trace_format, label=f"{args.workload}/{arch}",
                metadata={"workload": args.workload, "config": arch},
            )
        else:
            result = by_arch[arch]
        if not result.ok:
            rows.append([arch, "FAILED", result.kind, "", ""])
            continue
        cfg = config_for(arch, width=args.width)
        report = model.evaluate(result, cfg)
        rows.append([
            arch, round(result.ipc, 3), result.cycles,
            round(report.energy_per_instruction_pj, 1),
            round(report.efficiency / 1e12, 3),
        ])
    print(format_table(
        ["arch", "IPC", "cycles", "pJ/op", "1/EDP (1/(J*s) x1e12)"], rows,
        title=f"{args.workload} @ {args.width}-wide",
    ))
    return _report_failures(runner)


def _report_failures(runner: ExperimentRunner) -> int:
    """Print the quarantine summary; non-zero when cells were lost.

    Also surfaces the cache-health counter: corrupt / unreadable disk
    cache entries are tolerated (treated as misses and re-simulated)
    but worth a warning — they usually mean a crashed writer or a
    schema change invalidated part of the cache.
    """
    if runner.cache_warnings:
        count = runner.cache_warnings
        noun = "entry" if count == 1 else "entries"
        print(f"cache health: {count} corrupt/unreadable {noun} "
              f"re-simulated — run `repro reconcile` on campaign "
              f"directories to audit and repair the cache")
    summary = runner.failure_summary()
    if not summary:
        return 0
    print()
    print(summary, file=sys.stderr)
    return 1


def _cmd_suite(args) -> int:
    runner = _runner(args)
    arches = ("inorder", args.arch)
    sampling = _sampling_from_args(args)

    def build(arch):
        config = config_for(arch, width=args.width)
        if sampling is not None:
            from .core.sampling import with_sampling

            # sample baseline and target alike so the speedup column
            # compares extrapolated-vs-extrapolated, not mixed tiers
            config = with_sampling(config, **sampling)
        return config

    results = iter(runner.run_many([
        (workload, build(arch))
        for arch in arches
        for workload in SUITE_NAMES
    ]))
    by_arch = {arch: {w: next(results) for w in SUITE_NAMES}
               for arch in arches}
    rows = []
    speedups = []
    for workload in SUITE_NAMES:
        base = by_arch["inorder"][workload]
        result = by_arch[args.arch][workload]
        if not (base.ok and result.ok):
            bad = result if not result.ok else base
            rows.append([workload, "FAILED", bad.kind, ""])
            continue
        speedup = base.seconds / result.seconds
        speedups.append(speedup)
        rows.append([workload, round(result.ipc, 3), result.cycles,
                     round(speedup, 2)])
    rows.append(["GEOMEAN", "", "",
                 round(geomean(speedups), 2) if speedups else "n/a"])
    print(format_table(
        ["workload", "IPC", "cycles", "speedup/InO"], rows,
        title=f"{args.arch} @ {args.width}-wide across the suite"
              + (" (sampled)" if sampling is not None else ""),
    ))
    return _report_failures(runner)


def _cmd_trace(args) -> int:
    result, tracer, _ = _traced_run(args.workload, args.arch, args)
    cfg = config_for(args.arch, width=args.width)
    # write the file before the tables so a closed stdout pipe
    # (e.g. `repro trace ... | head`) can't lose the trace
    if args.trace_out:
        _write_trace_file(
            tracer, args.trace_out, args.trace_format,
            label=f"{args.workload}/{cfg.name}",
            metadata={"workload": args.workload, "config": cfg.name},
        )
    counts = tracer.stage_counts()
    print(format_table(
        ["metric", "value"],
        [
            ["workload", args.workload],
            ["config", cfg.name],
            ["cycles", result.cycles],
            ["committed", result.stats.committed],
            ["IPC", round(result.ipc, 3)],
            ["events traced", len(tracer)],
            ["micro-ops traced", len(tracer.ops)],
            ["squashes traced", counts.get("squash", 0)],
        ],
        title="traced simulation",
    ))
    _print_stall_tables(result)
    return 0


def _cmd_report(args) -> int:
    from .analysis.experiments import build_report

    print(build_report(_runner(args)))
    return 0


def _cmd_figure(args) -> int:
    from .analysis import experiments
    from .analysis.plotting import bar_chart

    runner = _runner(args)
    if args.which == "fig11":
        data = experiments.collect_fig11(runner)
        print(bar_chart(data, title="Figure 11: speedup over InO (geomean)",
                        reference=data["ooo"]))
    elif args.which == "fig13":
        data = experiments.collect_fig13(runner)
        print(bar_chart(data, title="Figure 13: step-by-step (speedup/InO)"))
    elif args.which == "fig16":
        energy = experiments.collect_energy(runner)
        ooo = energy["ooo"]
        eff = {
            arch: (ooo["total"] * ooo["seconds"])
            / (d["total"] * d["seconds"])
            for arch, d in energy.items()
        }
        print(bar_chart(eff, title="Figure 16: 1/EDP vs OoO", reference=1.0))
    else:  # fig17c
        data = {
            f"{count} P-IQs": value
            for count, value in experiments.collect_fig17c(runner).items()
        }
        print(bar_chart(data, title="Figure 17c: perf vs OoO by P-IQ count",
                        reference=1.0))
    return 0


def _cmd_characterize(args) -> int:
    from .analysis.dataflow import analyze
    from .workloads.suite import get_trace

    rows = []
    for workload in SUITE_NAMES:
        trace = get_trace(workload, args.ops, args.seed)
        report = analyze(trace)
        rows.append([
            workload, report.ops, report.critical_path,
            round(report.ideal_ipc, 2), round(report.chain_fraction, 3),
        ])
    print(format_table(
        ["workload", "ops", "critical path", "dataflow IPC limit",
         "chain fraction"],
        rows, title="dataflow-limit characterisation",
    ))
    return 0


def _cmd_fuzz(args) -> int:
    from .verify.fuzz import run_fuzz

    for arch in args.arches:
        if arch not in _ALL_ARCHES:
            print(f"unknown arch: {arch}", file=sys.stderr)
            return 2
    report = run_fuzz(
        programs=args.programs,
        seed=args.seed,
        arches=args.arches,
        width=args.width,
        check_invariants=not args.no_invariants,
        shrink=not args.no_shrink,
        max_ops=args.ops,
        progress=print,
    )
    print(report.summary())
    if args.out:
        from pathlib import Path

        Path(args.out).resolve().parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(report.full_report() + "\n")
        print(f"wrote failure report: {args.out}")
    return 0 if report.ok else 1


def _cmd_chaos(args) -> int:
    from .verify.chaos import ChaosSpec, run_campaign

    for arch in args.arches:
        if arch not in _ALL_ARCHES:
            print(f"unknown arch: {arch}", file=sys.stderr)
            return 2
    if args.distributed:
        from .verify.chaos import run_distributed

        report = run_distributed(
            arches=args.arches[:2],
            target_ops=args.ops,
            seed=args.seed,
            n_shards=args.shards,
            jobs=args.jobs or 2,
            poison=args.poison,
            timeout=args.timeout,
            work_dir=args.work_dir,
            progress=print,
        )
        print()
        print(report.full_report())
        if args.out:
            from pathlib import Path

            Path(args.out).resolve().parent.mkdir(parents=True,
                                                  exist_ok=True)
            with open(args.out, "w") as handle:
                handle.write(report.full_report() + "\n")
            print(f"wrote campaign report: {args.out}")
        return 0 if report.ok else 1
    spec = ChaosSpec(kill=args.kill, hang=args.hang, error=args.error,
                     wedge=args.wedge, poison=args.poison, salt=args.seed)
    report = run_campaign(
        arches=args.arches,
        target_ops=args.ops,
        seed=args.seed,
        jobs=args.jobs or 4,
        spec=spec,
        timeout=args.timeout,
        retries=args.retries if args.retries is not None else 4,
        smoke=args.smoke,
        progress=print,
    )
    print()
    print(report.full_report())
    if args.out:
        from pathlib import Path

        Path(args.out).resolve().parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(report.full_report() + "\n")
        print(f"wrote campaign report: {args.out}")
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    import signal
    from pathlib import Path

    from .serve.daemon import ServeDaemon

    cache = "" if args.no_cache else None
    if args.queue_dir is not None:
        queue_dir = args.queue_dir
    else:
        # default next to the result cache so one tree holds all state
        import os

        root = os.environ.get("REPRO_BENCH_CACHE") or str(
            Path(__file__).resolve().parents[2] / ".bench_cache")
        queue_dir = str(Path(root) / "queue")
    daemon = ServeDaemon(
        queue_dir=queue_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        shard_size=args.shard_size,
        shard_jobs=args.shard_jobs,
        max_depth=args.max_depth,
        rate=args.rate,
        burst=args.burst,
        runner_kwargs=dict(
            target_ops=args.ops, seed=args.seed, cache_dir=cache,
            task_timeout=args.task_timeout, retries=args.retries,
            run_log=args.run_log,
        ),
        spans=args.spans,
    )
    daemon.start()
    print(f"serving on {daemon.url} (queue: {queue_dir}, "
          f"{args.workers} workers)")
    if daemon.queue.replayed_jobs:
        print(f"replayed {daemon.queue.replayed_jobs} unfinished job(s) "
              "from the journal")
    if daemon.queue.recovered_jobs:
        print(f"recovered {len(daemon.queue.recovered_jobs)} completed "
              "job(s) whose job_done record was torn off")
    if args.port_file:
        Path(args.port_file).write_text(f"{daemon.port}\n")
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: daemon.request_stop())
    daemon.wait()
    print("serve: drained and stopped")
    return 0


def _result_rows(entries):
    """Render ordered result envelopes as CLI table rows."""
    rows = []
    for entry in entries:
        cell = entry["cell"]
        label = f"{cell['workload']}/{cell['arch']}@{cell['width']}"
        if entry["ok"]:
            stats = entry["result"]["stats"]
            cycles = stats["cycles"]
            ipc = stats["committed"] / cycles if cycles else 0.0
            rows.append([entry["seq"], label, round(ipc, 3), cycles, "ok"])
        else:
            rows.append([entry["seq"], label, "", "",
                         f"FAILED ({entry['result']['kind']})"])
    return rows


def _print_job_results(client, job_id: str, timeout: float) -> int:
    status = client.wait(job_id, timeout=timeout)
    entries = client.stream_results(job_id, timeout=timeout)
    print(format_table(
        ["seq", "cell", "IPC", "cycles", "status"], _result_rows(entries),
        title=f"job {job_id}: {status['status']}, "
              f"{status['failed_cells']} failed cell(s)",
    ))
    return 0 if (status["status"] == "done"
                 and status["failed_cells"] == 0) else 1


def _cmd_submit(args) -> int:
    from .serve.client import ServeClient, ServeError
    from .serve.protocol import PROTOCOL_VERSION

    trace = None
    if args.trace is not None:
        from .telemetry.spans import SpanContext, new_span_id, new_trace_id

        if args.trace == "new":
            trace = SpanContext(new_trace_id(), new_span_id()).to_dict()
        else:
            try:
                trace_id, _, span_id = args.trace.partition(":")
                trace = SpanContext(trace_id, span_id).to_dict()
                SpanContext.from_dict(trace)
            except ValueError as exc:
                print(f"bad --trace: {exc}", file=sys.stderr)
                return 2
    client = ServeClient(args.server)
    try:
        health = client.health()
        if health.get("protocol") != PROTOCOL_VERSION:
            print(f"protocol mismatch: server speaks "
                  f"{health.get('protocol')}, client {PROTOCOL_VERSION}",
                  file=sys.stderr)
            return 2
        job = client.submit(
            matrix={
                "workloads": args.workloads,
                "arches": args.arches,
                "widths": args.widths or [args.width],
            },
            priority=args.priority,
            tenant=args.tenant,
            idempotency_key=args.idempotency_key,
            trace=trace,
        )
    except ServeError as exc:
        print(f"submit rejected: {exc}", file=sys.stderr)
        return 1
    verb = "submitted" if job["created"] else "already submitted"
    print(f"{verb}: job {job['job_id']} ({job['cells']} cells, "
          f"{job['priority']} lane)")
    if trace is not None:
        print(f"trace {trace['trace_id']} span {trace['span_id']}")
    if not args.wait:
        return 0
    return _print_job_results(client, job["job_id"], args.timeout)


def _cmd_poll(args) -> int:
    from .serve.client import ServeClient, ServeError

    client = ServeClient(args.server)
    try:
        if args.results:
            return _print_job_results(client, args.job_id, args.timeout)
        status = client.status(args.job_id)
    except ServeError as exc:
        print(f"poll failed: {exc}", file=sys.stderr)
        return 1
    print(format_table(
        ["field", "value"],
        [[key, value] for key, value in status.items()],
        title=f"job {args.job_id}",
    ))
    return 0


def _campaign_spec(args):
    """Resolve the campaign spec: manifest first, axes as fallback."""
    from .distrib import CampaignSpec, load_manifest

    n_shards = 1
    if args.shard:
        try:
            shard_str, total_str = args.shard.split("/", 1)
            shard, n_shards = int(shard_str), int(total_str)
        except ValueError:
            raise SystemExit(f"--shard wants K/N (e.g. 0/4), "
                             f"got {args.shard!r}")
    else:
        shard = None
    try:
        spec = load_manifest(args.campaign_dir)
        if args.shard and spec.n_shards != n_shards:
            raise SystemExit(
                f"--shard says {n_shards} shards but the manifest "
                f"says {spec.n_shards}")
        return spec, shard
    except FileNotFoundError:
        pass
    if not args.workloads or not args.arches:
        raise SystemExit(
            "no manifest yet: pass --workloads and --arches to declare "
            "the campaign matrix")
    spec = CampaignSpec(
        workloads=tuple(args.workloads),
        arches=tuple(args.arches),
        widths=tuple(args.widths or [args.width]),
        ops=args.ops, seed=args.seed,
        n_shards=n_shards, salt=args.salt,
    )
    return spec, shard


def _cmd_campaign(args) -> int:
    from pathlib import Path

    from .distrib import merge_shards, merge_trace, run_shard

    for arch in args.arches or ():
        if arch not in _ALL_ARCHES:
            print(f"unknown arch: {arch}", file=sys.stderr)
            return 2
    spec, shard = _campaign_spec(args)
    cache = "" if args.no_cache else args.cache_dir
    if shard is not None:
        progress = print if args.progress else None
        results = run_shard(
            spec, shard, args.campaign_dir, cache_dir=cache,
            jobs=args.jobs, task_timeout=args.task_timeout,
            retries=args.retries, progress=progress, spans=args.spans)
        failed = sum(1 for result in results if not result.ok)
        print(f"shard {shard}/{spec.n_shards}: {len(results)} cell(s), "
              f"{failed} failed")
        return 0 if failed == 0 else 1
    if args.merge:
        merged = merge_shards(spec, args.campaign_dir, cache_dir=cache)
        print(merged.summary())
        has_spans = any(Path(args.campaign_dir).glob("spans-*.jsonl"))
        if args.spans or has_spans:
            spans = merge_trace(spec, args.campaign_dir, chrome=True)
            cells = sum(1 for span in spans if span.name == "cell")
            print(f"merged trace: {len(spans)} span(s), {cells} cell "
                  f"span(s) -> merged-spans.jsonl + trace.json")
        if merged.gaps:
            print(f"gaps (submission indices): {merged.gaps}")
            print("run `repro reconcile` to repair them")
        return 0 if merged.complete else 1
    print("nothing to do: pass --shard K/N or --merge", file=sys.stderr)
    return 2


def _cmd_reconcile(args) -> int:
    import json as json_mod
    from pathlib import Path

    from .distrib import Detector, load_manifest, reconcile_campaign

    try:
        spec = load_manifest(args.campaign_dir)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    cache = "" if args.no_cache else args.cache_dir
    if args.check:
        diff = Detector(spec, cache_dir=cache).diff(args.campaign_dir)
        print(diff.summary())
        rows = [[status.seq,
                 f"{status.cell.workload}/{status.cell.arch}"
                 f"@{status.cell.width}",
                 status.state, status.detail]
                for status in diff.damaged]
        if rows:
            print(format_table(["seq", "cell", "state", "detail"], rows,
                               title="damaged cells"))
        return 0 if diff.converged else 1
    report = reconcile_campaign(
        args.campaign_dir, spec=spec, cache_dir=cache,
        max_rounds=args.max_rounds, cell_budget=args.budget,
        server=args.server, jobs=args.jobs,
        progress=print if args.progress else None, spans=args.spans)
    print(report.summary())
    if args.out:
        path = Path(args.out).resolve()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json_mod.dumps(report.to_dict(), indent=2,
                                       sort_keys=True) + "\n")
        print(f"wrote reconcile report: {args.out}")
    return 0 if report.converged else 1


def _cmd_top(args) -> int:
    from .telemetry.top import run_top

    if not args.run_logs and not args.server:
        print("nothing to watch: pass run-log path(s) and/or --server",
              file=sys.stderr)
        return 2
    return run_top(args.run_logs, server=args.server,
                   interval=args.interval, once=args.once,
                   window_s=args.window)


_COMMANDS = {
    "workloads": _cmd_workloads,
    "configs": _cmd_configs,
    "simulate": _cmd_simulate,
    "metrics": _cmd_metrics,
    "compare": _cmd_compare,
    "suite": _cmd_suite,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "figure": _cmd_figure,
    "characterize": _cmd_characterize,
    "fuzz": _cmd_fuzz,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "poll": _cmd_poll,
    "campaign": _cmd_campaign,
    "reconcile": _cmd_reconcile,
    "top": _cmd_top,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _make_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
