"""Core: configuration, pipeline, ROB, ports, stats."""

from .config import (
    FIG11_ARCHES,
    FIG13_ARCHES,
    CoreConfig,
    SchedulerParams,
    config_for,
)
from .ifop import InFlightOp
from .lockstep import run_lockstep
from .optable import OpTable
from .pipeline import DeadlockError, Pipeline, SimulationDeadlock, simulate
from .ports import PORT_MAPS_BY_WIDTH, PortFile
from .regready import ReadyFile
from .rob import ReorderBuffer
from .sampling import (
    FastForward,
    SampledSimulation,
    build_simulation,
    simulate_sampled,
    with_sampling,
)
from .stats import DelayBreakdown, SimResult, SimStats

__all__ = [
    "FIG11_ARCHES",
    "FIG13_ARCHES",
    "CoreConfig",
    "SchedulerParams",
    "config_for",
    "InFlightOp",
    "OpTable",
    "run_lockstep",
    "DeadlockError",
    "Pipeline",
    "SimulationDeadlock",
    "simulate",
    "PORT_MAPS_BY_WIDTH",
    "PortFile",
    "ReadyFile",
    "ReorderBuffer",
    "FastForward",
    "SampledSimulation",
    "build_simulation",
    "simulate_sampled",
    "with_sampling",
    "DelayBreakdown",
    "SimResult",
    "SimStats",
]
