"""Core configurations (paper Tables I and II).

:func:`config_for` builds a :class:`CoreConfig` for any evaluated
microarchitecture at any issue width:

====================  =====================================================
``arch`` key          Meaning
====================  =====================================================
``inorder``           stall-on-use in-order core (InO)
``ooo``               baseline out-of-order IQ
``ooo_oldest``        OoO + oldest-first selection (Fig. 11 rightmost bars)
``ces``               clustered P-IQs [Palacharla'97]
``ces_mda``           CES + M-dependence-aware steering (Fig. 13)
``casino``            cascaded S-IQs [HPCA'20]
``fxa``               in-order IXU + half-size OoO back end [MICRO'14]
``ballerino_step1``   S-IQ + P-IQs, R-dependence steering only
``ballerino_step2``   step 1 + MDA steering
``ballerino``         step 2 + P-IQ sharing (the full design, 8 S/P-IQs)
``ballerino_ideal``   sharing without the implementation constraints
``ballerino12``       Ballerino with 1 S-IQ + 11 P-IQs
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..memory.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class SchedulerParams:
    """Scheduling-window configuration (paper Table II)."""

    kind: str
    iq_size: int = 96  # unified IQ entries (inorder / ooo / fxa back end)
    oldest_first: bool = False
    num_piqs: int = 8  # CES / Ballerino P-IQ count (incl. S-IQ for Ballerino)
    piq_size: int = 12
    siq_size: int = 8
    siq_window: int = 4  # ops examined at the S-IQ head per cycle
    mda_steering: bool = False
    piq_sharing: bool = False
    ideal_sharing: bool = False
    casino_queues: Tuple[int, ...] = (8, 40, 40, 8)
    casino_window: int = 4
    ixu_depth: int = 3


@dataclass(frozen=True)
class CoreConfig:
    """Full core + memory configuration (paper Table I)."""

    name: str
    scheduler: SchedulerParams
    issue_width: int = 8
    decode_width: int = 4  # decode & dispatch width
    commit_width: int = 8
    frequency_ghz: float = 3.4
    voltage: float = 1.04
    rob_size: int = 224
    lq_size: int = 72
    sq_size: int = 56
    phys_int: int = 180
    phys_fp: int = 168
    recovery_penalty: int = 11
    alloc_queue: int = 64  # decode->rename buffering (window analysis: 160 total)
    fetch_latency: int = 3  # fetch+decode pipeline depth
    rename_latency: int = 2  # two-stage pipelined renaming (paper SIV-B)
    mdp_enabled: bool = True
    #: Forward-progress watchdog: raise
    #: :class:`~repro.core.pipeline.DeadlockError` (with a pipeline
    #: snapshot) when no µop commits for this many consecutive cycles.
    #: ``0`` disables the watchdog (the ``max_cycles`` bound still holds).
    deadlock_cycles: int = 100_000
    #: Run the per-cycle invariant checker (repro.verify.invariants).
    #: Debug/fuzzing aid — slows simulation down considerably.
    check_invariants: bool = False
    #: Sampled-simulation knobs (see :mod:`repro.core.sampling`).  With
    #: ``sample_period == 0`` (the default) every cycle is simulated in
    #: detail; a positive period makes :func:`~repro.core.pipeline.
    #: simulate` alternate fast-forward / detailed-warmup / measured
    #: windows and return an extrapolated, ``sampled=True`` result.
    sample_period: int = 0  # µops between measured-window starts
    sample_window: int = 2_000  # committed µops measured per window
    #: Detailed-but-unmeasured cycles at the start of each window.  The
    #: default of 0 measures the whole window (fast-forward does the
    #: warming) — in practice the most accurate protocol, because a
    #: mid-flight measurement boundary cuts through in-flight work
    #: (see docs/performance.md).
    warmup_cycles: int = 0
    ff_width: int = 8  # µops retired per fast-forward cycle
    #: Train the front end / caches / MDP on only the last N fast-forward
    #: µops before each window (0 = train on the whole gap).  Bounding
    #: the warming work makes fast-forward cost independent of the gap
    #: length at some accuracy cost on cold-miss-heavy workloads.
    ff_warmup_ops: int = 0
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)


#: width -> (freq, decode, rob, lq, sq, phys_int, phys_fp, unified_iq)
_WIDTH_PARAMS: Dict[int, Tuple] = {
    2: (2.0, 2, 48, 24, 16, 64, 64, 32),
    4: (2.5, 4, 128, 48, 32, 128, 96, 64),
    8: (3.4, 4, 224, 72, 56, 180, 168, 96),
    10: (3.4, 5, 352, 128, 72, 280, 224, 120),
}

#: width -> CES P-IQ count (Ballerino spends one of these slots on its S-IQ)
_CES_PARAMS: Dict[int, int] = {2: 2, 4: 4, 8: 8, 10: 10}
_CES_SIZE: Dict[int, int] = {2: 16, 4: 16, 8: 12, 10: 12}

_CASINO_PARAMS: Dict[int, Tuple[Tuple[int, ...], int]] = {
    2: ((4, 28), 2),
    4: ((6, 52, 6), 3),
    8: ((8, 40, 40, 8), 4),
    10: ((8, 40, 40, 8), 4),
}

_FXA_IQ: Dict[int, int] = {2: 16, 4: 32, 8: 48, 10: 80}

_BALLERINO_PARAMS: Dict[int, Tuple[int, int, int]] = {
    # width -> (siq_size, num_piqs, piq_size)
    2: (4, 1, 16),
    4: (8, 3, 16),
    8: (8, 7, 12),
    10: (8, 9, 12),
}


def _scheduler_for(arch: str, width: int, num_piqs: Optional[int],
                   piq_size: Optional[int]) -> SchedulerParams:
    unified_iq = _WIDTH_PARAMS[width][7]
    if arch == "inorder":
        return SchedulerParams(kind="inorder", iq_size=unified_iq)
    if arch == "ooo":
        return SchedulerParams(kind="ooo", iq_size=unified_iq)
    if arch == "ooo_oldest":
        return SchedulerParams(kind="ooo", iq_size=unified_iq, oldest_first=True)
    if arch in ("ces", "ces_mda"):
        return SchedulerParams(
            kind="ces",
            num_piqs=num_piqs if num_piqs is not None else _CES_PARAMS[width],
            piq_size=piq_size if piq_size is not None else _CES_SIZE[width],
            mda_steering=(arch == "ces_mda"),
        )
    if arch == "casino":
        queues, window = _CASINO_PARAMS[width]
        return SchedulerParams(
            kind="casino", casino_queues=queues, casino_window=window
        )
    if arch == "fxa":
        return SchedulerParams(kind="fxa", iq_size=_FXA_IQ[width])
    if arch == "spq":
        # extension design (related work SVII): parallel priority queues
        # ordered by predicted issue time, same entry budget as CES
        return SchedulerParams(
            kind="spq",
            num_piqs=_CES_PARAMS[width],
            piq_size=_CES_SIZE[width],
        )
    if arch == "dnb":
        # extension design (related work SVII): small OoO IQ + bypass +
        # delay queues sized to the same overall entry budget
        return SchedulerParams(
            kind="dnb",
            iq_size=max(8, unified_iq // 4),
            num_piqs=max(2, width // 2),  # delay queues
            piq_size=12,
            siq_size=max(4, unified_iq // 8),  # bypass queue
        )
    if arch.startswith("ballerino"):
        siq, piqs, size = _BALLERINO_PARAMS[width]
        if arch == "ballerino12":
            piqs = 11
        if num_piqs is not None:
            piqs = num_piqs
        if piq_size is not None:
            size = piq_size
        step1 = arch == "ballerino_step1"
        step2 = arch == "ballerino_step2"
        return SchedulerParams(
            kind="ballerino",
            siq_size=siq,
            siq_window=min(_WIDTH_PARAMS[width][1], siq),
            num_piqs=piqs,
            piq_size=size,
            mda_steering=not step1,
            piq_sharing=not (step1 or step2),
            ideal_sharing=(arch == "ballerino_ideal"),
        )
    raise ValueError(f"unknown microarchitecture: {arch}")


def config_for(
    arch: str,
    width: int = 8,
    num_piqs: Optional[int] = None,
    piq_size: Optional[int] = None,
    frequency_ghz: Optional[float] = None,
    voltage: Optional[float] = None,
) -> CoreConfig:
    """Build the configuration for microarchitecture ``arch`` at ``width``.

    ``num_piqs`` / ``piq_size`` override the Table II defaults for the
    sensitivity sweeps (Figures 6b and 17c); ``frequency_ghz`` / ``voltage``
    support the DVFS study (Figure 17b).
    """
    if width not in _WIDTH_PARAMS:
        raise ValueError(f"unsupported issue width: {width}")
    freq, decode, rob, lq, sq, pint, pfp, _ = _WIDTH_PARAMS[width]
    scheduler = _scheduler_for(arch, width, num_piqs, piq_size)
    name = f"{arch}-{width}w"
    if num_piqs is not None:
        name += f"-p{num_piqs}"
    if piq_size is not None:
        name += f"-s{piq_size}"
    return CoreConfig(
        name=name,
        scheduler=scheduler,
        issue_width=width,
        decode_width=decode,
        commit_width=width,
        frequency_ghz=frequency_ghz if frequency_ghz is not None else freq,
        voltage=voltage if voltage is not None else 1.04,
        rob_size=rob,
        lq_size=lq,
        sq_size=sq,
        phys_int=pint,
        phys_fp=pfp,
        recovery_penalty=8 if arch == "inorder" else 11,
        mdp_enabled=(arch != "inorder"),
    )


#: All microarchitectures evaluated in Figure 11 (8-wide).
FIG11_ARCHES = (
    "inorder",
    "ces",
    "casino",
    "fxa",
    "ballerino",
    "ballerino12",
    "ooo",
    "ooo_oldest",
)

#: Step-by-step designs of Figure 13.
FIG13_ARCHES = (
    "ces",
    "ces_mda",
    "ballerino_step1",
    "ballerino_step2",
    "ballerino",
    "ballerino_ideal",
)
