"""In-flight micro-op bookkeeping shared by the pipeline and schedulers."""

from __future__ import annotations

from typing import Optional, Tuple

from ..isa.instruction import DynOp


class InFlightOp:
    """Mutable per-attempt state of one dynamic micro-op in the pipeline.

    A fresh object is created each time the op is fetched (so a squashed and
    re-fetched op never aliases stale event-queue entries).

    Timestamps follow the paper's Figure 3c stages: decode (fetch into the
    front end), dispatch (into the scheduler), ready (last operand became
    available), issue, complete, commit.
    """

    __slots__ = (
        "seq",
        "op",
        "dest_preg",
        "src_pregs",
        "prev_dest_preg",
        "dest_arch",
        "port",
        "mdp_dep_seq",
        "klass",
        "mispredicted",
        "decode_cycle",
        "dispatch_cycle",
        "issue_cycle",
        "ready_cycle",
        "complete_cycle",
        "issued",
        "completed",
        "iq_index",
        "iq_partition",
        "sched_tag",
        "wake_pending",
        "mdp_waiting",
    )

    def __init__(self, seq: int, op: DynOp, decode_cycle: int):
        self.seq = seq
        self.op = op
        self.dest_preg: Optional[int] = None
        self.src_pregs: Tuple[int, ...] = ()
        self.prev_dest_preg: Optional[int] = None
        self.dest_arch: Optional[int] = None
        self.port: int = -1
        self.mdp_dep_seq: Optional[int] = None
        self.klass: str = "Rst"  # Ld / LdC / Rst (paper Fig. 3c taxonomy)
        self.mispredicted: bool = False
        self.decode_cycle = decode_cycle
        self.dispatch_cycle: int = -1
        self.issue_cycle: int = -1
        self.ready_cycle: int = -1
        self.complete_cycle: int = -1
        self.issued: bool = False
        self.completed: bool = False
        # scheduler scratch state
        self.iq_index: int = -1
        self.iq_partition: int = 0
        self.sched_tag: str = ""
        # event-driven wakeup state (see repro.core.wakeup): number of
        # source pregs still in flight, and whether an MDP dependence is
        # still unsatisfied.  Maintained by the WakeupScoreboard.
        self.wake_pending: int = 0
        self.mdp_waiting: bool = False

    # convenience passthroughs -----------------------------------------
    @property
    def opcode(self):
        return self.op.opcode

    @property
    def is_load(self) -> bool:
        return self.op.is_load

    @property
    def is_store(self) -> bool:
        return self.op.is_store

    @property
    def is_branch(self) -> bool:
        return self.op.is_branch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IFOp {self.seq} {self.op.opcode.name} port={self.port}>"
