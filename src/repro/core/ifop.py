"""In-flight micro-op bookkeeping shared by the pipeline and schedulers.

:class:`InFlightOp` used to be a mutable ``__slots__`` object allocated
fresh on every fetch.  It is now a *thin view* — two slots, a table
reference and a slot index — over one row of the structure-of-arrays
:class:`~repro.core.optable.OpTable`.  Every attribute the schedulers,
LSQ, telemetry and tests used to read or write is preserved as a
property that forwards to the backing column, so consumers are
unchanged; only the storage moved.

A view constructed directly (``InFlightOp(seq, op, decode_cycle)``, as
unit tests do) owns a private single-row table, so standalone ops keep
working without a pipeline around them.  Views handed out by
:meth:`OpTable.alloc` are recycled along with their slot; holders of
long-lived references must pair them with :attr:`gen` to detect
recycling (see the staleness discussion in :mod:`repro.core.optable`).

Timestamps follow the paper's Figure 3c stages: decode (fetch into the
front end), dispatch (into the scheduler), ready (last operand became
available), issue, complete, commit.
"""

from __future__ import annotations

from ..isa.instruction import DynOp
from .optable import OpTable


# The accessors are compiled with direct attribute syntax (self._t.seq)
# rather than closing over getattr(...): on the hot path these run tens
# of thousands of times per simulated kilocycle, and the compiled form
# skips a builtins lookup and a call per access.


def _compile_field(src: str) -> property:
    namespace: dict = {}
    exec(src, namespace)
    return property(namespace["fget"], namespace["fset"])


def _int_field(name: str) -> property:
    return _compile_field(
        f"def fget(self):\n"
        f"    return self._t.{name}[self._i]\n"
        f"def fset(self, value):\n"
        f"    self._t.{name}[self._i] = value\n"
    )


def _flag_field(name: str) -> property:
    return _compile_field(
        f"def fget(self):\n"
        f"    return self._t.{name}[self._i] != 0\n"
        f"def fset(self, value):\n"
        f"    self._t.{name}[self._i] = 1 if value else 0\n"
    )


def _obj_field(name: str) -> property:
    return _compile_field(
        f"def fget(self):\n"
        f"    return self._t.{name}[self._i]\n"
        f"def fset(self, value):\n"
        f"    self._t.{name}[self._i] = value\n"
    )


class InFlightOp:
    """Mutable per-attempt state of one dynamic micro-op in the pipeline.

    A view over one :class:`OpTable` row.  The pipeline allocates one per
    fetch via :meth:`OpTable.alloc` (recycling both slot and view), so —
    unlike the seed design — a squashed-and-refetched op *may* alias an
    older reference; stale holders detect that through the :attr:`gen`
    stamp instead of object identity.
    """

    __slots__ = ("_t", "_i")

    def __init__(self, seq: int, op: DynOp, decode_cycle: int = 0):
        # standalone construction (unit tests, scratch ops): a private
        # single-row table backs this lone view.
        table = OpTable(1)
        self._t = table
        self._i = table.alloc_slot(seq, op, decode_cycle)
        table.views[self._i] = self

    # integer timestamps / indices
    seq = _int_field("seq")
    decode_cycle = _int_field("decode_cycle")
    dispatch_cycle = _int_field("dispatch_cycle")
    issue_cycle = _int_field("issue_cycle")
    ready_cycle = _int_field("ready_cycle")
    complete_cycle = _int_field("complete_cycle")
    port = _int_field("port")
    iq_index = _int_field("iq_index")
    iq_partition = _int_field("iq_partition")
    wake_pending = _int_field("wake_pending")

    # boolean flags
    issued = _flag_field("issued")
    completed = _flag_field("completed")
    mispredicted = _flag_field("mispredicted")
    mdp_waiting = _flag_field("mdp_waiting")

    # object-valued fields
    op = _obj_field("op")
    dest_preg = _obj_field("dest_preg")
    src_pregs = _obj_field("src_pregs")
    prev_dest_preg = _obj_field("prev_dest_preg")
    dest_arch = _obj_field("dest_arch")
    mdp_dep_seq = _obj_field("mdp_dep_seq")
    klass = _obj_field("klass")  # Ld / LdC / Rst (paper Fig. 3c taxonomy)
    sched_tag = _obj_field("sched_tag")

    @property
    def gen(self) -> int:
        """Allocation generation of the backing slot (staleness stamp)."""
        return self._t.gen[self._i]

    @property
    def alive(self) -> bool:
        """Whether the backing slot is currently allocated to this op."""
        return bool(self._t.live[self._i])

    # convenience passthroughs -----------------------------------------
    @property
    def opcode(self):
        return self._t.op[self._i].opcode

    # Cached as flag columns at alloc time: the seed's 3-hop property
    # chain (InFlightOp -> DynOp -> Opcode) showed up in profiles at
    # tens of thousands of calls per simulation.
    @property
    def is_load(self) -> bool:
        return bool(self._t.is_load[self._i])

    @property
    def is_store(self) -> bool:
        return bool(self._t.is_store[self._i])

    @property
    def is_branch(self) -> bool:
        return bool(self._t.is_branch[self._i])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = self._t.op[self._i]
        name = op.opcode.name if op is not None else "<freed>"
        return f"<IFOp {self.seq} {name} port={self.port}>"
