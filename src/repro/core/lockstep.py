"""Lock-step multi-config simulation over one shared trace.

Design-space sweeps (the paper's Figure 11/12 matrices, CG-OoO-style
comparisons) run *many configurations over the same instruction
stream*.  Simulating them one after another re-pays the per-run fixed
costs — trace decode, cache warm-up of the interpreter state — once per
configuration.  :func:`run_lockstep` instead builds N pipelines over
one already-decoded :class:`~repro.workloads.trace.Trace` and advances
them round-robin, one cycle each, in a single pass.

Because each :class:`~repro.core.pipeline.Pipeline` owns all of its
architectural state (op table, ROB, scheduler, memory hierarchy) and
only *reads* the shared trace, interleaving cycles cannot change any
simulation outcome: every pipeline executes exactly the cycles it would
have executed under ``run()``, in the same order.  Results are
therefore bit-identical to per-config serial runs — pinned by
``tests/test_lockstep.py`` against the golden-stats matrix.

Failures are isolated per pipeline: a configuration that trips the
forward-progress watchdog gets its :class:`DeadlockError` recorded in
its result slot while its siblings keep stepping.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from ..workloads.trace import Trace
from .config import CoreConfig
from .pipeline import Pipeline
from .stats import SimResult

#: per-slot outcome: a result, or the exception that stopped that config
LockstepOutcome = Union[SimResult, Exception]


def run_lockstep(
    trace: Trace,
    configs: Sequence[CoreConfig],
    max_cycles: int = 50_000_000,
    pipeline_factory: Optional[Callable[[Trace, CoreConfig], Pipeline]] = None,
) -> List[LockstepOutcome]:
    """Simulate every config over ``trace`` in one interleaved pass.

    Args:
        trace: The shared (already decoded) µop stream.
        configs: One :class:`CoreConfig` per simulation to run.
        max_cycles: Per-pipeline cycle ceiling (as in ``Pipeline.run``).
        pipeline_factory: Optional ``f(trace, config) -> Pipeline`` for
            callers that need telemetry hooks attached; the default
            (:func:`repro.core.sampling.build_simulation`) builds a
            bare :class:`Pipeline`, or a
            :class:`~repro.core.sampling.SampledSimulation` when the
            config enables sampling — both speak the same
            ``begin/step/finalize`` protocol, so full and sampled
            configs can share one lock-step pass over the trace.

    Returns:
        One entry per config, in order: the :class:`SimResult`, or the
        exception (typically :class:`~repro.core.pipeline.DeadlockError`)
        that terminated that configuration.  ``KeyboardInterrupt`` and
        other :class:`BaseException` are *not* captured — they abort the
        whole pass.
    """
    if pipeline_factory is None:
        from .sampling import build_simulation

        pipeline_factory = build_simulation
    pipelines: List[Optional[Pipeline]] = []
    outcomes: List[Optional[LockstepOutcome]] = [None] * len(configs)
    for index, config in enumerate(configs):
        try:
            pipeline = pipeline_factory(trace, config)
            pipeline.begin(max_cycles)
        except Exception as exc:  # bad config: fail that slot only
            outcomes[index] = exc
            pipelines.append(None)
        else:
            pipelines.append(pipeline)

    active = [index for index, p in enumerate(pipelines) if p is not None]
    while active:
        still_running = []
        for index in active:
            pipeline = pipelines[index]
            try:
                if pipeline.step():
                    still_running.append(index)
                else:
                    outcomes[index] = pipeline.finalize()
            except Exception as exc:  # watchdog / invariant failure
                outcomes[index] = exc
        active = still_running
    return outcomes  # type: ignore[return-value]  # every slot is filled
