"""Structure-of-arrays storage for in-flight micro-op state.

The seed simulator kept one mutable Python object per in-flight µop and
allocated a fresh one on every fetch (and every squash-refetch).  That
put the per-cycle hot path at the mercy of object allocation, attribute
dictionaries and the garbage collector.  :class:`OpTable` replaces it
with a preallocated *structure of arrays*: every field of an in-flight
op lives in its own parallel column — stdlib ``array`` columns for the
numeric/flag fields, plain lists for the object-valued ones — indexed
by a recycled **slot id**.

:class:`~repro.core.ifop.InFlightOp` is now a *thin view* (two slots:
table + slot index) over one row of this table, so every consumer of
the old object API — schedulers, the LSQ, telemetry, the invariant
checker, unit tests — keeps working unchanged.  The pipeline allocates
views through :meth:`OpTable.alloc` and returns them with
:meth:`OpTable.free`; both the slot *and* the view object are recycled,
so steady-state simulation performs no per-op allocation at all.

Staleness and generations
-------------------------
The seed design relied on object identity to invalidate stale
references ("a squashed-and-refetched op is a *new* object").  Slot
recycling breaks that invariant: a freed view can be handed out again,
possibly even for the same sequence number.  Every slot therefore
carries a monotonically increasing **generation** stamp, bumped on each
:meth:`alloc`.  Holders of long-lived references (the pipeline's event
queue, the wakeup scoreboard's consumer buckets, the OoO scheduler's
incremental ready-set) capture ``(view, view.gen)`` pairs and treat a
generation mismatch as "stale", which is exactly what object identity
used to mean.

numpy acceleration (optional)
-----------------------------
When numpy is importable (and not disabled via ``REPRO_SOA_NUMPY=0``)
the numeric columns can be exposed zero-copy as ndarrays for bulk
analytics — see :meth:`OpTable.numpy_columns` and
:meth:`OpTable.summary`.  numpy is never required: every consumer has a
pure-stdlib fallback, and per-element access always goes through the
stdlib ``array`` columns (scalar indexing of ndarrays is *slower* in
CPython).
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional

try:  # optional acceleration for bulk/aggregate queries only
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

#: Feature flag: numpy-backed bulk queries ("0" forces the stdlib path).
NUMPY_ENABLED = _np is not None and os.environ.get("REPRO_SOA_NUMPY", "1") != "0"

#: signed 64-bit integer columns and their reset values
_INT_COLS = (
    ("seq", -1),
    ("decode_cycle", 0),
    ("dispatch_cycle", -1),
    ("issue_cycle", -1),
    ("ready_cycle", -1),
    ("complete_cycle", -1),
    ("port", -1),
    ("iq_index", -1),
    ("iq_partition", 0),
    ("wake_pending", 0),
)

#: byte flag columns (0/1), all reset to 0 except ``live``
_FLAG_COLS = ("issued", "completed", "mispredicted", "mdp_waiting",
              "live", "is_load", "is_store", "is_branch")

#: object columns and their reset values (plain lists: keep None-ness)
_OBJ_COLS = (
    ("op", None),
    ("dest_preg", None),
    ("src_pregs", ()),
    ("prev_dest_preg", None),
    ("dest_arch", None),
    ("mdp_dep_seq", None),
    ("klass", "Rst"),
    ("sched_tag", ""),
)

_VIEW_CLASS = None


def _view_class():
    """Late-bound InFlightOp (ifop.py imports this module, not vice versa)."""
    global _VIEW_CLASS
    if _VIEW_CLASS is None:
        from .ifop import InFlightOp

        _VIEW_CLASS = InFlightOp
    return _VIEW_CLASS


class OpTable:
    """Preallocated parallel columns of in-flight op state.

    Args:
        capacity: Initial slot count; the table doubles on exhaustion,
            so this is a sizing hint (the pipeline passes its ROB size
            plus front-end queue depth), never a hard limit.
    """

    __slots__ = tuple(name for name, _ in _INT_COLS) + _FLAG_COLS + tuple(
        name for name, _ in _OBJ_COLS
    ) + ("gen", "capacity", "views", "_free", "_next_gen", "live_count")

    def __init__(self, capacity: int = 64):
        capacity = max(1, capacity)
        self.capacity = capacity
        for name, _ in _INT_COLS:
            setattr(self, name, array("q", bytes(8 * capacity)))
        for name in _FLAG_COLS:
            setattr(self, name, array("b", bytes(capacity)))
        for name, default in _OBJ_COLS:
            setattr(self, name, [default] * capacity)
        #: per-slot allocation generation (stale-reference detection)
        self.gen = array("q", bytes(8 * capacity))
        #: slot -> recycled InFlightOp view (created lazily, reused forever)
        self.views: List[Optional[object]] = [None] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._next_gen = 1
        self.live_count = 0

    # ------------------------------------------------------------------
    # allocation / recycling
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        old = self.capacity
        extra = old  # double
        for name, _ in _INT_COLS:
            getattr(self, name).extend(array("q", bytes(8 * extra)))
        for name in _FLAG_COLS:
            getattr(self, name).extend(array("b", bytes(extra)))
        for name, default in _OBJ_COLS:
            getattr(self, name).extend([default] * extra)
        self.gen.extend(array("q", bytes(8 * extra)))
        self.views.extend([None] * extra)
        self._free.extend(range(old + extra - 1, old - 1, -1))
        self.capacity = old + extra

    def alloc_slot(self, seq: int, op, decode_cycle: int) -> int:
        """Take (and reset) a free slot; returns its index."""
        free = self._free
        if not free:
            self._grow()
            free = self._free
        slot = free.pop()
        # reset every column (the recycled slot carries stale values)
        self.seq[slot] = seq
        self.decode_cycle[slot] = decode_cycle
        self.dispatch_cycle[slot] = -1
        self.issue_cycle[slot] = -1
        self.ready_cycle[slot] = -1
        self.complete_cycle[slot] = -1
        self.port[slot] = -1
        self.iq_index[slot] = -1
        self.iq_partition[slot] = 0
        self.wake_pending[slot] = 0
        self.issued[slot] = 0
        self.completed[slot] = 0
        self.mispredicted[slot] = 0
        self.mdp_waiting[slot] = 0
        self.live[slot] = 1
        self.op[slot] = op
        if op is not None:
            self.is_load[slot] = 1 if op.is_load else 0
            self.is_store[slot] = 1 if op.is_store else 0
            self.is_branch[slot] = 1 if op.is_branch else 0
        else:
            self.is_load[slot] = 0
            self.is_store[slot] = 0
            self.is_branch[slot] = 0
        self.dest_preg[slot] = None
        self.src_pregs[slot] = ()
        self.prev_dest_preg[slot] = None
        self.dest_arch[slot] = None
        self.mdp_dep_seq[slot] = None
        self.klass[slot] = "Rst"
        self.sched_tag[slot] = ""
        self.gen[slot] = self._next_gen
        self._next_gen += 1
        self.live_count += 1
        return slot

    def alloc(self, seq: int, op, decode_cycle: int):
        """Allocate one op row; returns its (recycled) InFlightOp view."""
        slot = self.alloc_slot(seq, op, decode_cycle)
        view = self.views[slot]
        if view is None:
            cls = _view_class()
            view = cls.__new__(cls)
            view._t = self
            view._i = slot
            self.views[slot] = view
        return view

    def free(self, view) -> None:
        """Return a view's slot to the free list (idempotent).

        The view object itself is kept attached to the slot and handed
        out again by the next :meth:`alloc` of that slot; stale holders
        are expected to detect recycling through the generation stamp.
        """
        slot = view._i
        if view._t is not self or not self.live[slot]:
            return  # double-free (squash paranoia sweep) or foreign view
        self.live[slot] = 0
        # Columns are deliberately left intact until the slot is
        # re-allocated: the squash path frees ops before the scheduler /
        # LSQ flush sweeps run, and those may still read fields of the
        # dying op.  The DynOp reference is owned by the trace, so
        # keeping it alive here leaks nothing.
        self._free.append(slot)
        self.live_count -= 1

    # ------------------------------------------------------------------
    # bulk queries (analytics / snapshots)
    # ------------------------------------------------------------------
    def live_slots(self) -> List[int]:
        live = self.live
        return [slot for slot in range(self.capacity) if live[slot]]

    def numpy_columns(self) -> Optional[Dict[str, "object"]]:
        """Zero-copy ndarray views of the numeric columns (or ``None``).

        Only available when numpy is importable and ``REPRO_SOA_NUMPY``
        is not ``0``; mutating the returned arrays mutates the table.
        """
        if not NUMPY_ENABLED:
            return None
        cols = {name: _np.frombuffer(getattr(self, name), dtype=_np.int64)
                for name, _ in _INT_COLS}
        for name in _FLAG_COLS:
            cols[name] = _np.frombuffer(getattr(self, name), dtype=_np.int8)
        cols["gen"] = _np.frombuffer(self.gen, dtype=_np.int64)
        return cols

    def summary(self) -> Dict[str, int]:
        """Aggregate occupancy counts over the live rows.

        Uses the numpy fast path when enabled; the stdlib fallback is
        exact but linear in table capacity.  Consumed by the deadlock
        snapshot (:mod:`repro.telemetry.snapshot`) so post-mortems show
        the op-table picture alongside the per-queue view.
        """
        if NUMPY_ENABLED:
            cols = self.numpy_columns()
            live = cols["live"].astype(bool)
            return {
                "capacity": self.capacity,
                "live": int(live.sum()),
                "issued": int((cols["issued"].astype(bool) & live).sum()),
                "completed": int((cols["completed"].astype(bool) & live).sum()),
                "waiting_sources": int(((cols["wake_pending"] > 0)
                                        & live).sum()),
                "waiting_mdp": int((cols["mdp_waiting"].astype(bool)
                                    & live).sum()),
            }
        live = self.live
        issued = self.issued
        completed = self.completed
        wake = self.wake_pending
        mdp = self.mdp_waiting
        out = {"capacity": self.capacity, "live": 0, "issued": 0,
               "completed": 0, "waiting_sources": 0, "waiting_mdp": 0}
        for slot in range(self.capacity):
            if not live[slot]:
                continue
            out["live"] += 1
            if issued[slot]:
                out["issued"] += 1
            if completed[slot]:
                out["completed"] += 1
            if wake[slot] > 0:
                out["waiting_sources"] += 1
            if mdp[slot]:
                out["waiting_mdp"] += 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<OpTable {self.live_count}/{self.capacity} live, "
                f"gen {self._next_gen}>")
