"""The cycle-level core pipeline.

A trace-driven model of the paper's baseline core (Table I): fetch (with
TAGE + BTB and an L1I), decode/allocation queue, two-stage rename,
dispatch, a pluggable *scheduler* (the subject of the paper — see
:mod:`repro.sched`), execute over issue ports and FUs, a load/store unit
with forwarding and memory-order-violation squash, store-set MDP, and
in-order commit from a ROB.

Phase order within a cycle is reverse-pipeline (commit, completion events,
issue, dispatch, rename, fetch) so that same-cycle structural releases and
back-to-back wakeup behave like hardware: an op issued at cycle *C* with a
1-cycle FU marks its destination ready during the completion phase of
*C + 1*, letting a dependent op issue in *C + 1*'s issue phase.

Recovery is modelled with the paper's penalties: a mispredicted branch
stops fetch until it resolves plus the recovery penalty; a memory-order
violation squashes from the offending load, re-fetches, and charges the
same penalty.  Wrong-path execution itself is not simulated (trace-driven;
see DESIGN.md).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..frontend.branch_predictor import FrontEnd
from ..isa.opcodes import OpClass
from ..lsq.mdp import StoreSetPredictor
from ..lsq.queues import LoadStoreUnit
from ..memory.cache import LINE_SIZE
from ..memory.hierarchy import CODE_BASE, MemoryHierarchy
from ..rename.rename_unit import RenameUnit
from ..telemetry.attribution import StallAttribution
from ..telemetry.metrics import IntervalSampler, MetricsRegistry
from ..telemetry.tracer import Tracer
from ..workloads.trace import Trace
from .config import CoreConfig
from .ifop import InFlightOp
from .optable import OpTable
from .ports import PORT_MAPS_BY_WIDTH, PortFile
from .regready import ReadyFile
from .rob import ReorderBuffer
from .stats import SimResult, SimStats
from .wakeup import WakeupScoreboard

#: FU energy-event name per op class.
_FU_EVENT = {
    OpClass.INT_ALU: "fu_int",
    OpClass.INT_MUL: "fu_mul",
    OpClass.INT_DIV: "fu_div",
    OpClass.FP_ADD: "fu_fp",
    OpClass.FP_MUL: "fu_fp",
    OpClass.FP_DIV: "fu_fp",
    OpClass.LOAD: "fu_agu",
    OpClass.STORE: "fu_agu",
    OpClass.BRANCH: "fu_branch",
    OpClass.NOP: "fu_int",
}


class SimulationDeadlock(RuntimeError):
    """No instruction committed for an implausibly long stretch."""


class DeadlockError(SimulationDeadlock):
    """The forward-progress watchdog tripped (or ``max_cycles`` hit).

    Carries a JSON-serialisable pipeline ``snapshot`` (see
    :mod:`repro.telemetry.snapshot`) naming the stuck ROB-head µop,
    per-IQ occupancy/heads, wakeup-scoreboard and LFST state, and the
    stall-attribution totals when available.  The custom ``__reduce__``
    keeps the snapshot attached across the parallel runner's process
    boundary (plain exception pickling drops extra attributes).
    """

    def __init__(self, message: str, snapshot: Optional[Dict] = None):
        super().__init__(message)
        self.snapshot: Dict = snapshot if snapshot is not None else {}

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.snapshot))

    def render(self) -> str:
        """The message plus the rendered snapshot block."""
        from ..telemetry.snapshot import render_snapshot

        if not self.snapshot:
            return str(self)
        return f"{self}\n{render_snapshot(self.snapshot)}"


class Pipeline:
    """One simulated core executing one trace.

    Args:
        trace: The dynamic micro-op stream to replay.
        config: Core configuration (see :mod:`repro.core.config`).
        scheduler_factory: ``f(pipeline) -> scheduler``; defaults to building
            the scheduler named by ``config.scheduler.kind``.
        tracer: Optional :class:`~repro.telemetry.tracer.Tracer` receiving
            per-µop lifecycle events.  Every hook guards on this single
            nullable reference, so the disabled cost is one branch.
        attribution: Optional :class:`~repro.telemetry.attribution.
            StallAttribution` fed once per cycle; its totals land on
            ``SimResult.stats.stall_cycles`` / ``.occupancy``.
        metrics: Optional :class:`~repro.telemetry.metrics.
            MetricsRegistry` receiving hardware-style event counters
            from the pipeline, scheduler, LSQ and rename unit (same
            nullable-reference pattern as the tracer).
        sampler: Optional :class:`~repro.telemetry.metrics.
            IntervalSampler`; its every-N-cycles time-series lands on
            ``SimResult.interval_samples``.
        frontend / hierarchy / mdp: Pre-warmed front end, memory
            hierarchy, and memory-dependence predictor to *share*
            instead of building fresh ones — the sampled-simulation
            driver (:mod:`repro.core.sampling`) threads one warmed set
            through its fast-forward engine and every measured-window
            pipeline.  Defaults build cold state, exactly as before.
    """

    def __init__(
        self,
        trace: Trace,
        config: CoreConfig,
        scheduler_factory: Optional[Callable[["Pipeline"], object]] = None,
        check_invariants: bool = False,
        record_commits: bool = False,
        tracer: Optional[Tracer] = None,
        attribution: Optional[StallAttribution] = None,
        metrics: Optional[MetricsRegistry] = None,
        sampler: Optional[IntervalSampler] = None,
        frontend: Optional[FrontEnd] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        mdp: Optional[StoreSetPredictor] = None,
    ):
        self.trace = trace
        self.config = config
        self.tracer = tracer
        self.attribution = attribution
        self.metrics = metrics
        self.sampler = sampler
        self.hier = (
            hierarchy if hierarchy is not None
            else MemoryHierarchy(config.hierarchy)
        )
        self.frontend = frontend if frontend is not None else FrontEnd()
        self.rename = RenameUnit(config.phys_int, config.phys_fp)
        self.rename.metrics = metrics
        self.ready = ReadyFile(self.rename.num_phys)
        self.lsu = LoadStoreUnit(config.lq_size, config.sq_size)
        self.lsu.tracer = tracer
        self.lsu.metrics = metrics
        self.mdp: Optional[StoreSetPredictor] = (
            mdp if mdp is not None
            else (StoreSetPredictor() if config.mdp_enabled else None)
        )
        self.rob = ReorderBuffer(config.rob_size)
        self.ports = PortFile(PORT_MAPS_BY_WIDTH[config.issue_width])
        self.stats = SimStats()
        self.energy = self.stats.energy_events

        self.cycle = 0
        self.commit_count = 0
        self.fetch_index = 0
        self.fetch_resume_at = 0
        self.pending_redirect: Optional[int] = None  # seq of blocking branch
        self._last_ifetch_line = -1

        # structure-of-arrays op storage: every InFlightOp this pipeline
        # hands out is a recycled view over one row of this table, sized
        # so steady state never grows it (ROB + front-end queues).
        self.ops = OpTable(
            config.rob_size + config.alloc_queue + 2 * config.decode_width
        )
        self.decode_queue: Deque[InFlightOp] = deque()
        self.dispatch_queue: Deque[Tuple[int, InFlightOp]] = deque()
        self.inflight: Dict[int, InFlightOp] = {}
        self.wakeup = WakeupScoreboard(self.inflight, self.ready)
        self._events: List[Tuple[int, int, int, str, InFlightOp, int]] = []
        self._event_counter = 0
        self._store_issued: Dict[int, int] = {}  # store seq -> issue cycle
        self._taint: Dict[int, int] = {}  # preg -> tainting load seq

        self.check_invariants = check_invariants or config.check_invariants
        #: committed DynOps in commit order (the differential oracle's
        #: observable); populated only when record_commits is set.
        self.record_commits = record_commits
        self.commit_log: List = []

        if scheduler_factory is None:
            from ..sched import create_scheduler

            scheduler_factory = create_scheduler
        self.scheduler = scheduler_factory(self)

    # ==================================================================
    # services used by schedulers
    # ==================================================================
    def srcs_ready(self, ifop: InFlightOp, cycle: int) -> bool:
        # O(1): the wakeup scoreboard keeps this count current (each
        # completion decrements its consumers during the completion phase
        # of the cycle it lands in — exactly when a per-src poll of the
        # ReadyFile would have started returning True).  Reads the op
        # table column directly: this is the hottest query in the model.
        return ifop._t.wake_pending[ifop._i] == 0

    def mdp_dep_satisfied(self, ifop: InFlightOp) -> bool:
        # O(1): set at dispatch iff the dependence store had not issued
        # yet, cleared by the store's issue broadcast.
        return ifop._t.mdp_waiting[ifop._i] == 0

    def op_ready(self, ifop: InFlightOp, cycle: int) -> bool:
        """All register operands ready and any MDP dependence satisfied."""
        table = ifop._t
        slot = ifop._i
        return table.wake_pending[slot] == 0 and table.mdp_waiting[slot] == 0

    def try_grant(self, ifop: InFlightOp, cycle: int) -> bool:
        """Request this op's issue port; True (and consumed) if granted."""
        opcode = ifop._t.op[ifop._i].opcode
        klass = opcode.op_class
        port = ifop._t.port[ifop._i]
        if self.ports.can_issue(port, klass, cycle):
            self.ports.grant(port, klass, cycle, opcode.latency,
                             opcode.pipelined)
            return True
        return False

    def producer_incomplete(self, preg: int, cycle: int) -> bool:
        return not self.ready.is_ready(preg, cycle)

    # ==================================================================
    # main loop
    # ==================================================================
    def run(self, max_cycles: int = 50_000_000) -> SimResult:
        """Simulate until the whole trace commits; return the results.

        Raises:
            DeadlockError: When no µop commits for
                ``config.deadlock_cycles`` consecutive cycles (``0``
                disables the watchdog) or the cycle count exceeds
                ``max_cycles``.  The exception carries a full pipeline
                snapshot for post-mortem diagnosis.
        """
        self.begin(max_cycles)
        while self.step():
            pass
        return self.finalize()

    def begin(self, max_cycles: int = 50_000_000,
              start_cycle: int = 0) -> None:
        """Arm the per-run bookkeeping so :meth:`step` can be called.

        Split out of :meth:`run` so external drivers — notably the
        lock-step multi-config runner (:mod:`repro.core.lockstep`) —
        can interleave single cycles of many pipelines.  ``run()`` is
        exactly ``begin()``; ``while step(): pass``; ``finalize()``.

        ``start_cycle`` continues a running global clock: the sampled
        driver's measured-window pipelines share a memory hierarchy
        whose MSHR/fill/DRAM-row state is keyed on absolute cycles, so
        a window must pick up the clock where fast-forward left it, not
        restart at zero.  ``max_cycles`` stays an absolute ceiling.
        """
        self._total = len(self.trace)
        self._max_cycles = max_cycles
        self._deadlock_cycles = self.config.deadlock_cycles
        self.cycle = start_cycle
        self._last_commit_cycle = start_cycle
        self._last_fetch_cycle = start_cycle
        self._last_issue_cycle = start_cycle
        self._fetched_before = 0
        self._issued_before = 0

    def step(self) -> bool:
        """Advance one cycle; False once the whole trace has committed.

        Raises :class:`DeadlockError` exactly as :meth:`run` does; a
        driver stepping several pipelines catches it per pipeline.
        """
        if self.commit_count >= self._total:
            return False
        before = self.commit_count
        self._commit()
        if self.commit_count != before:
            self._last_commit_cycle = self.cycle
        self._process_events()
        self._issue()
        self._dispatch()
        self._rename_stage()
        self._fetch()
        if self.attribution is not None:
            self.attribution.record_cycle(self, self.commit_count != before)
        if self.check_invariants:
            self._assert_invariants()
        stats = self.stats
        if stats.fetched != self._fetched_before:
            self._fetched_before = stats.fetched
            self._last_fetch_cycle = self.cycle
        if stats.issued != self._issued_before:
            self._issued_before = stats.issued
            self._last_issue_cycle = self.cycle
        self.cycle += 1
        if self.sampler is not None:
            self.sampler.tick(self)
        deadlock_cycles = self._deadlock_cycles
        if deadlock_cycles and self.cycle - self._last_commit_cycle > deadlock_cycles:
            raise self._deadlock(
                f"no commit since cycle {self._last_commit_cycle} "
                f"(now {self.cycle}, watchdog {deadlock_cycles}; "
                f"last issue {self._last_issue_cycle}, "
                f"last fetch {self._last_fetch_cycle})"
            )
        if self.cycle > self._max_cycles:
            raise self._deadlock(f"max_cycles ({self._max_cycles}) exceeded")
        return self.commit_count < self._total

    def finalize(self) -> SimResult:
        """Seal the stats and build the :class:`SimResult` (call once)."""
        self.stats.cycles = self.cycle
        if self.attribution is not None:
            self.stats.stall_cycles = self.attribution.totals()
            self.stats.occupancy = self.attribution.occupancy_averages()
        self.stats.scheduler = dict(self.scheduler.extra_stats())
        self.stats.branch_lookups = self.frontend.lookups
        for name, count in self.hier.events.items():
            self.energy[name] += count
        if self.sampler is not None:
            self.sampler.finalize(self)
        return SimResult(
            workload=self.trace.name,
            config_name=self.config.name,
            stats=self.stats,
            memory_stats=self.hier.stats(),
            frequency_ghz=self.config.frequency_ghz,
            interval_samples=(
                self.sampler.samples if self.sampler is not None else []
            ),
            sample_interval=(
                self.sampler.interval if self.sampler is not None else 0
            ),
        )

    def _deadlock(self, reason: str) -> DeadlockError:
        """Build the watchdog exception with a full pipeline snapshot."""
        from ..telemetry.snapshot import capture_snapshot, describe_head

        snapshot = capture_snapshot(self, reason=reason)
        return DeadlockError(
            f"{self.config.name}/{self.trace.name}: {reason}; "
            f"{describe_head(snapshot)}",
            snapshot=snapshot,
        )

    # ==================================================================
    # debug invariants (enabled with check_invariants=True)
    # ==================================================================
    def _assert_invariants(self) -> None:
        """End-of-cycle microarchitectural invariants (debug mode).

        These catch scheduler/pipeline bookkeeping bugs early: structural
        capacities, in-order ROB contents, and LSQ/ROB agreement.
        """
        assert len(self.rob) <= self.config.rob_size, "ROB overflow"
        assert self.lsu.lq_occupancy <= self.config.lq_size, "LQ overflow"
        assert self.lsu.sq_occupancy <= self.config.sq_size, "SQ overflow"
        rob_seqs = [op.seq for op in self.rob._entries]
        assert rob_seqs == sorted(rob_seqs), "ROB out of program order"
        assert all(
            count >= 0 for count in self.ports.inflight
        ), "negative port in-flight count"
        # every un-issued ROB op must still be inside the scheduler window
        unissued = sum(1 for op in self.rob._entries if not op.issued)
        assert unissued <= self.scheduler.occupancy() + len(
            self.dispatch_queue
        ), "scheduler lost track of an un-issued op"
        # the event-driven wakeup counts must agree with a readiness poll
        for op in self.rob._entries:
            if op.issued:
                continue
            polled = self.wakeup.pending_debug(op, self.cycle)
            assert op.wake_pending == polled, (
                f"seq {op.seq}: scoreboard says {op.wake_pending} pending "
                f"sources, poll says {polled}"
            )
            dep = op.mdp_dep_seq
            legacy = (
                dep is None or dep < self.commit_count
                or dep in self._store_issued
            )
            assert (not op.mdp_waiting) == legacy, (
                f"seq {op.seq}: mdp_waiting={op.mdp_waiting} disagrees "
                f"with polled MDP dependence state"
            )
        # cross-structure checks (steering liveness, LFST/LSQ agreement,
        # per-scheduler window shape) live in repro.verify.invariants;
        # imported lazily to keep core free of a verify dependency.
        from ..verify.invariants import check_pipeline

        check_pipeline(self)

    # ==================================================================
    # commit
    # ==================================================================
    def _commit(self) -> None:
        entries = self.rob._entries
        if not entries:
            return
        table = self.ops
        completed = table.completed
        if not completed[entries[0]._i]:
            return
        tracer = self.tracer
        metrics = self.metrics
        for _ in range(self.config.commit_width):
            if not entries or not completed[entries[0]._i]:
                return
            ifop = entries.popleft()
            slot = ifop._i
            seq = table.seq[slot]
            if tracer is not None:
                tracer.emit(self.cycle, seq, "commit")
            if table.is_store[slot]:
                entry = self.lsu.commit_store(seq)
                # retire the store's write into the data cache
                self.hier.access_data(
                    entry.addr, self.cycle, is_write=True,
                    pc=table.op[slot].pc,
                )
            elif table.is_load[slot]:
                self.lsu.commit_load(seq)
            prev_dest = table.prev_dest_preg[slot]
            self.rename.commit_mapping(prev_dest)
            if prev_dest is not None:
                self.ready.release(prev_dest)
            self.stats.breakdown.record(ifop)
            self.energy["rob_commit"] += 1
            self._store_issued.pop(seq, None)
            self.inflight.pop(seq, None)
            if self.record_commits:
                self.commit_log.append(table.op[slot])
            if metrics is not None:
                metrics.count("pipeline.commit_ops")
            self.commit_count += 1
            self.stats.committed += 1
            table.free(ifop)  # recycle the slot (and the view)

    # ==================================================================
    # completion / execution events
    # ==================================================================
    def _schedule(self, when: int, ifop: InFlightOp, kind: str) -> None:
        self._event_counter += 1
        table = ifop._t
        slot = ifop._i
        heapq.heappush(
            self._events,
            (when, table.seq[slot], self._event_counter, kind, ifop,
             table.gen[slot]),
        )

    def _process_events(self) -> None:
        events = self._events
        ops_gen = self.ops.gen
        while events and events[0][0] <= self.cycle:
            when, seq, _, kind, ifop, gen = heapq.heappop(events)
            # Stale events are detected by identity *and* generation:
            # with recycled views, a squashed-and-refetched op can alias
            # the very object this event captured, but its slot was
            # re-allocated so the generation stamp moved on.
            if self.inflight.get(seq) is not ifop or ops_gen[ifop._i] != gen:
                continue  # squashed-and-refetched: stale event
            if kind == "exec":
                self._complete(ifop, when)
            elif kind == "load_agu":
                self._load_agu(ifop, when)
            elif kind == "store_agu":
                self._store_agu(ifop, when)

    def _complete(self, ifop: InFlightOp, when: int) -> None:
        table = ifop._t
        slot = ifop._i
        table.completed[slot] = 1
        table.complete_cycle[slot] = when
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(when, table.seq[slot], "writeback")
        dest_preg = table.dest_preg[slot]
        if dest_preg is not None:
            self.ready.mark_ready(dest_preg, when)
            self.energy["prf_write"] += 1
            scheduler = self.scheduler
            scheduler.on_wakeup(dest_preg, when)
            for waiter in self.wakeup.wake(dest_preg, when):
                scheduler.on_op_ready(waiter, when)
            if tracer is not None:
                tracer.emit(when, table.seq[slot], "wakeup", f"p{dest_preg}")
        self.scheduler.on_complete(ifop, when)
        if table.mispredicted[slot] and table.is_branch[slot]:
            # the front end was stopped at this branch; redirect resolves now
            self.fetch_resume_at = max(
                self.fetch_resume_at, when + self.config.recovery_penalty
            )
            if self.attribution is not None:
                self.attribution.note_recovery(self.fetch_resume_at)
            if self.pending_redirect == ifop.seq:
                self.pending_redirect = None
            # wrong-path activity: the real front end fetches/decodes down
            # the wrong path while the branch resolves.  The trace-driven
            # model does not execute those ops, but their fetch/decode and
            # rename energy is real — charge it for the resolution window
            # at the machine's fetch rate (half-rate utilisation estimate)
            shadow = max(0, when - ifop.decode_cycle)
            wrong_path_ops = (shadow * self.config.decode_width) // 2
            self.energy["fetch"] += wrong_path_ops
            self.energy["rename"] += wrong_path_ops // 2
            self.stats.energy_events["wrongpath_ops"] += wrong_path_ops

    def _load_agu(self, ifop: InFlightOp, when: int) -> None:
        seq, addr = ifop.seq, ifop.op.mem_addr
        forward = self.lsu.load_executing(seq, addr, when)
        self.energy["lsq_search"] += 1
        if forward.forwarded:
            if forward.ready_cycle is None:
                # matching older store has not produced its data yet: retry
                self._schedule(when + 1, ifop, "load_agu")
                return
            complete_at = max(when, forward.ready_cycle) + 1
            source = forward.source_seq
            served_by = f"fwd:{source}"
        else:
            result = self.hier.access_data(addr, when, pc=ifop.op.pc)
            complete_at = result.complete_cycle
            source = -1
            served_by = result.level
        if self.tracer is not None:
            self.tracer.emit(when, seq, "execute", served_by)
        self.lsu.load_executed(seq, when, source)
        self._schedule(max(complete_at, when + 1), ifop, "exec")

    def _store_agu(self, ifop: InFlightOp, when: int) -> None:
        seq, addr = ifop.seq, ifop.op.mem_addr
        violators = self.lsu.store_address_ready(seq, addr, when)
        self.lsu.store_data_ready(seq, when)
        ifop.completed = True
        ifop.complete_cycle = when
        if self.tracer is not None:
            self.tracer.emit(when, seq, "execute", "agu")
            self.tracer.emit(when, seq, "writeback")
        if violators:
            offender = violators[0]
            victim = self.inflight.get(offender)
            self.stats.order_violations += 1
            if self.mdp is not None and victim is not None:
                self.mdp.train_violation(victim.op.pc, ifop.op.pc)
            self._squash(offender)

    # ==================================================================
    # issue
    # ==================================================================
    def _issue(self) -> None:
        for ifop in self.scheduler.select(self.cycle):
            self._do_issue(ifop)

    def _do_issue(self, ifop: InFlightOp) -> None:
        cycle = self.cycle
        table = ifop._t
        slot = ifop._i
        table.issued[slot] = 1
        table.issue_cycle[slot] = cycle
        opcode = table.op[slot].opcode
        src_pregs = table.src_pregs[slot]
        self.stats.issued += 1
        energy = self.energy
        energy["prf_read"] += len(src_pregs)
        energy[_FU_EVENT[opcode.op_class]] += 1
        # reconstruct when the op actually became ready (for Fig. 3c/12)
        ready_at = table.dispatch_cycle[slot]
        ready_cycle = self.ready.ready_cycle
        for preg in src_pregs:
            at = ready_cycle(preg)
            if at > ready_at:
                ready_at = at
        dep = table.mdp_dep_seq[slot]
        if dep is not None and dep in self._store_issued:
            ready_at = max(ready_at, self._store_issued[dep])
        table.ready_cycle[slot] = ready_at if ready_at < cycle else cycle
        if self.metrics is not None:
            self.metrics.count("pipeline.issue_ops")
            self.metrics.count(f"pipeline.issue_port.{table.port[slot]}")
        if self.tracer is not None:
            seq = table.seq[slot]
            self.tracer.emit(cycle, seq, "issue", f"port{table.port[slot]}")
            if not (table.is_load[slot] or table.is_store[slot]):
                self.tracer.emit(
                    cycle + 1, seq, "execute",
                    opcode.op_class.name.lower(),
                )

        if table.is_load[slot]:
            self._schedule(cycle + 1, ifop, "load_agu")
        elif table.is_store[slot]:
            seq = table.seq[slot]
            if self.mdp is not None:
                self.mdp.store_issued(table.op[slot].pc, seq)
            self._store_issued[seq] = cycle
            for waiter in self.wakeup.store_issued(seq):
                self.scheduler.on_op_ready(waiter, cycle)
            self._schedule(cycle + 1, ifop, "store_agu")
        else:
            self._schedule(cycle + opcode.latency, ifop, "exec")

    # ==================================================================
    # dispatch
    # ==================================================================
    def _dispatch(self) -> None:
        queue = self.dispatch_queue
        if not queue:
            return
        cycle = self.cycle
        dispatched = 0
        attribution = self.attribution
        metrics = self.metrics
        table = self.ops
        energy = self.energy
        width = self.config.decode_width
        while queue and dispatched < width:
            available_at, ifop = queue[0]
            slot = ifop._i
            if available_at > cycle or self.rob.full:
                if self.rob.full:
                    if attribution is not None:
                        attribution.note_dispatch_block("rob_full")
                    if metrics is not None:
                        metrics.count("pipeline.dispatch_block.rob_full")
                return
            is_load = table.is_load[slot]
            is_store = table.is_store[slot]
            if is_load and self.lsu.lq_full():
                if attribution is not None:
                    attribution.note_dispatch_block("lq_full")
                if metrics is not None:
                    metrics.count("pipeline.dispatch_block.lq_full")
                return
            if is_store and self.lsu.sq_full():
                if attribution is not None:
                    attribution.note_dispatch_block("sq_full")
                if metrics is not None:
                    metrics.count("pipeline.dispatch_block.sq_full")
                return
            if not self.scheduler.can_accept(ifop):
                if attribution is not None:
                    attribution.note_dispatch_block("iq_full")
                if metrics is not None:
                    metrics.count("pipeline.dispatch_block.iq_full")
                return
            queue.popleft()
            table.dispatch_cycle[slot] = cycle
            seq = table.seq[slot]
            if self.tracer is not None:
                self.tracer.emit(cycle, seq, "dispatch")
            self.rob.append(ifop)
            if is_load:
                self.lsu.allocate_load(seq, table.op[slot].pc)
                energy["lsq_write"] += 1
            elif is_store:
                self.lsu.allocate_store(seq, table.op[slot].pc)
                energy["lsq_write"] += 1
            # MDP is consulted here, adjacent to steering (the paper does
            # both alongside rename; keeping them in the same stage stops
            # a younger same-set store from clearing the LFST steering
            # hint before this op's steering decision reads it)
            if self.mdp is not None and (is_load or is_store):
                if is_store:
                    dep = self.mdp.store_dispatched(table.op[slot].pc, seq)
                else:
                    dep = self.mdp.load_dispatched(table.op[slot].pc)
                energy["mdp_access"] += 1
                if dep is not None and self.commit_count <= dep < seq:
                    table.mdp_dep_seq[slot] = dep
                    if dep not in self._store_issued:
                        self.wakeup.register_mdp(ifop)
            self.scheduler.insert(ifop, cycle)
            energy["dispatch"] += 1
            energy["rob_write"] += 1
            if metrics is not None:
                metrics.count("pipeline.dispatch_ops")
            dispatched += 1

    # ==================================================================
    # rename
    # ==================================================================
    def _classify(self, ifop: InFlightOp) -> None:
        """Tag the op Ld / LdC / Rst at dispatch time (paper Fig. 3c)."""
        taint = self._taint
        table = ifop._t
        slot = ifop._i
        dest_preg = table.dest_preg[slot]
        if table.is_load[slot]:
            table.klass[slot] = "Ld"
            if dest_preg is not None:
                taint[dest_preg] = table.seq[slot]
            return
        alive: Optional[int] = None
        if taint:
            inflight = self.inflight
            completed = table.completed
            for preg in table.src_pregs[slot]:
                load_seq = taint.get(preg)
                if load_seq is None:
                    continue
                producer = inflight.get(load_seq)
                if producer is not None and not completed[producer._i]:
                    alive = load_seq
                    break
        table.klass[slot] = "LdC" if alive is not None else "Rst"
        if dest_preg is not None:
            if alive is not None:
                taint[dest_preg] = alive
            else:
                taint.pop(dest_preg, None)

    def _rename_stage(self) -> None:
        queue = self.decode_queue
        if not queue:
            return
        cycle = self.cycle
        renamed = 0
        table = self.ops
        fetch_latency = self.config.fetch_latency
        rename_latency = self.config.rename_latency
        width = self.config.decode_width
        dispatch_queue = self.dispatch_queue
        while queue and renamed < width:
            ifop = queue[0]
            slot = ifop._i
            if table.decode_cycle[slot] + fetch_latency > cycle:
                return
            op = table.op[slot]
            if not self.rename.can_rename(op):
                if self.metrics is not None:
                    self.metrics.count("pipeline.rename_stall")
                return  # stall until physical registers free up
            queue.popleft()
            rename_rec = self.rename.rename(op)
            dest_preg = rename_rec.dest_preg
            table.dest_preg[slot] = dest_preg
            table.src_pregs[slot] = rename_rec.src_pregs
            table.prev_dest_preg[slot] = rename_rec.prev_dest_preg
            table.dest_arch[slot] = rename_rec.dest_arch
            if dest_preg is not None:
                self.ready.mark_pending(dest_preg)
            self.wakeup.register(ifop, cycle)
            table.port[slot] = self.ports.assign(op.opcode.op_class)
            self._classify(ifop)
            if self.tracer is not None:
                self.tracer.emit(
                    cycle, table.seq[slot], "rename", table.klass[slot]
                )
            self.energy["rename"] += 1
            dispatch_queue.append((cycle + rename_latency, ifop))
            renamed += 1

    # ==================================================================
    # fetch
    # ==================================================================
    def _fetch(self) -> None:
        cycle = self.cycle
        if self.pending_redirect is not None or cycle < self.fetch_resume_at:
            return
        fetched = 0
        trace = self.trace
        trace_len = len(trace)
        if self.fetch_index >= trace_len:
            return
        decode_queue = self.decode_queue
        width = self.config.decode_width
        alloc_queue = self.config.alloc_queue
        tracer = self.tracer
        metrics = self.metrics
        ops = self.ops
        inflight = self.inflight
        stats = self.stats
        energy = self.energy
        while (
            fetched < width
            and self.fetch_index < trace_len
            and len(decode_queue) < alloc_queue
        ):
            op = trace[self.fetch_index]
            line = (CODE_BASE + op.pc * 4) // LINE_SIZE
            if line != self._last_ifetch_line:
                result = self.hier.access_ifetch(op.pc, cycle)
                self._last_ifetch_line = line
                extra = result.complete_cycle - cycle - self.hier.l1i.latency
                if extra > 0:
                    self.fetch_resume_at = cycle + extra
                    return  # I-cache miss: stall before consuming the op
            ifop = ops.alloc(op.seq, op, cycle)
            inflight[op.seq] = ifop
            if tracer is not None:
                tracer.note_op(op.seq, op.pc, op.opcode.name)
                tracer.emit(cycle, op.seq, "fetch")
            decode_queue.append(ifop)
            energy["fetch"] += 1
            if metrics is not None:
                metrics.count("pipeline.fetch_ops")
            self.fetch_index += 1
            stats.fetched += 1
            fetched += 1
            if op.is_branch:
                if not self._fetch_branch(ifop):
                    return
            elif op.opcode.name == "halt":
                return

    def _fetch_branch(self, ifop: InFlightOp) -> bool:
        """Predict a branch at fetch; returns False if fetch must stop."""
        op = ifop.op
        unconditional = op.opcode.name == "jmp"
        prediction = self.frontend.predict_branch(op.pc, unconditional)
        self.frontend.resolve(
            op.pc,
            prediction,
            bool(op.taken),
            op.target_pc if op.taken else None,
            unconditional,
        )
        direction_ok = prediction.taken == bool(op.taken)
        if not direction_ok:
            # full misprediction: fetch stops until the branch executes
            if self.metrics is not None:
                self.metrics.count("pipeline.branch_mispredicts")
            self.stats.branch_mispredicts += 1
            ifop.mispredicted = True
            self.pending_redirect = ifop.seq
            return False
        if op.taken:
            if prediction.target != op.target_pc:
                # correct direction, BTB miss: short decode-redirect bubble
                self.fetch_resume_at = self.cycle + 2
            return False  # a taken branch ends the fetch group
        return True

    # ==================================================================
    # squash (memory-order violation)
    # ==================================================================
    def _squash(self, from_seq: int) -> None:
        """Squash every op with seq >= ``from_seq`` and refetch."""
        self.stats.flushes += 1
        if self.metrics is not None:
            self.metrics.count("pipeline.squashes")
            self.metrics.observe(
                "pipeline.squash_depth",
                sum(1 for seq in self.inflight if seq >= from_seq),
            )
        if self.tracer is not None:
            for seq in self.inflight:
                if seq >= from_seq:
                    self.tracer.emit(self.cycle, seq, "squash", "mem_order")
        # 1) pre-dispatch queues: drop (dispatch_queue ops are renamed, so
        #    undo them youngest-first before touching the ROB's older ops)
        undispatched = [
            ifop for _, ifop in self.dispatch_queue if ifop.seq >= from_seq
        ]
        self.dispatch_queue = deque(
            (t, ifop) for t, ifop in self.dispatch_queue if ifop.seq < from_seq
        )
        for ifop in sorted(undispatched, key=lambda x: -x.seq):
            self.rename.undo_mapping(
                ifop.dest_arch, ifop.dest_preg, ifop.prev_dest_preg
            )
            if ifop.dest_preg is not None:
                self.ready.release(ifop.dest_preg)
            self.ports.unassign(ifop.port)
            self.energy["rat_recover"] += 1
            self.inflight.pop(ifop.seq, None)
            self.ops.free(ifop)
        self.decode_queue = deque(
            ifop for ifop in self.decode_queue if ifop.seq < from_seq
        )
        # 2) ROB walk-back (youngest first)
        for ifop in self.rob.flush_from(from_seq):
            self.rename.undo_mapping(
                ifop.dest_arch, ifop.dest_preg, ifop.prev_dest_preg
            )
            if ifop.dest_preg is not None:
                self.ready.release(ifop.dest_preg)
            if not ifop.issued:
                self.ports.unassign(ifop.port)
            self.energy["rat_recover"] += 1
            self.inflight.pop(ifop.seq, None)
            self.ops.free(ifop)
        # 3) scheduler, LSQ, and MDP.  The MDP sweep covers both squashed
        #    stores (their LFST entries die, whatever their pc) and the
        #    stale-reservation case: an MDA-steered load squashed while
        #    its producer store survives must release the Reserved bit,
        #    or the re-fetched load is denied its own steering hint.
        self.scheduler.flush_from(from_seq)
        self.lsu.flush_from(from_seq)
        if self.mdp is not None:
            self.mdp.flush_from(from_seq)
        self._store_issued = {
            seq: cyc for seq, cyc in self._store_issued.items() if seq < from_seq
        }
        # 4) drop stale inflight entries for anything younger — this is
        #    where decode-queue ops (never renamed) give their slot back.
        #    Events/wakeup entries are invalidated by identity+generation,
        #    but the map must not leak and slots must be recycled.
        for seq in [s for s in self.inflight if s >= from_seq]:
            self.ops.free(self.inflight.pop(seq))
        # 5) refetch from the squashed load after the recovery penalty
        self.fetch_index = from_seq
        self.fetch_resume_at = max(
            self.fetch_resume_at, self.cycle + self.config.recovery_penalty
        )
        if self.attribution is not None:
            self.attribution.note_recovery(self.fetch_resume_at)
        if self.pending_redirect is not None and self.pending_redirect >= from_seq:
            self.pending_redirect = None
        self._last_ifetch_line = -1


def simulate(
    trace: Trace,
    config: CoreConfig,
    max_cycles: int = 50_000_000,
    tracer: Optional[Tracer] = None,
    attribution: Optional[StallAttribution] = None,
    metrics: Optional[MetricsRegistry] = None,
    sampler: Optional[IntervalSampler] = None,
    phase_hook=None,
) -> SimResult:
    """Convenience wrapper: build a :class:`Pipeline` and run it.

    When the config enables sampling (``sample_period > 0``) and no
    telemetry hook is attached, the run is delegated to the sampled
    driver (:func:`repro.core.sampling.simulate_sampled`) — this is the
    single dispatch point through which the experiment runner, sweeps,
    and the serve worker pool inherit sampled execution.  Telemetry
    hooks (tracer/attribution/metrics/sampler) force a full-detail run:
    their per-µop / per-cycle semantics are undefined across
    fast-forwarded gaps.  ``phase_hook`` (see :class:`~repro.core.
    sampling.SampledSimulation`) observes the sampled phase machine;
    it is ignored on full-detail runs, which have no phases.
    """
    if config.sample_period > 0 and tracer is None and attribution is None \
            and metrics is None and sampler is None:
        from .sampling import simulate_sampled

        return simulate_sampled(trace, config, max_cycles=max_cycles,
                                phase_hook=phase_hook)
    pipeline = Pipeline(
        trace, config, tracer=tracer, attribution=attribution,
        metrics=metrics, sampler=sampler,
    )
    return pipeline.run(max_cycles=max_cycles)
