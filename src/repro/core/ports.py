"""Issue ports and functional units.

The paper's baseline (Table I) is an 8-wide machine whose IQ issues through
eight ports, each with dedicated FUs:

* 4 int ALUs (P0, P1, P5, P6), 1 int DIV (P0), 1 int MUL (P1)
* 2 FP ADDs (P0, P1), 1 FP DIV (P0), 2 FP MULs (P0, P1)
* 4 AGUs (P2, P3, P4, P7), 2 branch units (P0, P6)

Each port issues at most one micro-op per cycle; a port is assigned to every
micro-op at dispatch using opcode class + load balancing (fewest in-flight
ops), exactly as §II-A describes.  Unpipelined units (divides) additionally
block their FU for the op's latency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..isa.opcodes import OpClass

#: port -> op classes with a functional unit on that port (8-wide, Table I)
PORT_MAP_8WIDE: Dict[int, Tuple[OpClass, ...]] = {
    0: (OpClass.INT_ALU, OpClass.INT_DIV, OpClass.FP_ADD, OpClass.FP_MUL,
        OpClass.FP_DIV, OpClass.BRANCH, OpClass.NOP),
    1: (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.FP_ADD, OpClass.FP_MUL,
        OpClass.NOP),
    2: (OpClass.LOAD, OpClass.STORE),
    3: (OpClass.LOAD, OpClass.STORE),
    4: (OpClass.LOAD, OpClass.STORE),
    5: (OpClass.INT_ALU, OpClass.NOP),
    6: (OpClass.INT_ALU, OpClass.BRANCH, OpClass.NOP),
    7: (OpClass.LOAD, OpClass.STORE),
}

PORT_MAP_4WIDE: Dict[int, Tuple[OpClass, ...]] = {
    0: (OpClass.INT_ALU, OpClass.INT_DIV, OpClass.FP_ADD, OpClass.FP_MUL,
        OpClass.FP_DIV, OpClass.BRANCH, OpClass.NOP),
    1: (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.FP_ADD, OpClass.FP_MUL,
        OpClass.NOP),
    2: (OpClass.LOAD, OpClass.STORE),
    3: (OpClass.LOAD, OpClass.STORE),
}

PORT_MAP_2WIDE: Dict[int, Tuple[OpClass, ...]] = {
    0: (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.INT_DIV, OpClass.FP_ADD,
        OpClass.FP_MUL, OpClass.FP_DIV, OpClass.BRANCH, OpClass.NOP),
    1: (OpClass.LOAD, OpClass.STORE, OpClass.INT_ALU, OpClass.NOP),
}

PORT_MAP_10WIDE: Dict[int, Tuple[OpClass, ...]] = dict(PORT_MAP_8WIDE)
PORT_MAP_10WIDE.update({
    8: (OpClass.INT_ALU, OpClass.FP_ADD, OpClass.NOP),
    9: (OpClass.LOAD, OpClass.STORE),
})

PORT_MAPS_BY_WIDTH: Dict[int, Dict[int, Tuple[OpClass, ...]]] = {
    2: PORT_MAP_2WIDE,
    4: PORT_MAP_4WIDE,
    8: PORT_MAP_8WIDE,
    10: PORT_MAP_10WIDE,
}


class PortFile:
    """Issue-port state: dispatch-time assignment + per-cycle arbitration."""

    def __init__(self, port_map: Dict[int, Tuple[OpClass, ...]]):
        self.port_map = port_map
        self.num_ports = len(port_map)
        self._by_class: Dict[OpClass, List[int]] = {}
        for port, classes in port_map.items():
            for klass in classes:
                self._by_class.setdefault(klass, []).append(port)
        for ports in self._by_class.values():
            ports.sort()
        #: dispatched-but-not-issued ops per port (load-balancing metric)
        self.inflight: List[int] = [0] * self.num_ports
        # per-cycle arbitration state
        self._granted_cycle = -1
        self._granted: List[bool] = [False] * self.num_ports
        # unpipelined FU busy-until, keyed by (port, op_class)
        self._fu_busy: Dict[Tuple[int, OpClass], int] = {}
        self.issues: List[int] = [0] * self.num_ports

    # ------------------------------------------------------------------
    def ports_for(self, op_class: OpClass) -> Sequence[int]:
        try:
            return self._by_class[op_class]
        except KeyError:
            raise ValueError(f"no port hosts op class {op_class}") from None

    def assign(self, op_class: OpClass) -> int:
        """Dispatch-time port choice: least in-flight ops (paper §II-A)."""
        ports = self.ports_for(op_class)
        port = min(ports, key=lambda p: self.inflight[p])
        self.inflight[port] += 1
        return port

    def unassign(self, port: int) -> None:
        """Undo an assignment (op flushed before issue)."""
        self.inflight[port] -= 1

    # ------------------------------------------------------------------
    def _refresh(self, cycle: int) -> None:
        if cycle != self._granted_cycle:
            self._granted_cycle = cycle
            self._granted = [False] * self.num_ports

    def can_issue(self, port: int, op_class: OpClass, cycle: int) -> bool:
        """Would an issue request on ``port`` be granted this cycle?"""
        self._refresh(cycle)
        if self._granted[port]:
            return False
        busy_until = self._fu_busy.get((port, op_class), 0)
        return busy_until <= cycle

    def grant(self, port: int, op_class: OpClass, cycle: int,
              latency: int, pipelined: bool) -> None:
        """Consume the port for this cycle (and the FU if unpipelined)."""
        self._refresh(cycle)
        if self._granted[port]:
            raise RuntimeError(f"port {port} double-granted in cycle {cycle}")
        self._granted[port] = True
        self.inflight[port] -= 1
        self.issues[port] += 1
        if not pipelined:
            self._fu_busy[(port, op_class)] = cycle + latency
