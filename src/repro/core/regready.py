"""Physical-register readiness tracking.

A flat scoreboard over the physical register file: for every preg, the cycle
its value becomes available (``READY_AT_RESET`` for architectural state).
This is the information the paper's P-SCB Ready bit carries; schedulers
query it instead of CAM-broadcast wakeup.
"""

from __future__ import annotations

from typing import List

#: Sentinel for "not ready yet".
NOT_READY = 1 << 60


class ReadyFile:
    """Tracks readiness (and ready cycle) of each physical register."""

    def __init__(self, num_phys: int):
        self.num_phys = num_phys
        self._ready_cycle: List[int] = [0] * num_phys

    def is_ready(self, preg: int, cycle: int) -> bool:
        return self._ready_cycle[preg] <= cycle

    def ready_cycle(self, preg: int) -> int:
        """Cycle the preg became (or will become) ready; NOT_READY if unknown."""
        return self._ready_cycle[preg]

    def mark_pending(self, preg: int) -> None:
        """A rename allocated ``preg``: its value is now in flight."""
        self._ready_cycle[preg] = NOT_READY

    def mark_ready(self, preg: int, cycle: int) -> None:
        self._ready_cycle[preg] = cycle

    def release(self, preg: int) -> None:
        """Returned to the free list (commit or flush): treat as ready so
        stale queries never block (it cannot be read until reallocated)."""
        self._ready_cycle[preg] = 0
