"""Reorder buffer: in-order retirement and squash support."""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from .ifop import InFlightOp


class ReorderBuffer:
    """A FIFO of in-flight ops retiring in order from the head.

    Ops are appended at dispatch and removed either by commit (head, in
    order) or by a flush (tail-first squash back to a sequence number).
    """

    def __init__(self, size: int):
        self.size = size
        self._entries: Deque[InFlightOp] = deque()
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.size

    @property
    def head(self) -> InFlightOp | None:
        return self._entries[0] if self._entries else None

    def append(self, ifop: InFlightOp) -> None:
        if self.full:
            raise RuntimeError("ROB overflow")
        self._entries.append(ifop)
        if len(self._entries) > self.max_occupancy:
            self.max_occupancy = len(self._entries)

    def commit_ready(self) -> bool:
        """True if the head op has completed execution."""
        return bool(self._entries) and self._entries[0].completed

    def pop_head(self) -> InFlightOp:
        return self._entries.popleft()

    def flush_from(self, seq: int) -> List[InFlightOp]:
        """Squash every op with ``op.seq >= seq``; youngest first (so the
        rename unit can walk its recovery log backwards)."""
        squashed: List[InFlightOp] = []
        while self._entries and self._entries[-1].seq >= seq:
            squashed.append(self._entries.pop())
        return squashed
