"""Sampled simulation: functional fast-forward + periodic measured windows.

The paper evaluates on SPEC *SimPoints* — representative slices measured
in detail while the space between them is skipped functionally.  This
module brings the same methodology to the repro so million-op traces
become affordable (ROADMAP item 2):

* :class:`FastForward` advances over the decoded trace in execute-only
  fashion, retiring ``ff_width`` µops per virtual cycle while still
  *training* the TAGE/BTB front end, warming the cache hierarchy (and
  through it MSHR/DRAM-row state), and keeping the SSIT/LFST
  memory-dependence predictor's LFST consistent (SSIT itself only
  learns from order violations, which are a timing phenomenon — it is
  warmed by the detailed windows and *carried* across the gaps).
* :class:`SampledSimulation` alternates fast-forward / detailed-warmup /
  measured windows.  It exposes the same ``begin()/step()/finalize()``
  phase machine as :class:`~repro.core.pipeline.Pipeline`, so the
  lock-step driver (:mod:`repro.core.lockstep`) can interleave sampled
  simulations exactly like full ones.  Each window runs a fresh
  pipeline over a seq-renumbered subtrace but *shares* the warmed
  front end / hierarchy / MDP and continues the global clock
  (``Pipeline.begin(start_cycle=...)``) so absolute-cycle cache state
  stays meaningful.
* :meth:`SampledSimulation.finalize` extrapolates whole-run statistics
  from the measured windows — IPC/cycles via the pooled CPI, event
  counters by the measured-op fraction — with per-metric Student-t
  confidence intervals, onto a :class:`~repro.core.stats.SimResult`
  flagged ``sampled=True``.

Degenerate configs are exact: when ``sample_window`` covers the whole
trace (``sample_period = ∞`` semantics — never fast-forward), the run
is a single full-detail pipeline and the stats are *identical* to an
unsampled run, with ``sampling["exact"] = True``.

Enable via the :class:`~repro.core.config.CoreConfig` knobs
(``sample_period > 0`` activates the mode; see :func:`with_sampling`)
— :func:`repro.core.pipeline.simulate` dispatches here, so the
experiment runner, sweeps, the serve pool, and the CLI all inherit it.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import replace
from typing import Dict, List, Optional

from ..frontend.branch_predictor import FrontEnd
from ..lsq.mdp import StoreSetPredictor
from ..memory.cache import LINE_SIZE
from ..memory.hierarchy import CODE_BASE, MemoryHierarchy
from ..telemetry.metrics import IntervalSampler
from ..workloads.trace import Trace
from .config import CoreConfig
from .pipeline import Pipeline, SimulationDeadlock
from .stats import CLASSES, SEGMENTS, SimResult, SimStats

#: Default knobs applied by :func:`with_sampling` when the caller does
#: not override them (the CoreConfig defaults keep sampling *off*).
DEFAULT_SAMPLE_PERIOD = 20_000

#: Two-sided 95% Student-t critical values by degrees of freedom
#: (normal approximation beyond 30).
_T95 = {1: 12.71, 2: 4.30, 3: 3.18, 4: 2.78, 5: 2.57, 6: 2.45, 7: 2.36,
        8: 2.31, 9: 2.26, 10: 2.23, 11: 2.20, 12: 2.18, 13: 2.16,
        14: 2.14, 15: 2.13, 20: 2.09, 25: 2.06, 30: 2.04}


def _t95(df: int) -> float:
    if df <= 0:
        return float("inf")
    if df in _T95:
        return _T95[df]
    return 1.96 if df > 30 else _T95[min(k for k in _T95 if k >= df)]


def with_sampling(
    config: CoreConfig,
    period: Optional[int] = None,
    window: Optional[int] = None,
    warmup: Optional[int] = None,
    ff_width: Optional[int] = None,
    ff_warmup_ops: Optional[int] = None,
) -> CoreConfig:
    """A copy of ``config`` with sampling enabled.

    Unspecified knobs keep the config's current values, except the
    period, which defaults to :data:`DEFAULT_SAMPLE_PERIOD` (the
    CoreConfig default of 0 means "off", so asking for sampling must
    pick a real period).
    """
    return replace(
        config,
        sample_period=(period if period is not None
                       else (config.sample_period or DEFAULT_SAMPLE_PERIOD)),
        sample_window=(window if window is not None else config.sample_window),
        warmup_cycles=(warmup if warmup is not None else config.warmup_cycles),
        ff_width=(ff_width if ff_width is not None else config.ff_width),
        ff_warmup_ops=(ff_warmup_ops if ff_warmup_ops is not None
                       else config.ff_warmup_ops),
    )


def subtrace(trace: Trace, start: int, count: int) -> Trace:
    """A renumbered window ``[start, start+count)`` of ``trace``.

    The pipeline equates trace index with ``DynOp.seq`` (squash recovery
    refetches at ``fetch_index = seq``), so a window's ops must be
    renumbered from zero, not sliced verbatim.
    """
    end = min(len(trace.ops), start + count)
    if start == 0 and end == len(trace.ops):
        return trace
    ops = tuple(
        replace(op, seq=index)
        for index, op in enumerate(trace.ops[start:end])
    )
    return Trace(name=trace.name, ops=ops)


class FastForward:
    """Execute-only advance over a trace, warming shared predictor state.

    Retires ``config.ff_width`` µops per virtual cycle.  Each warmed op
    touches exactly the long-lived structures a detailed fetch/commit
    would: one I-cache probe per new line, a D-cache access per memory
    op (write-through at the same absolute cycle the clock has
    reached), TAGE/BTB predict+resolve per branch, and the LFST
    dispatch/issue handshake per store so no stale inter-window store
    seq survives.  With ``ff_warmup_ops > 0`` only the *last* N ops of
    each requested advance are warmed; the earlier ops are skipped at
    zero cost (indices and clock still advance), trading cold-miss
    accuracy for gap-length-independent cost.
    """

    def __init__(self, trace: Trace, config: CoreConfig,
                 frontend: FrontEnd, hierarchy: MemoryHierarchy,
                 mdp: Optional[StoreSetPredictor]):
        self.trace = trace
        self.config = config
        self.frontend = frontend
        self.hier = hierarchy
        self.mdp = mdp
        self.index = 0  # next trace op to fast-forward
        self.ops_warmed = 0
        self.ops_skipped = 0
        self.cycles = 0
        self._last_line = -1

    def advance(self, n_ops: int, clock: int) -> int:
        """Fast-forward ``n_ops`` starting at absolute cycle ``clock``.

        Returns the new clock: ``clock + ceil(n_ops / ff_width)``.
        """
        if n_ops <= 0:
            return clock
        width = max(1, self.config.ff_width)
        cap = self.config.ff_warmup_ops
        skip = n_ops - cap if (cap and n_ops > cap) else 0
        if skip:
            self.index += skip
            self.ops_skipped += skip
            self._last_line = -1  # line locality broken by the skip
        ops = self.trace.ops
        hier, frontend, mdp = self.hier, self.frontend, self.mdp
        last_line = self._last_line
        cyc = clock + skip // width
        in_cycle = 0
        end = self.index + (n_ops - skip)
        for i in range(self.index, end):
            op = ops[i]
            pc = op.pc
            line = (CODE_BASE + pc * 4) // LINE_SIZE
            if line != last_line:
                hier.access_ifetch(pc, cyc)
                last_line = line
            if op.mem_addr is not None:
                if op.is_store:
                    if mdp is not None:
                        # dispatch+issue back-to-back: keeps the LFST
                        # consistent without leaking this global seq
                        # into a window pipeline's local seq space
                        mdp.store_dispatched(pc, i)
                        mdp.store_issued(pc, i)
                    hier.access_data(op.mem_addr, cyc, is_write=True, pc=pc)
                elif op.is_load:
                    if mdp is not None:
                        mdp.load_dispatched(pc)
                    hier.access_data(op.mem_addr, cyc, pc=pc)
            elif op.is_branch:
                unconditional = op.opcode.name == "jmp"
                prediction = frontend.predict_branch(pc, unconditional)
                frontend.resolve(
                    pc, prediction, bool(op.taken),
                    op.target_pc if op.taken else None, unconditional,
                )
            in_cycle += 1
            if in_cycle == width:
                cyc += 1
                in_cycle = 0
        self._last_line = last_line
        self.index = end
        self.ops_warmed += n_ops - skip
        new_clock = clock + (n_ops + width - 1) // width
        self.cycles += new_clock - clock
        return new_clock


def _snapshot(pipe: Pipeline) -> Dict:
    """Cheap copy of everything a measured window must delta against."""
    stats = pipe.stats
    return {
        "cycle": pipe.cycle,
        "committed": stats.committed,
        "issued": stats.issued,
        "fetched": stats.fetched,
        "branch_lookups": pipe.frontend.lookups,  # shared across windows
        "mispredicts": stats.branch_mispredicts,
        "violations": stats.order_violations,
        "flushes": stats.flushes,
        "energy": dict(stats.energy_events),
        "hier_events": dict(pipe.hier.events),  # shared across windows
        "breakdown_sums": {
            k: dict(v) for k, v in stats.breakdown.sums.items()
        },
        "breakdown_counts": dict(stats.breakdown.counts),
        "scheduler": dict(pipe.scheduler.extra_stats()),
    }


def _delta_map(end: Dict, base: Dict) -> Dict:
    return {k: v - base.get(k, 0) for k, v in end.items()}


#: Fast-forward work per :meth:`SampledSimulation.step` call, in µops —
#: bounds how long a lock-step sibling waits while this sim skips a gap.
_FF_CHUNK_OPS = 4096


class SampledSimulation:
    """Periodic-sampling driver with the Pipeline phase-machine API.

    ``begin(max_cycles)`` / ``step() -> bool`` / ``finalize() ->
    SimResult`` mirror :class:`~repro.core.pipeline.Pipeline`, so
    :func:`~repro.core.lockstep.run_lockstep` drives sampled and full
    simulations interchangeably.  One ``step()`` advances either one
    detailed cycle of the current window pipeline or one bounded chunk
    of fast-forward.
    """

    def __init__(self, trace: Trace, config: CoreConfig,
                 scheduler_factory=None, phase_hook=None):
        if config.sample_period <= 0:
            raise ValueError("SampledSimulation needs sample_period > 0")
        if config.sample_window <= 0:
            raise ValueError("sample_window must be positive")
        if config.warmup_cycles < 0 or config.ff_warmup_ops < 0:
            raise ValueError("warmup_cycles / ff_warmup_ops must be >= 0")
        if config.ff_width <= 0:
            raise ValueError("ff_width must be positive")
        self.trace = trace
        self.config = config
        self._factory = scheduler_factory
        self.frontend = FrontEnd()
        self.hier = MemoryHierarchy(config.hierarchy)
        self.mdp: Optional[StoreSetPredictor] = (
            StoreSetPredictor() if config.mdp_enabled else None
        )
        self.ff = FastForward(trace, config, self.frontend, self.hier,
                              self.mdp)
        self.cycle = 0  # global virtual clock (ff + detailed)
        self.windows: List[Dict] = []
        self.samples: List[Dict] = []
        self.warmup_ops = 0
        #: whole-trace window: run one exact full-detail pipeline
        self._exact = config.sample_window >= len(trace)
        self._pipe: Optional[Pipeline] = None
        #: nullable phase observer, called with ``(old_phase,
        #: new_phase)`` at every transition of the phase machine
        #: (idle/ff/warmup/measure/exact/done).  Span tracing hangs
        #: ``sim.ff`` / ``sim.warmup`` / ``sim.measure`` spans off it;
        #: ``None`` (the default) costs one attribute check per
        #: *transition*, never per step.
        self.phase_hook = phase_hook
        self._phase = "idle"
        self._cursor = 0  # trace ops consumed (committed or skipped)
        self._next_start = 0  # where the next measured window begins
        self._gap_remaining = 0
        self._ff_dirty = False  # hierarchy timing skewed by fast-forward

    # -- phase machine -------------------------------------------------
    def _set_phase(self, new_phase: str) -> None:
        old_phase = self._phase
        if new_phase == old_phase:
            return
        self._phase = new_phase
        if self.phase_hook is not None:
            self.phase_hook(old_phase, new_phase)

    def begin(self, max_cycles: int = 50_000_000) -> None:
        self._max_cycles = max_cycles
        if self._exact:
            self._pipe = Pipeline(
                self.trace, self.config, scheduler_factory=self._factory,
                frontend=self.frontend, hierarchy=self.hier, mdp=self.mdp,
            )
            self._pipe.begin(max_cycles)
            self._set_phase("exact")
            return
        self._advance_phase()

    def step(self) -> bool:
        phase = self._phase
        if phase == "done":
            return False
        if phase == "ff":
            chunk = min(self._gap_remaining, _FF_CHUNK_OPS)
            self.cycle = self.ff.advance(chunk, self.cycle)
            self._ff_dirty = True
            self._cursor += chunk
            self._gap_remaining -= chunk
            if self.cycle > self._max_cycles:
                raise SimulationDeadlock(
                    f"{self.config.name}/{self.trace.name}: max_cycles "
                    f"({self._max_cycles}) exceeded during fast-forward")
            if self._gap_remaining <= 0:
                self._advance_phase()
            return self._phase != "done"
        pipe = self._pipe
        alive = pipe.step()
        self.cycle = pipe.cycle
        if phase == "exact":
            if not alive:
                self._set_phase("done")
            return alive
        if phase == "warmup":
            if not alive:
                # subtrace exhausted before warmup ended (trace tail):
                # measure the whole window, warmup included
                self._end_window(early=True)
            elif pipe.cycle >= self._warmup_until:
                self._begin_measure()
            return self._phase != "done"
        # phase == "measure"
        if not alive or pipe.commit_count >= self._measure_target:
            self._end_window(early=False)
        return self._phase != "done"

    def run(self, max_cycles: int = 50_000_000) -> SimResult:
        self.begin(max_cycles)
        while self.step():
            pass
        return self.finalize()

    # -- window lifecycle ----------------------------------------------
    def _advance_phase(self) -> None:
        total = len(self.trace)
        if self._cursor >= total:
            self._set_phase("done")
            return
        if self._cursor < self._next_start:
            self._gap_remaining = min(self._next_start, total) - self._cursor
            self._set_phase("ff")
            return
        self._start_window()

    def _start_window(self) -> None:
        config = self.config
        start = self._cursor
        # Functional warming leaves the hierarchy with the right content
        # but fast-forward-compressed timing (misses queued behind full
        # MSHRs complete far in the "future"); quiesce it so the window
        # starts from a warm, idle memory system.  Only after an actual
        # fast-forward stretch — between back-to-back windows the
        # in-flight state is real and must be kept.
        if self._ff_dirty:
            self.hier.settle(self.cycle)
            self._ff_dirty = False
        # op budget: everything the warmup phase could commit plus the
        # measured window itself (capped by the remaining trace)
        budget = (config.sample_window
                  + config.warmup_cycles * config.commit_width)
        window_trace = subtrace(self.trace, start, budget)
        pipe = Pipeline(
            window_trace, config, scheduler_factory=self._factory,
            frontend=self.frontend, hierarchy=self.hier, mdp=self.mdp,
        )
        pipe.begin(self._max_cycles, start_cycle=self.cycle)
        self._pipe = pipe
        self._window_start_op = start
        self._warmup_until = self.cycle + config.warmup_cycles
        self._start_base = _snapshot(pipe)
        self._base: Optional[Dict] = None
        self._sampler = IntervalSampler(1 << 60)  # manual takes only
        self._sampler.take(pipe)
        if config.warmup_cycles > 0:
            self._set_phase("warmup")
        else:
            self._begin_measure()

    def _begin_measure(self) -> None:
        pipe = self._pipe
        self._base = _snapshot(pipe)
        self._sampler.take(pipe)
        self.warmup_ops += pipe.commit_count
        self._measure_target = pipe.commit_count + self.config.sample_window
        self._set_phase("measure")

    def _end_window(self, early: bool) -> None:
        pipe = self._pipe
        base = self._start_base if (early or self._base is None) else self._base
        end = _snapshot(pipe)
        ops = end["committed"] - base["committed"]
        cycles = end["cycle"] - base["cycle"]
        sample = dict(self._sampler.take(pipe))
        if ops > 0 and cycles > 0:
            energy = _delta_map(end["energy"], base["energy"])
            for key, value in _delta_map(
                    end["hier_events"], base["hier_events"]).items():
                energy[key] = energy.get(key, 0) + value
            record = {
                "start_op": self._window_start_op,
                "ops": ops,
                "cycles": cycles,
                "ipc": ops / cycles,
                "issued": end["issued"] - base["issued"],
                "fetched": end["fetched"] - base["fetched"],
                "branch_lookups":
                    end["branch_lookups"] - base["branch_lookups"],
                "mispredicts": end["mispredicts"] - base["mispredicts"],
                "violations": end["violations"] - base["violations"],
                "flushes": end["flushes"] - base["flushes"],
                "energy": energy,
                "breakdown_sums": {
                    klass: _delta_map(end["breakdown_sums"][klass],
                                      base["breakdown_sums"][klass])
                    for klass in end["breakdown_sums"]
                },
                "breakdown_counts": _delta_map(end["breakdown_counts"],
                                               base["breakdown_counts"]),
                "scheduler": _delta_map(end["scheduler"], base["scheduler"]),
                "warmup_discarded": not early,
            }
            self.windows.append(record)
            sample.update(
                window=len(self.windows) - 1,
                start_op=self._window_start_op,
                measured_ops=ops,
                measured_cycles=cycles,
            )
            self.samples.append(sample)
        self._cursor += pipe.commit_count
        self._next_start = max(self._window_start_op
                               + self.config.sample_period, self._cursor)
        # The window pipeline may be abandoned with stores still in
        # flight; their *local* seqs must not linger in the shared LFST
        # or the next window's loads would wait on phantom producers.
        # flush_from(0) clears all transient LFST/reservation state and
        # keeps the learned SSIT — that is the warmed part.
        if self.mdp is not None:
            self.mdp.flush_from(0)
        self._pipe = None
        self._advance_phase()

    # -- extrapolation -------------------------------------------------
    def finalize(self) -> SimResult:
        config = self.config
        knobs = {
            "sample_period": config.sample_period,
            "sample_window": config.sample_window,
            "warmup_cycles": config.warmup_cycles,
            "ff_width": config.ff_width,
            "ff_warmup_ops": config.ff_warmup_ops,
        }
        if self._exact:
            result = self._pipe.finalize()
            result.sampled = True
            result.sampling = {
                "exact": True,
                "windows": 1,
                "measured_ops": result.stats.committed,
                "measured_cycles": result.stats.cycles,
                "ff_ops": 0,
                "ff_warmed_ops": 0,
                "ff_cycles": 0,
                "warmup_ops": 0,
                "knobs": knobs,
                "estimates": {},
            }
            return result
        if not self.windows:
            raise SimulationDeadlock(
                f"{config.name}/{self.trace.name}: sampled run produced "
                "no measured windows")
        windows = self.windows
        total_ops = len(self.trace)
        measured_ops = sum(w["ops"] for w in windows)
        measured_cycles = sum(w["cycles"] for w in windows)
        scale = total_ops / measured_ops
        est_cycles = max(1, round(measured_cycles / measured_ops * total_ops))

        stats = SimStats()
        stats.cycles = est_cycles
        stats.committed = total_ops
        stats.issued = round(sum(w["issued"] for w in windows) * scale)
        stats.fetched = round(sum(w["fetched"] for w in windows) * scale)
        stats.branch_lookups = round(
            sum(w["branch_lookups"] for w in windows) * scale)
        stats.branch_mispredicts = round(
            sum(w["mispredicts"] for w in windows) * scale)
        stats.order_violations = round(
            sum(w["violations"] for w in windows) * scale)
        stats.flushes = round(sum(w["flushes"] for w in windows) * scale)
        energy: Counter = Counter()
        for window in windows:
            energy.update(window["energy"])
        stats.energy_events = Counter(
            {k: round(v * scale) for k, v in energy.items() if v})
        for klass in CLASSES:
            sums = stats.breakdown.sums[klass]
            for segment in SEGMENTS:
                sums[segment] = sum(
                    w["breakdown_sums"].get(klass, {}).get(segment, 0.0)
                    for w in windows) * scale
            stats.breakdown.counts[klass] = round(sum(
                w["breakdown_counts"].get(klass, 0) for w in windows) * scale)
        scheduler: Dict[str, float] = {}
        for window in windows:
            for key, value in window["scheduler"].items():
                scheduler[key] = scheduler.get(key, 0) + value
        stats.scheduler = {k: v * scale for k, v in scheduler.items()}

        estimates = {
            "ipc": self._estimate([w["ipc"] for w in windows]),
            "cpi": self._estimate([w["cycles"] / w["ops"] for w in windows]),
            "energy_per_op": self._estimate([
                sum(w["energy"].values()) / w["ops"] for w in windows]),
            "mispredicts_per_kop": self._estimate([
                1000.0 * w["mispredicts"] / w["ops"] for w in windows]),
        }
        sampling = {
            "exact": False,
            "windows": len(windows),
            "measured_ops": measured_ops,
            "measured_cycles": measured_cycles,
            "ff_ops": self.ff.ops_warmed + self.ff.ops_skipped,
            "ff_warmed_ops": self.ff.ops_warmed,
            "ff_cycles": self.ff.cycles,
            "warmup_ops": self.warmup_ops,
            "knobs": knobs,
            "estimates": estimates,
        }
        return SimResult(
            workload=self.trace.name,
            config_name=config.name,
            stats=stats,
            memory_stats=self.hier.stats(),
            frequency_ghz=config.frequency_ghz,
            interval_samples=self.samples,
            sample_interval=0,
            sampled=True,
            sampling=sampling,
        )

    @staticmethod
    def _estimate(values: List[float]) -> Dict[str, Optional[float]]:
        """Mean + 95% CI half-width of per-window values (t-distribution).

        Windows are equal-sized by construction (the tail window may be
        shorter), so the unweighted mean is the standard batch-means
        estimator; ``ci95`` is ``None`` when a single window leaves no
        variance to estimate.
        """
        n = len(values)
        mean = sum(values) / n
        if n < 2:
            return {"mean": mean, "ci95": None, "n": n}
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        half = _t95(n - 1) * math.sqrt(var / n)
        return {"mean": mean, "ci95": half, "n": n}


def build_simulation(trace: Trace, config: CoreConfig):
    """Factory for drivers that handle full and sampled runs uniformly.

    Returns a :class:`~repro.core.pipeline.Pipeline` or a
    :class:`SampledSimulation` — both expose ``begin/step/finalize`` —
    according to ``config.sample_period``.  This is the lock-step
    driver's default pipeline factory.
    """
    if config.sample_period > 0:
        return SampledSimulation(trace, config)
    return Pipeline(trace, config)


def simulate_sampled(trace: Trace, config: CoreConfig,
                     max_cycles: int = 50_000_000,
                     phase_hook=None) -> SimResult:
    """Run one sampled simulation (the ``simulate()`` dispatch target)."""
    return SampledSimulation(trace, config, phase_hook=phase_hook).run(
        max_cycles=max_cycles)
