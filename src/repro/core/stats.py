"""Simulation statistics.

Implements the measurement infrastructure behind the paper's figures:

* IPC / execution time (Figures 11, 13, 17);
* the decode-to-issue *delay breakdown* of Figures 3c and 12, split by
  instruction class — ``Ld`` (loads), ``LdC`` (ops directly or transitively
  dependent on an outstanding load at dispatch), ``Rst`` (the rest) — into
  decode->dispatch, dispatch->ready and ready->issue segments;
* scheduler-specific counters (steering outcomes, per-IQ issue mix);
* event counts consumed by the energy model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .ifop import InFlightOp

CLASSES = ("Ld", "LdC", "Rst")
SEGMENTS = ("decode_to_dispatch", "dispatch_to_ready", "ready_to_issue")

#: Version of the serialized :class:`SimResult` layout.  Cache layers mix
#: this into their keys so on-disk entries self-invalidate whenever the
#: result schema changes (bump it when adding/removing fields).
#: v3: SimResult grew ``interval_samples`` / ``sample_interval``.
#: v4: SimResult grew ``sampled`` / ``sampling`` (sampled-simulation
#: extrapolation metadata; see :mod:`repro.core.sampling`).
RESULT_SCHEMA_VERSION = 4


@dataclass
class DelayBreakdown:
    """Average per-class pipeline delays (paper Figures 3c / 12)."""

    sums: Dict[str, Dict[str, float]] = field(
        default_factory=lambda: {k: {s: 0.0 for s in SEGMENTS} for k in CLASSES}
    )
    counts: Dict[str, int] = field(default_factory=lambda: {k: 0 for k in CLASSES})

    def record(self, ifop: InFlightOp) -> None:
        klass = ifop.klass
        self.counts[klass] += 1
        sums = self.sums[klass]
        sums["decode_to_dispatch"] += ifop.dispatch_cycle - ifop.decode_cycle
        sums["dispatch_to_ready"] += max(0, ifop.ready_cycle - ifop.dispatch_cycle)
        sums["ready_to_issue"] += max(
            0, ifop.issue_cycle - max(ifop.ready_cycle, ifop.dispatch_cycle)
        )

    def average(self, klass: str, segment: str) -> float:
        count = self.counts[klass]
        return self.sums[klass][segment] / count if count else 0.0

    def to_dict(self) -> Dict:
        return {"sums": self.sums, "counts": self.counts}

    @classmethod
    def from_dict(cls, data: Dict) -> "DelayBreakdown":
        return cls(sums=data["sums"], counts=data["counts"])

    def averages(self) -> Dict[str, Dict[str, float]]:
        """klass -> segment -> mean cycles (plus an ``All`` aggregate)."""
        out: Dict[str, Dict[str, float]] = {}
        for klass in CLASSES:
            out[klass] = {
                seg: round(self.average(klass, seg), 2) for seg in SEGMENTS
            }
            out[klass]["total"] = round(sum(out[klass][s] for s in SEGMENTS), 2)
        total_count = sum(self.counts.values()) or 1
        out["All"] = {
            seg: round(
                sum(self.sums[k][seg] for k in CLASSES) / total_count, 2
            )
            for seg in SEGMENTS
        }
        out["All"]["total"] = round(sum(out["All"][s] for s in SEGMENTS), 2)
        return out


@dataclass
class SimStats:
    """Raw counters accumulated over one simulation."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    issued: int = 0
    branch_lookups: int = 0
    branch_mispredicts: int = 0
    order_violations: int = 0
    flushes: int = 0
    breakdown: DelayBreakdown = field(default_factory=DelayBreakdown)
    #: event name -> count, consumed by :mod:`repro.energy`
    energy_events: Counter = field(default_factory=Counter)
    #: scheduler-provided extras (steering outcomes, issue mix, ...)
    scheduler: Dict[str, float] = field(default_factory=dict)
    #: stall-attribution category -> cycles (telemetry; empty when the
    #: run had no :class:`~repro.telemetry.attribution.StallAttribution`).
    #: When present, the values sum exactly to ``cycles``.
    stall_cycles: Dict[str, int] = field(default_factory=dict)
    #: structure -> mean per-cycle occupancy (telemetry; see above)
    occupancy: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    def to_dict(self) -> Dict:
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "fetched": self.fetched,
            "issued": self.issued,
            "branch_lookups": self.branch_lookups,
            "branch_mispredicts": self.branch_mispredicts,
            "order_violations": self.order_violations,
            "flushes": self.flushes,
            "breakdown": self.breakdown.to_dict(),
            "energy_events": dict(self.energy_events),
            "scheduler": self.scheduler,
            "stall_cycles": self.stall_cycles,
            "occupancy": self.occupancy,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimStats":
        stats = cls(
            cycles=data["cycles"],
            committed=data["committed"],
            fetched=data["fetched"],
            issued=data["issued"],
            branch_lookups=data["branch_lookups"],
            branch_mispredicts=data["branch_mispredicts"],
            order_violations=data["order_violations"],
            flushes=data["flushes"],
            breakdown=DelayBreakdown.from_dict(data["breakdown"]),
            energy_events=Counter(data["energy_events"]),
            scheduler=data["scheduler"],
            stall_cycles=data.get("stall_cycles", {}),
            occupancy=data.get("occupancy", {}),
        )
        return stats


@dataclass
class SimResult:
    """Everything a benchmark needs from one simulation run."""

    workload: str
    config_name: str
    stats: SimStats
    memory_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    frequency_ghz: float = 3.4
    #: every-N-cycles time-series from the
    #: :class:`~repro.telemetry.metrics.IntervalSampler`; empty unless
    #: the run sampled.  The last sample's cumulative fields equal the
    #: final :class:`SimStats` values.
    interval_samples: List[Dict] = field(default_factory=list)
    #: the sampler's N (0 when the run did not sample)
    sample_interval: int = 0
    #: True when the stats were *extrapolated* from measured windows by
    #: the sampled-simulation driver (:mod:`repro.core.sampling`) rather
    #: than accumulated over every cycle.
    sampled: bool = False
    #: Sampled-run metadata: window count, measured/fast-forwarded op
    #: and cycle totals, the sampling knobs used, and per-metric
    #: ``{mean, ci95, ...}`` estimates.  Empty for full-detail runs.
    sampling: Dict = field(default_factory=dict)

    #: Always ``True``; the counterpart
    #: :class:`~repro.analysis.runner.FailedResult` carries ``False``, so
    #: batch consumers can filter with ``result.ok`` (not a dataclass
    #: field — it never serialises).
    ok = True

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def seconds(self) -> float:
        """Execution time given the config's operating frequency."""
        return self.stats.cycles / (self.frequency_ghz * 1e9)

    def summary(self) -> Dict[str, float]:
        return {
            "workload": self.workload,
            "config": self.config_name,
            "cycles": self.stats.cycles,
            "committed": self.stats.committed,
            "ipc": round(self.ipc, 3),
            "mispredicts": self.stats.branch_mispredicts,
            "violations": self.stats.order_violations,
        }

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "config_name": self.config_name,
            "stats": self.stats.to_dict(),
            "memory_stats": self.memory_stats,
            "frequency_ghz": self.frequency_ghz,
            "interval_samples": self.interval_samples,
            "sample_interval": self.sample_interval,
            "sampled": self.sampled,
            "sampling": self.sampling,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimResult":
        return cls(
            workload=data["workload"],
            config_name=data["config_name"],
            stats=SimStats.from_dict(data["stats"]),
            memory_stats=data["memory_stats"],
            frequency_ghz=data["frequency_ghz"],
            interval_samples=data.get("interval_samples", []),
            sample_interval=data.get("sample_interval", 0),
            sampled=data.get("sampled", False),
            sampling=data.get("sampling", {}),
        )
