"""Event-driven wakeup: the completion-broadcast scoreboard.

The seed simulator *polled* readiness: every scheduler asked
``srcs_ready`` for every examined entry every cycle, and each query
walked the op's source pregs — the same O(window)-per-cycle broadcast
cost that CAM-based hardware wakeup pays, paid in Python.  This module
inverts the direction: completions are *pushed* to a per-preg consumer
index, so each in-flight op carries a live count of outstanding source
operands (``InFlightOp.wake_pending``) and a flag for its unsatisfied
memory dependence (``InFlightOp.mdp_waiting``).  Readiness queries
become two attribute reads, and schedulers with a large window (the
baseline OoO IQ) can maintain their ready-set incrementally instead of
re-scanning every slot.

Timing is cycle-for-cycle identical to polling because every
``ReadyFile.mark_ready(preg, when)`` happens during the completion
phase of cycle ``when`` — the same phase ordering the polled
``is_ready(preg, cycle)`` check observed — and ``release()``-ed pregs
can never have live waiters (a consumer of the old mapping is always
older than the op whose commit/squash released it).

Stale entries (squashed-and-refetched ops) are invalidated by object
identity against the pipeline's ``inflight`` map *and* by the op-table
generation stamp captured at registration time, mirroring how the
pipeline's event queue discards stale completion events.  Identity
alone stopped being sufficient when :class:`InFlightOp` became a
recycled view over :class:`~repro.core.optable.OpTable` — a refetched
op can alias the very object a stale bucket holds — and the generation
alone is insufficient for standalone (table-less) test ops, so both
are checked.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING, Tuple

from .ifop import InFlightOp

if TYPE_CHECKING:  # pragma: no cover
    from .regready import ReadyFile


class WakeupScoreboard:
    """Per-preg consumer index broadcasting completions to waiting ops."""

    def __init__(self, inflight: Dict[int, InFlightOp], ready: "ReadyFile"):
        self._inflight = inflight
        self._ready = ready
        #: preg -> (op, gen) pairs with an outstanding read of that preg
        self._consumers: Dict[int, List[Tuple[InFlightOp, int]]] = {}
        #: store seq -> (op, gen) pairs waiting on that store's issue
        self._mdp_waiters: Dict[int, List[Tuple[InFlightOp, int]]] = {}
        self.broadcasts = 0
        self.wakeups = 0

    # ------------------------------------------------------------------
    # registration (rename / dispatch time)
    # ------------------------------------------------------------------
    def register(self, ifop: InFlightOp, cycle: int) -> None:
        """Count the op's not-yet-ready sources and index it under each.

        Called once per op as soon as its physical sources are known
        (rename).  A preg read twice is counted (and later decremented)
        twice, keeping the count consistent with per-src polling.
        """
        pending = 0
        ready = self._ready
        consumers = self._consumers
        table = ifop._t
        slot = ifop._i
        entry = (ifop, table.gen[slot])
        for preg in table.src_pregs[slot]:
            if not ready.is_ready(preg, cycle):
                pending += 1
                bucket = consumers.get(preg)
                if bucket is None:
                    consumers[preg] = [entry]
                else:
                    bucket.append(entry)
        table.wake_pending[slot] = pending

    def register_mdp(self, ifop: InFlightOp) -> None:
        """The op's MDP dependence store has not issued yet: park it."""
        ifop.mdp_waiting = True
        self._mdp_waiters.setdefault(ifop.mdp_dep_seq, []).append(
            (ifop, ifop.gen)
        )

    # ------------------------------------------------------------------
    # broadcasts (completion / store-issue time)
    # ------------------------------------------------------------------
    def wake(self, preg: int, cycle: int) -> Tuple[InFlightOp, ...]:
        """``preg`` became ready: notify its consumers.

        Returns the ops that transitioned to *fully* ready (no pending
        sources and no unsatisfied MDP dependence) so the pipeline can
        forward them to the scheduler's incremental ready-set.
        """
        consumers = self._consumers.pop(preg, None)
        if not consumers:
            return ()
        self.broadcasts += 1
        inflight = self._inflight
        woken: List[InFlightOp] = []
        wakeups = 0
        for ifop, gen in consumers:
            table = ifop._t
            slot = ifop._i
            # stale if squashed (identity) or slot recycled (generation)
            if inflight.get(table.seq[slot]) is not ifop or table.gen[slot] != gen:
                continue
            pending = table.wake_pending[slot] - 1
            table.wake_pending[slot] = pending
            wakeups += 1
            if pending == 0 and not table.mdp_waiting[slot]:
                woken.append(ifop)
        self.wakeups += wakeups
        return tuple(woken)

    def store_issued(self, seq: int) -> Tuple[InFlightOp, ...]:
        """Store ``seq`` issued: satisfy the MDP dependences parked on it."""
        waiters = self._mdp_waiters.pop(seq, None)
        if not waiters:
            return ()
        inflight = self._inflight
        woken: List[InFlightOp] = []
        for ifop, gen in waiters:
            if inflight.get(ifop.seq) is not ifop or ifop.gen != gen:
                continue  # stale (squashed consumer or recycled slot)
            ifop.mdp_waiting = False
            if ifop.wake_pending == 0:
                woken.append(ifop)
        return tuple(woken)

    # ------------------------------------------------------------------
    def pending_debug(self, ifop: InFlightOp, cycle: int) -> int:
        """Recount the op's outstanding sources by polling (debug only)."""
        return sum(
            1 for preg in ifop.src_pregs
            if not self._ready.is_ready(preg, cycle)
        )
