"""Distributed campaigns: sharded execution + run-log reconciliation.

Campaigns outgrow one process pool on one host: the paper's 84-cell
design-space matrix per workload multiplies with every scheduler added
to the zoo, and a campaign spread over hosts needs more than "finished
cells stay cached" — it needs a systematic account of what is
*missing*, and a repair loop that makes the account balance.

Two layers (see docs/robustness.md):

* :mod:`repro.distrib.campaign` — ``shard_cells`` assigns the matrix's
  cells to shards by salted hash; ``run_shard`` executes one shard
  through the fault-tolerant :class:`~repro.analysis.runner.
  ExperimentRunner`, streaming its per-worker JSONL run-log; and
  ``merge_shards`` restores deterministic (submission-order) results
  from out-of-order shard completions via the
  :class:`~repro.serve.resequencer.Resequencer`.
* :mod:`repro.distrib.reconcile` — a *detector* three-way-diffs the
  expected matrix against the disk cache and the merged run-logs,
  classifying every cell; an *engine* turns the diff into a typed
  repair plan under bounded budgets; and a *scheduler* executes the
  repairs (locally through ``run_many`` or by submission to a running
  ``repro serve`` daemon) and re-verifies until the matrix converges.
"""

from .campaign import (  # noqa: F401
    CampaignSpec,
    MergedCampaign,
    campaign_root_context,
    campaign_trace_id,
    cell_label,
    load_manifest,
    merge_shards,
    merge_trace,
    run_shard,
    shard_cells,
    shard_log_path,
    shard_of,
    shard_spans_path,
)
from .reconcile import (  # noqa: F401
    CELL_STATES,
    CampaignDiff,
    CellStatus,
    Detector,
    ReconcileReport,
    Repair,
    RepairEngine,
    RepairPlan,
    RepairScheduler,
    reconcile_campaign,
)

__all__ = [
    "CampaignSpec",
    "MergedCampaign",
    "campaign_root_context",
    "campaign_trace_id",
    "cell_label",
    "load_manifest",
    "merge_shards",
    "merge_trace",
    "run_shard",
    "shard_cells",
    "shard_log_path",
    "shard_of",
    "shard_spans_path",
    "CELL_STATES",
    "CampaignDiff",
    "CellStatus",
    "Detector",
    "ReconcileReport",
    "Repair",
    "RepairEngine",
    "RepairPlan",
    "RepairScheduler",
    "reconcile_campaign",
]
