"""Sharded campaign execution with run-log streaming and ordered merge.

A **campaign** is a design-space matrix — the same workload-major
``(workload, arch, width, seed)`` expansion the serve protocol uses —
executed as N **shards**, each typically on its own host.  Cells are
assigned to shards by a salted hash of the cell label, so the
partition is a pure function of ``(salt, cell)``: every host computes
the same assignment with no coordination, and re-salting rebalances a
pathological split without touching any code.

Each shard runs through the fault-tolerant
:class:`~repro.analysis.runner.ExperimentRunner` with a per-shard
JSONL run-log (``shard-K-of-N.jsonl`` under the campaign directory)
and the shared disk cache as the merge point — exactly the PR-2/PR-4
contract, now spanning hosts that share the cache directory (NFS, a
synced bucket, or one machine's disk).

The **merge stage** reads every shard's run-log — tolerantly, because
a shard that died mid-write leaves a torn log — and restores the
deterministic submission order via the
:class:`~repro.serve.resequencer.Resequencer` (correlation key = cell
key, sequence = submission index).  Gaps in the resequenced stream are
exactly the cells a dead shard owed; they feed the reconciliation
layer (:mod:`repro.distrib.reconcile`).

The campaign **manifest** (``campaign.json``) pins the matrix, shard
count, salt, ops and default seed, so every shard — and a later
``repro reconcile`` — agrees on the expected cell set without
re-passing axes on every command line.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.runner import ExperimentRunner, FailedResult
from ..core.stats import SimResult
from ..serve.protocol import Cell, expand_matrix, result_envelope
from ..serve.resequencer import Resequencer
from ..telemetry.runlog import read_run_log_tolerant
from ..telemetry.spans import (Span, SpanContext, SpanRecorder,
                               derive_span_id, derive_trace_id, merge_spans,
                               read_spans, spans_to_chrome, write_spans)

#: Manifest file name inside a campaign directory.
MANIFEST_NAME = "campaign.json"

#: Merged, submission-ordered result stream written by the merge stage.
MERGED_NAME = "merged.json"

#: Merged, deduplicated span stream written by :func:`merge_trace`.
MERGED_SPANS_NAME = "merged-spans.jsonl"

#: Chrome trace-event view of the merged spans (``chrome://tracing``).
TRACE_VIEW_NAME = "trace.json"


def cell_label(cell: Cell) -> str:
    """Stable human-readable identity of one cell (the sharding key)."""
    seed = "default" if cell.seed is None else cell.seed
    return f"{cell.workload}/{cell.arch}@{cell.width}#{seed}"


def shard_of(cell: Cell, n_shards: int, salt: int) -> int:
    """Which shard owns ``cell`` — a salted-hash pure function.

    Every host evaluates this identically, so the partition needs no
    coordinator; changing ``salt`` reshuffles the assignment.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    digest = hashlib.sha256(f"{salt}:{cell_label(cell)}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


def shard_cells(
    cells: Sequence[Cell], n_shards: int, salt: int,
) -> List[List[Tuple[int, Cell]]]:
    """Partition ``cells`` into shards, keeping submission indices.

    Returns ``n_shards`` lists of ``(seq, cell)`` pairs; ``seq`` is the
    cell's index in the campaign's deterministic expansion order, which
    the merge stage later uses as the resequencer sequence number.
    Every cell lands in exactly one shard.
    """
    shards: List[List[Tuple[int, Cell]]] = [[] for _ in range(n_shards)]
    for seq, cell in enumerate(cells):
        shards[shard_of(cell, n_shards, salt)].append((seq, cell))
    return shards


def shard_log_path(campaign_dir: Union[str, Path], shard: int,
                   n_shards: int) -> Path:
    return Path(campaign_dir) / f"shard-{shard}-of-{n_shards}.jsonl"


def shard_spans_path(campaign_dir: Union[str, Path], shard: int,
                     n_shards: int) -> Path:
    return Path(campaign_dir) / f"spans-{shard}-of-{n_shards}.jsonl"


def campaign_trace_id(spec: "CampaignSpec") -> str:
    """The campaign's deterministic trace id.

    Derived from the manifest payload, so every shard — on any host,
    with no coordination — agrees on the one trace its spans belong to
    (the same trick :func:`shard_of` plays for the cell partition).
    """
    return derive_trace_id(
        "campaign", json.dumps(spec.to_dict(), sort_keys=True))


def campaign_root_context(spec: "CampaignSpec") -> SpanContext:
    """Parent context of the whole campaign: the synthetic root span.

    Shards parent their ``shard`` span under this id without any shard
    actually writing the root; :func:`merge_trace` synthesises it from
    the merged shard spans' envelope.
    """
    trace_id = campaign_trace_id(spec)
    return SpanContext(trace_id, derive_span_id(trace_id, "campaign"))


@dataclass(frozen=True)
class CampaignSpec:
    """The declared design-space matrix plus execution parameters.

    ``seeds`` entries may be ``None`` ("the runner's default data
    seed", i.e. ``seed``), mirroring the serve protocol's cells.
    """

    workloads: Tuple[str, ...]
    arches: Tuple[str, ...]
    widths: Tuple[int, ...] = (8,)
    seeds: Tuple[Optional[int], ...] = (None,)
    ops: int = 10_000
    seed: int = 7
    n_shards: int = 1
    salt: int = 0

    def cells(self) -> List[Cell]:
        """The deterministic expansion (workload-major, like serve)."""
        return expand_matrix({
            "workloads": list(self.workloads),
            "arches": list(self.arches),
            "widths": list(self.widths),
            "seeds": list(self.seeds),
        })

    def shards(self) -> List[List[Tuple[int, Cell]]]:
        return shard_cells(self.cells(), self.n_shards, self.salt)

    def to_dict(self) -> Dict:
        return {
            "workloads": list(self.workloads),
            "arches": list(self.arches),
            "widths": list(self.widths),
            "seeds": list(self.seeds),
            "ops": self.ops,
            "seed": self.seed,
            "n_shards": self.n_shards,
            "salt": self.salt,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignSpec":
        return cls(
            workloads=tuple(data["workloads"]),
            arches=tuple(data["arches"]),
            widths=tuple(data.get("widths", [8])),
            seeds=tuple(data.get("seeds", [None])),
            ops=int(data.get("ops", 10_000)),
            seed=int(data.get("seed", 7)),
            n_shards=int(data.get("n_shards", 1)),
            salt=int(data.get("salt", 0)),
        )

    # ------------------------------------------------------------------
    def save(self, campaign_dir: Union[str, Path]) -> Path:
        """Write (or verify) the manifest atomically; returns its path.

        A manifest that already exists must describe the same campaign
        — shards of one campaign must agree on the matrix, or the
        reconciliation account could never balance.
        """
        root = Path(campaign_dir)
        root.mkdir(parents=True, exist_ok=True)
        path = root / MANIFEST_NAME
        payload = self.to_dict()
        if path.exists():
            existing = json.loads(path.read_text())
            if existing != payload:
                raise ValueError(
                    f"campaign manifest {path} describes a different "
                    f"campaign; refusing to overwrite (delete the "
                    f"directory to start over)")
            return path
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path


def load_manifest(campaign_dir: Union[str, Path]) -> CampaignSpec:
    path = Path(campaign_dir) / MANIFEST_NAME
    if not path.exists():
        raise FileNotFoundError(
            f"no campaign manifest at {path} — run a shard (or pass the "
            f"matrix axes) first")
    return CampaignSpec.from_dict(json.loads(path.read_text()))


def make_runner(spec: CampaignSpec, cache_dir: Optional[str] = None,
                run_log: Optional[str] = "", **kwargs) -> ExperimentRunner:
    """An :class:`ExperimentRunner` wired for this campaign.

    ``run_log=""`` (the default) disables logging — shard runs pass
    their shard-log path instead; the reconcile scheduler passes its
    own.  Everything else (jobs, timeouts, retries) flows through.
    """
    return ExperimentRunner(
        target_ops=spec.ops, seed=spec.seed, cache_dir=cache_dir,
        run_log=run_log, **kwargs)


def run_shard(
    spec: CampaignSpec,
    shard: int,
    campaign_dir: Union[str, Path],
    cache_dir: Optional[str] = None,
    jobs: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    progress=None,
    spans: bool = False,
) -> List[Union[SimResult, FailedResult]]:
    """Execute one shard of the campaign on this host.

    Writes the manifest (first shard to start creates it; later shards
    verify it), streams the shard's JSONL run-log to
    ``shard-K-of-N.jsonl``, and runs the shard's cells through the
    fault-tolerant runner against the shared cache.  Returns the
    shard's results in shard-local order (the merge stage restores the
    campaign-global order).

    With ``spans=True`` the shard also writes ``spans-K-of-N.jsonl``:
    a ``shard`` span parented under the campaign's deterministic root
    (:func:`campaign_root_context`), with every cell span nested under
    it — ids are pure functions of the manifest and the cell key, so
    shards on different hosts emit one coherent trace with no
    coordination, and :func:`merge_trace` stitches the files together.
    """
    if not 0 <= shard < spec.n_shards:
        raise ValueError(
            f"shard {shard} outside 0..{spec.n_shards - 1}")
    spec.save(campaign_dir)
    log_path = shard_log_path(campaign_dir, shard, spec.n_shards)
    recorder: Optional[SpanRecorder] = None
    shard_span: Optional[Span] = None
    trace_ctx: Optional[SpanContext] = None
    if spans:
        recorder = SpanRecorder(
            str(shard_spans_path(campaign_dir, shard, spec.n_shards)))
        root = campaign_root_context(spec)
        shard_span = recorder.start(
            "shard", parent=root,
            span_id=derive_span_id(root.trace_id, "shard", shard),
            shard=shard, of=spec.n_shards, salt=spec.salt)
        trace_ctx = shard_span.context
    runner = make_runner(
        spec, cache_dir=cache_dir, run_log=str(log_path), jobs=jobs,
        task_timeout=task_timeout, retries=retries, progress=progress,
        spans=recorder, trace_ctx=trace_ctx)
    mine = spec.shards()[shard]
    runner._log("shard_start", shard=shard, of=spec.n_shards,
                cells=len(mine), salt=spec.salt)
    tasks = [cell.task(spec.seed) for _, cell in mine]
    results = runner.run_many(tasks, jobs=jobs)
    failed = sum(1 for result in results if not result.ok)
    runner._log("shard_end", shard=shard, of=spec.n_shards,
                completed=len(results) - failed, failed=failed)
    if recorder is not None:
        recorder.finish(shard_span, completed=len(results) - failed,
                        failed=failed)
        recorder.close()
    if runner.run_log is not None:
        runner.run_log.close()
    return results


# ---------------------------------------------------------------------------
# merge stage
# ---------------------------------------------------------------------------

#: Run-log events that prove a cell produced a (healthy) result.
_FINISH_EVENTS = ("finish", "cache_hit")


@dataclass
class MergedCampaign:
    """Submission-ordered merge of every shard's out-of-order stream."""

    spec: CampaignSpec
    #: ordered result envelopes (``seq``/``cell``/``ok``/``result``),
    #: the contiguous prefix the resequencer could release
    envelopes: List[Dict] = field(default_factory=list)
    #: submission indices still owed a result (the resequencer's gaps)
    gaps: List[int] = field(default_factory=list)
    #: damaged run-log lines skipped across all shard logs
    skipped_lines: int = 0
    #: shard logs found (shard index -> record count)
    shard_records: Dict[int, int] = field(default_factory=dict)
    #: cells whose log said finished but whose cache entry was unusable
    unreadable: List[int] = field(default_factory=list)
    #: cells with no log account whose healthy cache entry merged anyway
    #: (their lifecycle records were lost to log damage)
    unlogged: List[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.gaps and len(self.envelopes) == len(self.spec.cells())

    def summary(self) -> str:
        total = len(self.spec.cells())
        verdict = "complete" if self.complete else "INCOMPLETE"
        return (f"campaign merge {verdict}: {len(self.envelopes)}/{total} "
                f"cells in order, {len(self.gaps)} gap(s), "
                f"{self.skipped_lines} damaged log line(s) skipped")


def merge_shards(
    spec: CampaignSpec,
    campaign_dir: Union[str, Path],
    cache_dir: Optional[str] = None,
    write: bool = True,
) -> MergedCampaign:
    """Merge every shard run-log into one submission-ordered stream.

    Completions arrive in whatever order the shards (and their workers)
    finished; the :class:`Resequencer` — correlation key = cell key,
    sequence = submission index — releases the contiguous ordered
    prefix and names the gaps.  Results themselves are loaded from the
    shared cache (the run-log carries lifecycle, not payloads);
    quarantined cells merge as structured failures, mirroring
    ``run_many``'s in-process contract.

    With ``write`` (default), the ordered stream lands atomically in
    ``merged.json`` so downstream consumers never see a torn merge.
    """
    root = Path(campaign_dir)
    cells = spec.cells()
    runner = make_runner(spec, cache_dir=cache_dir)
    key_of: Dict[str, int] = {}
    for seq, cell in enumerate(cells):
        workload, config, seed = cell.task(spec.seed)
        key_of[runner.key_for(workload, config, seed)] = seq

    merged = MergedCampaign(spec=spec)
    finished: Dict[int, str] = {}
    quarantined: Dict[int, Dict] = {}
    # every run-log in the directory: shard logs plus reconcile.jsonl,
    # so cells healed by a repair round merge via their finish records
    for log_path in sorted(root.glob("*.jsonl")):
        try:
            shard_index = int(log_path.stem.split("-")[1])
        except (IndexError, ValueError):
            shard_index = -1  # non-shard log (reconciliation repairs)
        records, skipped = read_run_log_tolerant(str(log_path))
        merged.skipped_lines += skipped
        merged.shard_records[shard_index] = len(records)
        for record in records:
            key = record.get("key")
            seq = key_of.get(key) if isinstance(key, str) else None
            if seq is None:
                continue
            event = record.get("event")
            if event in _FINISH_EVENTS:
                finished[seq] = key
                quarantined.pop(seq, None)
            elif event == "quarantine":
                quarantined[seq] = record

    # the cache, not the log, is the merge point: a cell whose lifecycle
    # records were lost to log damage but whose healthy entry survived
    # still merges (the detector agrees — it calls such cells ``ok``)
    key_by_seq = {seq: key for key, seq in key_of.items()}
    for seq in range(len(cells)):
        if seq in finished or seq in quarantined:
            continue
        key = key_by_seq[seq]
        if runner._fetch_cached(key) is not None:
            finished[seq] = key
            merged.unlogged.append(seq)

    resequencer = Resequencer(len(cells))
    for seq in sorted(set(finished) | set(quarantined)):
        cell = cells[seq]
        if seq in finished:
            result = runner._fetch_cached(finished[seq])
            if result is None:
                # the log promised a result the cache no longer holds
                # (orphaned) — leave the gap for reconciliation
                merged.unreadable.append(seq)
                continue
        else:
            record = quarantined[seq]
            workload, config, task_seed = cell.task(spec.seed)
            result = FailedResult(
                workload=workload, config_name=config.name, seed=task_seed,
                kind=str(record.get("kind", "error")),
                error=str(record.get("error", "")),
                attempts=int(record.get("attempts", 1)),
            )
        for _, envelope in resequencer.push(
                seq, result_envelope(seq, cell, result)):
            merged.envelopes.append(envelope)
    merged.gaps = resequencer.missing(high_water=len(cells))
    if write:
        root.mkdir(parents=True, exist_ok=True)
        path = root / MERGED_NAME
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps({
            "complete": merged.complete,
            "cells": len(cells),
            "gaps": merged.gaps,
            "skipped_lines": merged.skipped_lines,
            "results": merged.envelopes,
        }, sort_keys=True))
        os.replace(tmp, path)
    return merged


def merge_trace(
    spec: CampaignSpec,
    campaign_dir: Union[str, Path],
    chrome: bool = False,
) -> List[Span]:
    """Stitch every shard's span file into one campaign trace.

    Reads ``spans-*.jsonl`` (shard runs) plus any reconcile span files,
    deduplicates by ``(trace_id, span_id)`` — a cell repaired on two
    hosts collapses to one span, preferring the finished record — and
    synthesises the root ``campaign`` span the shards all parented
    under (:func:`campaign_root_context`), bracketing the earliest
    start and latest end observed.  Writes ``merged-spans.jsonl`` and,
    with ``chrome``, a ``trace.json`` Chrome trace-event view where
    each shard gets its own process row.
    """
    root_dir = Path(campaign_dir)
    spans: List[Span] = []
    for path in sorted(root_dir.glob("spans-*.jsonl")):
        spans.extend(read_spans(str(path)))
    trace_id = campaign_trace_id(spec)
    spans = [span for span in spans if span.trace_id == trace_id]
    merged = merge_spans(spans)
    root_ctx = campaign_root_context(spec)
    if merged and not any(s.span_id == root_ctx.span_id for s in merged):
        merged.append(Span(
            name="campaign", trace_id=trace_id, span_id=root_ctx.span_id,
            start_t=min(s.start_t for s in merged),
            end_t=max((s.end_t if s.end_t is not None else s.start_t)
                      for s in merged),
            attrs={"shards": spec.n_shards, "cells": len(spec.cells())}))
        merged = merge_spans(merged)
    write_spans(merged, str(root_dir / MERGED_SPANS_NAME))
    if chrome:
        spans_to_chrome(merged, str(root_dir / TRACE_VIEW_NAME))
    return merged
