"""Reconciliation: prove a campaign complete and correct, or repair it.

Three stages, mirroring the classic detector / engine / scheduler
split:

* the **detector** three-way-diffs the *expected matrix* (from the
  campaign manifest) against the *disk cache* (read-only probes — the
  detector never mutates what it audits) and the *merged run-logs*
  (read tolerantly, because chaos and dying shards tear them),
  classifying every cell into one of :data:`CELL_STATES`;
* the **engine** turns the diff into a typed repair plan — which cache
  entries to purge, which cells to re-run — under a bounded per-cell
  retry budget, so a cell that keeps failing cannot spin the loop
  forever;
* the **scheduler** executes the plan (a fresh fault-tolerant
  :class:`~repro.analysis.runner.ExperimentRunner` per round, so
  quarantine state from earlier lives doesn't pin a now-healthy cell;
  or submission to a running ``repro serve`` daemon that shares the
  cache) and re-runs the detector until the matrix converges or the
  budget is exhausted.

Cell-state taxonomy
-------------------

==============  ==========================================================
``ok``          a healthy, schema-current cache entry exists
``missing``     no cache entry and no run-log account — never ran, or
                its shard died before starting it
``quarantined`` the run-logs record a quarantine (deadlock / poison /
                exhausted retries) and no healthy result superseded it
``orphaned``    the run-logs say the cell *finished*, but the cache has
                no usable entry — the result vanished after the fact
``corrupt``     a cache entry exists but is unreadable: invalid JSON,
                binary garbage, zero-byte, or a payload whose identity
                does not match the cell (misfiled)
``stale-schema`` a cache entry parses but was written by an older
                result schema — it must not be served as current
==============  ==========================================================
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..analysis.runner import ExperimentRunner
from ..serve.protocol import Cell
from ..telemetry.runlog import RunLog, read_run_log_tolerant
from ..telemetry.spans import SpanRecorder, derive_span_id
from .campaign import CampaignSpec, campaign_root_context, make_runner

#: Every state the detector can assign, healthy first.
CELL_STATES = ("ok", "missing", "quarantined", "orphaned", "corrupt",
               "stale-schema")

#: States that demand a repair.
DAMAGED_STATES = ("missing", "quarantined", "orphaned", "corrupt",
                  "stale-schema")

#: Top-level fields a schema-current result payload must carry
#: (``SimResult.to_dict``'s keys; ``from_dict`` is deliberately lenient
#: for in-process use, so the detector checks strictly on its own).
REQUIRED_RESULT_FIELDS = (
    "workload", "config_name", "stats", "memory_stats", "frequency_ghz",
    "interval_samples", "sample_interval", "sampled", "sampling",
)

#: Default per-cell repair attempts before the engine gives up on it.
DEFAULT_CELL_BUDGET = 2

#: Default detector->repair->re-verify rounds.
DEFAULT_MAX_ROUNDS = 3


@dataclass
class CellStatus:
    """The detector's verdict for one cell of the matrix."""

    seq: int
    cell: Cell
    key: str
    state: str
    detail: str = ""

    def to_dict(self) -> Dict:
        return {"seq": self.seq, "cell": self.cell.to_dict(),
                "key": self.key, "state": self.state, "detail": self.detail}


@dataclass
class CampaignDiff:
    """The full three-way diff: one :class:`CellStatus` per cell."""

    statuses: List[CellStatus]
    #: damaged run-log lines skipped while reading
    skipped_lines: int = 0

    def by_state(self) -> Dict[str, int]:
        counts = {state: 0 for state in CELL_STATES}
        for status in self.statuses:
            counts[status.state] += 1
        return counts

    @property
    def damaged(self) -> List[CellStatus]:
        return [s for s in self.statuses if s.state != "ok"]

    @property
    def converged(self) -> bool:
        return not self.damaged

    def summary(self) -> str:
        counts = self.by_state()
        parts = [f"{state}={counts[state]}" for state in CELL_STATES
                 if counts[state]]
        verdict = "CONVERGED" if self.converged else "DAMAGED"
        return (f"reconcile diff {verdict}: {len(self.statuses)} cells "
                f"[{', '.join(parts) or 'empty'}]")


class Detector:
    """Read-only three-way diff of matrix vs cache vs run-logs."""

    def __init__(self, spec: CampaignSpec,
                 cache_dir: Optional[str] = None):
        self.spec = spec
        # probe runner: key derivation + cache location only, never runs
        self._runner = make_runner(spec, cache_dir=cache_dir)

    # ------------------------------------------------------------------
    def expected(self) -> List[Tuple[int, Cell, str]]:
        """The matrix as ``(seq, cell, key)`` in submission order."""
        out = []
        for seq, cell in enumerate(self.spec.cells()):
            workload, config, seed = cell.task(self.spec.seed)
            out.append((seq, cell, self._runner.key_for(workload, config,
                                                        seed)))
        return out

    def probe_entry(self, key: str,
                    cell: Optional[Cell] = None) -> Tuple[str, str]:
        """Classify one cache entry without mutating it.

        Returns ``(kind, detail)`` with ``kind`` one of ``absent`` /
        ``ok`` / ``corrupt`` / ``stale-schema``.  Unlike the runner's
        ``_load_disk`` (which deletes corrupt entries so they re-run
        exactly once), the probe is strictly read-only: deletion is a
        *repair*, and repairs belong to the engine's plan.
        """
        path = self._runner.cache_path(key)
        if path is None:
            return "absent", "cache disabled"
        if not path.exists():
            return "absent", ""
        try:
            text = path.read_text()
        except UnicodeDecodeError:
            return "corrupt", "binary-garbage"
        except OSError:
            return "corrupt", "unreadable"
        if not text.strip():
            return "corrupt", "zero-byte"
        try:
            data = json.loads(text)
        except ValueError:
            return "corrupt", "invalid-json"
        if not isinstance(data, dict):
            return "corrupt", "not-an-object"
        missing = [name for name in REQUIRED_RESULT_FIELDS
                   if name not in data]
        if missing:
            return "stale-schema", f"missing fields: {', '.join(missing)}"
        if cell is not None and data.get("workload") != cell.workload:
            return ("corrupt",
                    f"misfiled: payload claims workload "
                    f"{data.get('workload')!r}")
        try:
            from ..core.stats import SimResult

            SimResult.from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            return "corrupt", f"undeserialisable: {exc}"
        return "ok", ""

    def read_logs(
        self, campaign_dir: Union[str, Path],
    ) -> Tuple[Dict[str, str], Dict[str, Dict], int]:
        """Fold every run-log in the campaign directory.

        Returns ``(finished, quarantined, skipped_lines)`` keyed by
        cell key.  A ``finish``/``cache_hit`` after a ``quarantine``
        supersedes it (a repair round healed the cell); the reverse
        order never un-finishes a cell — the cache entry is the
        arbiter of whether the result survived.
        """
        finished: Dict[str, str] = {}
        quarantined: Dict[str, Dict] = {}
        skipped = 0
        for log_path in sorted(Path(campaign_dir).glob("*.jsonl")):
            records, bad = read_run_log_tolerant(str(log_path))
            skipped += bad
            for record in records:
                key = record.get("key")
                if not isinstance(key, str):
                    continue
                event = record.get("event")
                if event in ("finish", "cache_hit"):
                    finished[key] = str(event)
                    quarantined.pop(key, None)
                elif event == "quarantine":
                    quarantined[key] = record
        return finished, quarantined, skipped

    # ------------------------------------------------------------------
    def diff(self, campaign_dir: Union[str, Path]) -> CampaignDiff:
        """Classify every cell of the matrix (see the module taxonomy)."""
        finished, quarantined, skipped = self.read_logs(campaign_dir)
        statuses: List[CellStatus] = []
        for seq, cell, key in self.expected():
            kind, detail = self.probe_entry(key, cell)
            if kind == "ok":
                state = "ok"
            elif kind in ("corrupt", "stale-schema"):
                state = kind
            elif key in quarantined:
                record = quarantined[key]
                state = "quarantined"
                detail = (f"{record.get('kind', 'error')} after "
                          f"{record.get('attempts', '?')} attempt(s): "
                          f"{record.get('error', '')}")
            elif key in finished:
                state = "orphaned"
                detail = (f"run-log records {finished[key]} but the cache "
                          f"entry is gone")
            else:
                state = "missing"
                detail = "no cache entry, no run-log account"
            statuses.append(CellStatus(seq=seq, cell=cell, key=key,
                                       state=state, detail=detail))
        return CampaignDiff(statuses=statuses, skipped_lines=skipped)


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


@dataclass
class Repair:
    """One planned repair: what to do about one damaged cell."""

    status: CellStatus
    #: ``rerun`` (execute the cell again) or ``purge-rerun`` (delete the
    #: bad cache entry first so the rerun cannot be served the damage)
    action: str
    #: repair attempts already charged to this cell before this one
    attempt: int = 0

    def to_dict(self) -> Dict:
        return {"action": self.action, "attempt": self.attempt,
                **self.status.to_dict()}


@dataclass
class RepairPlan:
    """The engine's output: executable repairs + what it gave up on."""

    repairs: List[Repair] = field(default_factory=list)
    #: damaged cells whose per-cell budget is exhausted
    exhausted: List[CellStatus] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.repairs


class RepairEngine:
    """Turns a diff into a bounded, typed repair plan.

    ``cell_budget`` bounds how many repair attempts any one cell gets
    across the whole reconciliation (the scheduler feeds attempts back
    in); a cell that stays damaged past its budget is reported, not
    retried forever — quarantine semantics, one level up.
    """

    def __init__(self, cell_budget: int = DEFAULT_CELL_BUDGET):
        self.cell_budget = max(1, cell_budget)

    def plan(self, diff: CampaignDiff,
             attempts: Optional[Dict[str, int]] = None) -> RepairPlan:
        attempts = attempts or {}
        plan = RepairPlan()
        for status in diff.damaged:
            spent = attempts.get(status.key, 0)
            if spent >= self.cell_budget:
                plan.exhausted.append(status)
                continue
            action = ("purge-rerun"
                      if status.state in ("corrupt", "stale-schema")
                      else "rerun")
            plan.repairs.append(Repair(status=status, action=action,
                                       attempt=spent))
        return plan


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------


@dataclass
class ReconcileReport:
    """Machine-readable account of one reconciliation run."""

    cells: int
    initial: Dict[str, int]
    final: Dict[str, int] = field(default_factory=dict)
    rounds: List[Dict] = field(default_factory=list)
    converged: bool = False
    repaired: int = 0
    #: cells still damaged when the loop stopped
    unrepaired: List[Dict] = field(default_factory=list)
    skipped_lines: int = 0
    seconds: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "cells": self.cells,
            "initial": self.initial,
            "final": self.final,
            "rounds": self.rounds,
            "converged": self.converged,
            "repaired": self.repaired,
            "unrepaired": self.unrepaired,
            "skipped_lines": self.skipped_lines,
            "seconds": round(self.seconds, 6),
        }

    def summary(self) -> str:
        verdict = "CONVERGED" if self.converged else "NOT CONVERGED"
        damaged = sum(count for state, count in self.initial.items()
                      if state != "ok")
        return (f"reconcile {verdict}: {self.cells} cells, {damaged} "
                f"initially damaged, {self.repaired} repaired over "
                f"{len(self.rounds)} round(s), "
                f"{len(self.unrepaired)} unrepaired")


class RepairScheduler:
    """Runs the detect -> plan -> repair -> re-verify loop to convergence.

    Repairs execute through a **fresh** fault-tolerant runner each
    round (``runner_factory``) so quarantine records from previous
    rounds or earlier lives don't pin a cell that would now succeed;
    results merge through the shared cache exactly like any campaign.
    Alternatively, ``submit`` (a callable taking a list of
    :class:`~repro.serve.protocol.Cell` dicts) routes repairs to a
    running ``repro serve`` daemon that shares the cache — see
    :func:`submit_via_server`.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        cache_dir: Optional[str] = None,
        engine: Optional[RepairEngine] = None,
        detector: Optional[Detector] = None,
        runner_factory: Optional[Callable[[], ExperimentRunner]] = None,
        submit: Optional[Callable[[List[Cell]], None]] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        jobs: Optional[int] = None,
        progress=None,
        spans: bool = False,
    ):
        self.spec = spec
        self.cache_dir = cache_dir
        self.engine = engine or RepairEngine()
        self.detector = detector or Detector(spec, cache_dir=cache_dir)
        self.jobs = jobs
        if runner_factory is None:
            runner_factory = lambda: make_runner(  # noqa: E731
                spec, cache_dir=cache_dir, jobs=jobs)
        self.runner_factory = runner_factory
        self.submit = submit
        self.max_rounds = max(1, max_rounds)
        self.progress = progress or (lambda _msg: None)
        #: record reconcile-round spans into the campaign's trace
        self.spans = spans

    # ------------------------------------------------------------------
    def _purge(self, repair: Repair) -> None:
        path = self.detector._runner.cache_path(repair.status.key)
        if path is None:
            return
        try:
            path.unlink()
        except OSError:
            pass

    def reconcile(self, campaign_dir: Union[str, Path]) -> ReconcileReport:
        """Drive the loop; returns the machine-readable report.

        Repair runs write their own run-log (``reconcile.jsonl`` in the
        campaign directory) so the next detector round sees the
        repairs' lifecycle — a repaired quarantine is superseded by its
        ``finish`` record, and a repair that quarantines again is
        charged against the cell's budget.
        """
        started = time.perf_counter()
        root = Path(campaign_dir)
        root.mkdir(parents=True, exist_ok=True)
        log = RunLog(str(root / "reconcile.jsonl"))
        recorder: Optional[SpanRecorder] = None
        reconcile_span = None
        if self.spans:
            # rides the campaign's deterministic trace so repairs land
            # in the same merged view as the shards they heal
            recorder = SpanRecorder(str(root / "spans-reconcile.jsonl"))
            parent = campaign_root_context(self.spec)
            reconcile_span = recorder.start(
                "reconcile", parent=parent,
                span_id=derive_span_id(parent.trace_id, "reconcile"),
                max_rounds=self.max_rounds)
        diff = self.detector.diff(root)
        report = ReconcileReport(cells=len(diff.statuses),
                                 initial=diff.by_state(),
                                 skipped_lines=diff.skipped_lines)
        log.log("reconcile_start", cells=report.cells,
                max_rounds=self.max_rounds)
        self.progress("reconcile: " + diff.summary())
        attempts: Dict[str, int] = {}
        rounds = 0
        while not diff.converged and rounds < self.max_rounds:
            plan = self.engine.plan(diff, attempts)
            if plan.empty:
                break
            rounds += 1
            round_span = None
            if recorder is not None:
                round_span = recorder.start(
                    "reconcile_round", parent=reconcile_span,
                    span_id=derive_span_id(reconcile_span.trace_id,
                                           "reconcile_round", rounds),
                    round=rounds, repairs=len(plan.repairs))
            for repair in plan.repairs:
                attempts[repair.status.key] = repair.attempt + 1
                if repair.action == "purge-rerun":
                    self._purge(repair)
            cells = [repair.status.cell for repair in plan.repairs]
            self.progress(
                f"reconcile: round {rounds} — repairing "
                f"{len(cells)} cell(s) "
                f"({', '.join(sorted({r.status.state for r in plan.repairs}))})")
            if self.submit is not None:
                self.submit(cells)
            else:
                runner_log = RunLog(str(root / "reconcile.jsonl"))
                runner = self.runner_factory()
                # route the repair runner's lifecycle into the campaign
                # directory so the next detector pass can see it
                old_log = runner.run_log
                runner.run_log = runner_log
                # likewise its cell spans into the campaign trace,
                # nested under this repair round (getattr: the factory
                # may hand back a duck-typed runner without span hooks)
                old_spans = getattr(runner, "spans", None)
                old_ctx = getattr(runner, "trace_ctx", None)
                if round_span is not None:
                    runner.spans = recorder
                    runner.trace_ctx = round_span.context
                    runner._trace_parent = round_span.context
                try:
                    runner.run_many([cell.task(self.spec.seed)
                                     for cell in cells], jobs=self.jobs)
                finally:
                    runner.run_log = old_log
                    if round_span is not None:
                        runner.spans = old_spans
                        runner.trace_ctx = old_ctx
                        runner._trace_parent = old_ctx
                    runner_log.close()
            diff = self.detector.diff(root)
            round_states = diff.by_state()
            log.log("reconcile_round", round=rounds,
                    repairs=len(cells),
                    damaged=len(diff.damaged), states=round_states)
            if round_span is not None:
                recorder.finish(round_span, damaged_after=len(diff.damaged))
            report.rounds.append({
                "round": rounds,
                "repairs": len(cells),
                "damaged_after": len(diff.damaged),
                "states": round_states,
            })
            self.progress("reconcile: " + diff.summary())
        report.final = diff.by_state()
        report.converged = diff.converged
        healthy_now = report.final.get("ok", 0)
        healthy_then = report.initial.get("ok", 0)
        report.repaired = max(0, healthy_now - healthy_then)
        report.unrepaired = [status.to_dict() for status in diff.damaged]
        report.seconds = time.perf_counter() - started
        log.log("reconcile_end", converged=report.converged,
                rounds=rounds, repaired=report.repaired)
        if recorder is not None:
            recorder.finish(
                reconcile_span, status="ok" if report.converged else "error",
                rounds=rounds, repaired=report.repaired)
            recorder.close()
        log.close()
        return report


def submit_via_server(server: str, spec: CampaignSpec,
                      timeout: float = 300.0) -> Callable[[List[Cell]], None]:
    """A :class:`RepairScheduler` ``submit`` hook targeting a daemon.

    Repairs go up as one interactive job (they're blocking a campaign's
    convergence — the definition of interactive) with explicit seeds,
    and the call waits for the job to finish so the next detector round
    sees the daemon's writes in the shared cache.
    """
    from ..serve.client import ServeClient

    client = ServeClient(server, retries=3)

    def submit(cells: List[Cell]) -> None:
        explicit = [
            Cell(workload=cell.workload, arch=cell.arch, width=cell.width,
                 seed=cell.seed if cell.seed is not None else spec.seed)
            for cell in cells
        ]
        job = client.submit(cells=[cell.to_dict() for cell in explicit],
                            priority="interactive", tenant="reconcile")
        client.wait(job["job_id"], timeout=timeout)

    return submit


def reconcile_campaign(
    campaign_dir: Union[str, Path],
    spec: Optional[CampaignSpec] = None,
    cache_dir: Optional[str] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    cell_budget: int = DEFAULT_CELL_BUDGET,
    server: Optional[str] = None,
    jobs: Optional[int] = None,
    progress=None,
    spans: bool = False,
) -> ReconcileReport:
    """One-call reconciliation of a campaign directory (the CLI's core)."""
    from .campaign import load_manifest

    spec = spec if spec is not None else load_manifest(campaign_dir)
    submit = (submit_via_server(server, spec)
              if server is not None else None)
    scheduler = RepairScheduler(
        spec, cache_dir=cache_dir,
        engine=RepairEngine(cell_budget=cell_budget),
        submit=submit, max_rounds=max_rounds, jobs=jobs, progress=progress,
        spans=spans)
    return scheduler.reconcile(campaign_dir)
