"""Energy modelling: event-based core energy + DVFS scaling."""

from .dvfs import DVFS_LEVELS, DVFSPoint, evaluate_level, sweep_levels
from .model import (
    CATEGORIES,
    DEFAULT_EVENT_ENERGY,
    EnergyModel,
    EnergyReport,
    LeakageParams,
)

__all__ = [
    "DVFS_LEVELS",
    "DVFSPoint",
    "evaluate_level",
    "sweep_levels",
    "CATEGORIES",
    "DEFAULT_EVENT_ENERGY",
    "EnergyModel",
    "EnergyReport",
    "LeakageParams",
]
