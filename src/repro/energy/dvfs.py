"""DVFS operating points (paper §VI-E2, Figure 17b).

Four frequency/voltage levels from the paper:

====  =========  ========
name  frequency  voltage
====  =========  ========
L4    3.4 GHz    1.04 V
L3    3.2 GHz    1.01 V
L2    3.0 GHz    0.98 V
L1    2.8 GHz    0.96 V
====  =========  ========

Scaling model: dynamic energy scales with V^2, leakage power with V, and
execution time with 1/f.  Cycle counts are reused across levels — memory
latency in cycles is held constant, a simplification noted in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.config import CoreConfig
from ..core.stats import SimResult
from .model import EnergyModel, EnergyReport

#: level name -> (frequency GHz, voltage V), from the paper.
DVFS_LEVELS: Dict[str, Tuple[float, float]] = {
    "L4": (3.4, 1.04),
    "L3": (3.2, 1.01),
    "L2": (3.0, 0.98),
    "L1": (2.8, 0.96),
}


@dataclass
class DVFSPoint:
    """One (level, design) evaluation for Figure 17b."""

    level: str
    frequency_ghz: float
    voltage: float
    seconds: float
    energy_joules: float

    @property
    def power_watts(self) -> float:
        return self.energy_joules / self.seconds if self.seconds else 0.0

    @property
    def efficiency(self) -> float:
        """1 / EDP."""
        product = self.energy_joules * self.seconds
        return 1.0 / product if product else 0.0


def evaluate_level(
    result: SimResult,
    config: CoreConfig,
    level: str,
    model: EnergyModel = None,
) -> DVFSPoint:
    """Re-evaluate a run's time/energy at one of the paper's DVFS levels."""
    frequency, voltage = DVFS_LEVELS[level]
    model = model if model is not None else EnergyModel()
    report: EnergyReport = model.evaluate(
        result, config, frequency_ghz=frequency, voltage=voltage
    )
    return DVFSPoint(
        level=level,
        frequency_ghz=frequency,
        voltage=voltage,
        seconds=report.seconds,
        energy_joules=report.total_joules,
    )


def sweep_levels(
    result: SimResult, config: CoreConfig, model: EnergyModel = None
) -> Dict[str, DVFSPoint]:
    """Evaluate a run at all four paper levels."""
    return {
        level: evaluate_level(result, config, level, model)
        for level in DVFS_LEVELS
    }
