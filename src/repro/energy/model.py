"""Event-based core energy model (McPAT substitute).

Energy = sum over architectural events of a per-event energy, plus leakage
proportional to structure sizes and elapsed cycles.  The per-event values
are calibrated so that component *ratios* track the paper's Figure 15
breakdown (e.g. scheduling is ~20% of an out-of-order core's energy, and
the complexity difference between a 96-entry CAM wakeup and Ballerino's
head-only examination falls out of the event counts themselves):

* OoO wakeup broadcasts one CAM compare per IQ entry per completing op;
  Ballerino/CES wake only the handful of FIFO heads.
* Select energy scales with the number of prefix-sum inputs actually
  examined (96 for the unified IQ, ``num P-IQs + window`` for Ballerino).
* CASINO pays an extra queue write per inter-queue copy.

All values are picojoules at the nominal 22 nm, 1.04 V operating point;
:mod:`repro.energy.dvfs` scales them for other frequency/voltage levels.

The report buckets events into the paper's nine Figure 15 categories:
L1 I/D$, Fetch/Decode, Rename, Steer, MDP, Schedule, LSQ, PRF, FUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..core.config import CoreConfig
from ..core.stats import SimResult

#: Figure 15's component categories, in the paper's stacking order.
CATEGORIES = (
    "L1 I/D$",
    "Fetch/Decode",
    "Rename",
    "Steer",
    "MDP",
    "Schedule",
    "LSQ",
    "PRF",
    "FUs",
)

#: event name -> (category, energy in pJ per event)
DEFAULT_EVENT_ENERGY: Dict[str, tuple] = {
    "l1i": ("L1 I/D$", 16.0),
    "l1d": ("L1 I/D$", 22.0),
    "fetch": ("Fetch/Decode", 9.0),
    "rename": ("Rename", 7.0),
    "rat_recover": ("Rename", 2.0),
    "steer": ("Steer", 0.6),
    "pscb_read": ("Steer", 0.35),
    "pscb_write": ("Steer", 0.35),
    "mdp_access": ("MDP", 1.2),
    "dispatch": ("Schedule", 1.0),
    "iq_write": ("Schedule", 2.2),
    "iq_read": ("Schedule", 1.6),
    "wakeup_cam": ("Schedule", 0.18),  # per CAM tag compare
    "select_input": ("Schedule", 0.10),  # per prefix-sum input examined
    "rob_write": ("Schedule", 1.8),
    "rob_commit": ("Schedule", 1.8),
    "lsq_write": ("LSQ", 2.0),
    "lsq_search": ("LSQ", 3.0),
    "prf_read": ("PRF", 1.3),
    "prf_write": ("PRF", 1.6),
    "fu_int": ("FUs", 5.0),
    "fu_mul": ("FUs", 14.0),
    "fu_div": ("FUs", 32.0),
    "fu_fp": ("FUs", 18.0),
    "fu_agu": ("FUs", 4.0),
    "fu_branch": ("FUs", 3.0),
}


@dataclass(frozen=True)
class LeakageParams:
    """Static power coefficients, in pJ per cycle.

    Structure leakage scales with entry counts so that e.g. a 96-entry IQ
    leaks more than twelve 12-entry FIFOs' worth of pointers and a P-SCB.
    """

    per_iq_entry: float = 0.020
    per_rob_entry: float = 0.012
    per_preg: float = 0.010
    per_lsq_entry: float = 0.014
    frontend: float = 3.0
    l1_caches: float = 4.0
    fus_per_port: float = 0.8


@dataclass
class EnergyReport:
    """Core-wide energy for one simulation, by Figure 15 category."""

    categories: Dict[str, float]  # pJ per category
    cycles: int
    committed: int
    seconds: float

    @property
    def total_pj(self) -> float:
        return sum(self.categories.values())

    @property
    def total_joules(self) -> float:
        return self.total_pj * 1e-12

    @property
    def energy_per_instruction_pj(self) -> float:
        return self.total_pj / self.committed if self.committed else 0.0

    @property
    def edp(self) -> float:
        """Energy-delay product (J * s)."""
        return self.total_joules * self.seconds

    @property
    def efficiency(self) -> float:
        """Performance per energy = 1 / EDP (the paper's Figure 16 metric)."""
        return 1.0 / self.edp if self.edp else 0.0

    def fractions(self) -> Dict[str, float]:
        total = self.total_pj or 1.0
        return {k: v / total for k, v in self.categories.items()}


def _window_entries(config: CoreConfig) -> int:
    """Total scheduling-window entries for leakage purposes."""
    params = config.scheduler
    if params.kind in ("inorder", "ooo"):
        return params.iq_size
    if params.kind == "ces":
        return params.num_piqs * params.piq_size
    if params.kind == "casino":
        return sum(params.casino_queues)
    if params.kind == "fxa":
        return params.iq_size + params.ixu_depth * config.decode_width
    if params.kind == "ballerino":
        return params.siq_size + params.num_piqs * params.piq_size
    if params.kind == "dnb":
        return params.iq_size + params.siq_size + params.num_piqs * params.piq_size
    if params.kind == "spq":
        return params.num_piqs * params.piq_size
    raise ValueError(params.kind)


class EnergyModel:
    """Maps a :class:`SimResult`'s event counts to core energy."""

    def __init__(
        self,
        event_energy: Mapping[str, tuple] = None,
        leakage: LeakageParams = LeakageParams(),
    ):
        self.event_energy = dict(
            event_energy if event_energy is not None else DEFAULT_EVENT_ENERGY
        )
        self.leakage = leakage

    def evaluate(
        self,
        result: SimResult,
        config: CoreConfig,
        frequency_ghz: float = None,
        voltage: float = None,
    ) -> EnergyReport:
        """Compute the energy report for one run.

        ``frequency_ghz`` / ``voltage`` override the config's operating
        point (dynamic energy scales with V^2, leakage power with V; see
        :mod:`repro.energy.dvfs`).
        """
        freq = frequency_ghz if frequency_ghz is not None else config.frequency_ghz
        volt = voltage if voltage is not None else config.voltage
        v_scale_dyn = (volt / 1.04) ** 2
        v_scale_leak = volt / 1.04

        categories: Dict[str, float] = {name: 0.0 for name in CATEGORIES}
        for event, count in result.stats.energy_events.items():
            spec = self.event_energy.get(event)
            if spec is None:
                continue  # events outside the core (l2/l3/dram)
            category, pj = spec
            categories[category] += pj * count * v_scale_dyn

        leak = self.leakage
        cycles = result.stats.cycles
        static = {
            "Schedule": leak.per_iq_entry * _window_entries(config)
            + leak.per_rob_entry * config.rob_size,
            "PRF": leak.per_preg * (config.phys_int + config.phys_fp),
            "LSQ": leak.per_lsq_entry * (config.lq_size + config.sq_size),
            "Fetch/Decode": leak.frontend,
            "L1 I/D$": leak.l1_caches,
            "FUs": leak.fus_per_port * config.issue_width,
        }
        for category, pj_per_cycle in static.items():
            categories[category] += pj_per_cycle * cycles * v_scale_leak

        seconds = cycles / (freq * 1e9)
        return EnergyReport(
            categories=categories,
            cycles=cycles,
            committed=result.stats.committed,
            seconds=seconds,
        )
