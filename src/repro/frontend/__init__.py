"""Front end: branch prediction structures."""

from .branch_predictor import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    BranchTargetBuffer,
    FrontEnd,
    FrontEndPrediction,
    TagePredictor,
)

__all__ = [
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "BranchTargetBuffer",
    "FrontEnd",
    "FrontEndPrediction",
    "TagePredictor",
]
