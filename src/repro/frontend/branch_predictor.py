"""Branch prediction: TAGE direction predictor + set-associative BTB.

The paper's front end (Table I) uses a TAGE predictor with a 17-bit global
history register, one bimodal base table and four tagged tables (32 KiB
overall) plus a 512-set 4-way BTB.  This module implements that design point
faithfully at the algorithmic level: geometric history lengths, partial tags,
usefulness counters, and allocation on misprediction.

Only direction prediction matters for timing here — all branch targets in the
micro-op ISA are static, so the BTB models first-encounter target misses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class BranchPredictor:
    """Interface for direction predictors."""

    def predict(self, pc: int) -> bool:
        """Predict taken (True) / not taken (False) for the branch at ``pc``."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome."""
        raise NotImplementedError


class AlwaysTakenPredictor(BranchPredictor):
    """Trivial predictor, useful as a baseline in tests."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class BimodalPredictor(BranchPredictor):
    """Classic 2-bit saturating-counter table."""

    def __init__(self, entries: int = 4096):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._counters = [2] * entries  # weakly taken

    def predict(self, pc: int) -> bool:
        return self._counters[pc & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = pc & self._mask
        c = self._counters[i]
        self._counters[i] = min(3, c + 1) if taken else max(0, c - 1)


@dataclass
class _TageEntry:
    tag: int = 0
    counter: int = 0  # signed 3-bit: -4..3, >=0 means taken
    useful: int = 0


class TagePredictor(BranchPredictor):
    """TAGE with a bimodal base and ``num_tables`` tagged components.

    Args:
        num_tables: Number of tagged tables (paper: 4).
        history_bits: Global history register length (paper: 17).
        table_entries: Entries per tagged table.
        tag_bits: Partial tag width.
        seed: Seed for the (rare) randomised allocation choice.
    """

    def __init__(
        self,
        num_tables: int = 4,
        history_bits: int = 17,
        table_entries: int = 1024,
        tag_bits: int = 9,
        seed: int = 1,
    ):
        self.history_bits = history_bits
        self._ghr = 0
        self._base = BimodalPredictor(4096)
        self._rng = random.Random(seed)
        self._tag_mask = (1 << tag_bits) - 1
        self._entry_mask = table_entries - 1
        # geometric history lengths capped at the GHR width
        self.history_lengths: List[int] = []
        length = 4
        for _ in range(num_tables):
            self.history_lengths.append(min(length, history_bits))
            length *= 2
        self.history_lengths[-1] = history_bits
        self._tables: List[List[_TageEntry]] = [
            [_TageEntry() for _ in range(table_entries)] for _ in range(num_tables)
        ]
        # transient state between predict() and update()
        self._last: Optional[Tuple[int, Optional[int], Optional[int], bool, bool]] = None

    # ------------------------------------------------------------------
    def _fold(self, length: int) -> int:
        """Fold the newest ``length`` history bits into an index-sized hash."""
        history = self._ghr & ((1 << length) - 1)
        folded = 0
        while history:
            folded ^= history & self._entry_mask
            history >>= self._entry_mask.bit_length()
        return folded

    def _index(self, pc: int, table: int) -> int:
        length = self.history_lengths[table]
        return (pc ^ (pc >> 4) ^ self._fold(length) ^ (table << 3)) & self._entry_mask

    def _tag(self, pc: int, table: int) -> int:
        length = self.history_lengths[table]
        return (pc ^ (pc >> 7) ^ (self._fold(length) << 1)) & self._tag_mask

    # ------------------------------------------------------------------
    def predict(self, pc: int) -> bool:
        provider = None
        provider_index = None
        for table in reversed(range(len(self._tables))):
            index = self._index(pc, table)
            entry = self._tables[table][index]
            if entry.tag == self._tag(pc, table):
                provider = table
                provider_index = index
                break
        base_pred = self._base.predict(pc)
        if provider is None:
            prediction = base_pred
        else:
            prediction = self._tables[provider][provider_index].counter >= 0
        self._last = (pc, provider, provider_index, prediction, base_pred)
        return prediction

    def update(self, pc: int, taken: bool) -> None:
        if self._last is None or self._last[0] != pc:
            # prediction state lost (e.g. after a flush): fall back to a
            # fresh lookup so training still happens
            self.predict(pc)
        _, provider, provider_index, prediction, base_pred = self._last
        self._last = None

        mispredicted = prediction != taken
        if provider is not None:
            entry = self._tables[provider][provider_index]
            entry.counter = _sat_update(entry.counter, taken, lo=-4, hi=3)
            if prediction != base_pred:
                entry.useful = _sat_update(entry.useful, prediction == taken, lo=0, hi=3)
        else:
            self._base.update(pc, taken)

        if mispredicted:
            self._allocate(pc, taken, provider)

        self._ghr = ((self._ghr << 1) | int(taken)) & ((1 << self.history_bits) - 1)

    def _allocate(self, pc: int, taken: bool, provider: Optional[int]) -> None:
        """Allocate an entry in a longer-history table on misprediction."""
        start = 0 if provider is None else provider + 1
        candidates = []
        for table in range(start, len(self._tables)):
            index = self._index(pc, table)
            if self._tables[table][index].useful == 0:
                candidates.append((table, index))
        if not candidates:
            # decay usefulness so future allocations can succeed
            for table in range(start, len(self._tables)):
                index = self._index(pc, table)
                entry = self._tables[table][index]
                entry.useful = max(0, entry.useful - 1)
            return
        table, index = candidates[0] if len(candidates) == 1 else self._rng.choice(
            candidates[:2]
        )
        entry = self._tables[table][index]
        entry.tag = self._tag(pc, table)
        entry.counter = 0 if taken else -1
        entry.useful = 0


def _sat_update(value: int, up: bool, lo: int, hi: int) -> int:
    return min(hi, value + 1) if up else max(lo, value - 1)


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement (paper: 512 sets, 4 ways)."""

    def __init__(self, sets: int = 512, ways: int = 4):
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self._set_mask = sets - 1
        self.ways = ways
        # each set: list of (tag, target), most recently used first
        self._sets: List[List[Tuple[int, int]]] = [[] for _ in range(sets)]

    def lookup(self, pc: int) -> Optional[int]:
        """Return the predicted target for ``pc`` or ``None`` on a BTB miss."""
        entries = self._sets[pc & self._set_mask]
        tag = pc >> self._set_mask.bit_length()
        for i, (entry_tag, target) in enumerate(entries):
            if entry_tag == tag:
                entries.insert(0, entries.pop(i))  # LRU bump
                return target
        return None

    def install(self, pc: int, target: int) -> None:
        """Record the resolved target of the branch at ``pc``."""
        entries = self._sets[pc & self._set_mask]
        tag = pc >> self._set_mask.bit_length()
        for i, (entry_tag, _) in enumerate(entries):
            if entry_tag == tag:
                entries.pop(i)
                break
        entries.insert(0, (tag, target))
        if len(entries) > self.ways:
            entries.pop()


@dataclass
class FrontEndPrediction:
    """Outcome of predicting one branch at fetch."""

    taken: bool
    target: Optional[int]
    btb_hit: bool


class FrontEnd:
    """Combined direction predictor + BTB with misprediction accounting."""

    def __init__(self, predictor: Optional[BranchPredictor] = None,
                 btb: Optional[BranchTargetBuffer] = None):
        self.predictor = predictor if predictor is not None else TagePredictor()
        self.btb = btb if btb is not None else BranchTargetBuffer()
        self.lookups = 0
        self.mispredictions = 0

    def predict_branch(self, pc: int, unconditional: bool) -> FrontEndPrediction:
        self.lookups += 1
        target = self.btb.lookup(pc)
        taken = True if unconditional else self.predictor.predict(pc)
        return FrontEndPrediction(taken=taken, target=target, btb_hit=target is not None)

    def resolve(
        self,
        pc: int,
        prediction: FrontEndPrediction,
        taken: bool,
        target: Optional[int],
        unconditional: bool,
    ) -> bool:
        """Train on the outcome; returns True if the fetch was redirected."""
        if not unconditional:
            self.predictor.update(pc, taken)
        if taken and target is not None:
            self.btb.install(pc, target)
        mispredicted = (prediction.taken != taken) or (
            taken and prediction.target != target
        )
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.lookups if self.lookups else 0.0
