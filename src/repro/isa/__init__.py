"""Micro-op ISA: opcodes, registers, static and dynamic instructions."""

from .instruction import DynOp, Instruction
from .opcodes import OPCODES, OpClass, Opcode, opcode
from .registers import (
    F,
    NUM_ARCH_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    R,
    ZERO,
    fp_reg,
    int_reg,
    is_fp,
    reg_name,
)

__all__ = [
    "DynOp",
    "Instruction",
    "OPCODES",
    "OpClass",
    "Opcode",
    "opcode",
    "F",
    "R",
    "ZERO",
    "NUM_ARCH_REGS",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "fp_reg",
    "int_reg",
    "is_fp",
    "reg_name",
]
