"""Static instructions and dynamic micro-ops.

Two representations are used throughout the library:

* :class:`Instruction` — one *static* instruction of a program, produced by
  the :class:`~repro.workloads.program.ProgramBuilder` DSL.
* :class:`DynOp` — one *dynamic* micro-op in an execution trace, produced by
  the functional executor.  ``DynOp`` records everything the timing model
  needs (resolved memory address, branch outcome) and is immutable so that a
  trace can be replayed by many scheduler configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import Opcode
from .registers import reg_name


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Attributes:
        opcode: The :class:`~repro.isa.opcodes.Opcode`.
        dest: Destination architectural register or ``None``.
        srcs: Source architectural registers (address operands included).
        imm: Immediate operand (also the memory offset for loads/stores).
        target: Branch-target label, resolved to a pc by the assembler.
        pc: Program counter assigned by the assembler.
    """

    opcode: Opcode
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: int = 0
    target: Optional[str] = None
    pc: int = -1

    def __str__(self) -> str:
        parts = [self.opcode.name]
        if self.dest is not None:
            parts.append(reg_name(self.dest))
        parts.extend(reg_name(s) for s in self.srcs)
        if self.imm:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"-> {self.target}")
        return " ".join(parts)


@dataclass(frozen=True, slots=True)
class DynOp:
    """One dynamic micro-op in an execution trace.

    Attributes:
        seq: Position in the dynamic stream (0-based, increasing).
        pc: Program counter of the static instruction.
        opcode: The :class:`~repro.isa.opcodes.Opcode`.
        dest: Destination architectural register or ``None``.
        srcs: Source architectural registers.
        mem_addr: Byte address touched, for loads/stores.
        mem_size: Access size in bytes.
        taken: Branch outcome (``None`` for non-branches).
        target_pc: pc executed next if the branch is taken.
        fallthrough_pc: pc executed next if not taken (``pc + 1``).
    """

    seq: int
    pc: int
    opcode: Opcode
    dest: Optional[int]
    srcs: Tuple[int, ...]
    mem_addr: Optional[int] = None
    mem_size: int = 8
    taken: Optional[bool] = None
    target_pc: Optional[int] = None
    fallthrough_pc: Optional[int] = None

    @property
    def is_load(self) -> bool:
        return self.opcode.reads_memory

    @property
    def is_store(self) -> bool:
        return self.opcode.writes_memory

    @property
    def is_mem(self) -> bool:
        return self.opcode.op_class.is_memory

    @property
    def is_branch(self) -> bool:
        return self.opcode.is_branch

    @property
    def next_pc(self) -> Optional[int]:
        """The pc that actually follows this op in the dynamic stream."""
        if self.is_branch:
            return self.target_pc if self.taken else self.fallthrough_pc
        return self.fallthrough_pc

    def __str__(self) -> str:
        base = f"[{self.seq}] pc={self.pc} {self.opcode.name}"
        if self.dest is not None:
            base += f" {reg_name(self.dest)}<-"
        if self.srcs:
            base += "(" + ",".join(reg_name(s) for s in self.srcs) + ")"
        if self.mem_addr is not None:
            base += f" @0x{self.mem_addr:x}"
        if self.taken is not None:
            base += " taken" if self.taken else " not-taken"
        return base
