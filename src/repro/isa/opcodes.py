"""Micro-operation opcode definitions.

The simulator models a small RISC-like micro-op ISA that is sufficient to
express the workload kernels while exercising every scheduling-relevant
behaviour of the paper's x86 baseline: heterogeneous functional-unit
latencies, pipelined vs. unpipelined units, loads/stores with address
generation, and conditional branches.

Execution latencies follow common Skylake-class values (the paper's baseline
core, Table I).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Functional-unit class of a micro-op.

    The issue-port arbitration in :mod:`repro.core.ports` maps each class to
    the ports that host a matching functional unit (paper Table I).
    """

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)


@dataclass(frozen=True)
class Opcode:
    """Static description of one opcode.

    Attributes:
        name: Mnemonic, e.g. ``"add"``.
        op_class: Functional-unit class used for port arbitration.
        latency: Execution latency in cycles once issued to the FU.  For
            loads this is only the address-generation latency; the cache
            access time is added by the memory hierarchy.
        pipelined: Whether a new op of this kind can start on the same FU
            every cycle (divides are unpipelined).
        reads_memory / writes_memory: Memory side effects.
        is_branch: Whether the op may redirect control flow.
    """

    name: str
    op_class: OpClass
    latency: int
    pipelined: bool = True

    @property
    def reads_memory(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def writes_memory(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _make_opcode_table() -> dict:
    ops = [
        # integer ALU (1-cycle, pipelined)
        Opcode("add", OpClass.INT_ALU, 1),
        Opcode("addi", OpClass.INT_ALU, 1),
        Opcode("sub", OpClass.INT_ALU, 1),
        Opcode("and", OpClass.INT_ALU, 1),
        Opcode("or", OpClass.INT_ALU, 1),
        Opcode("xor", OpClass.INT_ALU, 1),
        Opcode("shl", OpClass.INT_ALU, 1),
        Opcode("shr", OpClass.INT_ALU, 1),
        Opcode("mov", OpClass.INT_ALU, 1),
        Opcode("li", OpClass.INT_ALU, 1),
        Opcode("slt", OpClass.INT_ALU, 1),
        # integer multiply / divide
        Opcode("mul", OpClass.INT_MUL, 3),
        Opcode("div", OpClass.INT_DIV, 20, pipelined=False),
        Opcode("rem", OpClass.INT_DIV, 20, pipelined=False),
        # floating point
        Opcode("fadd", OpClass.FP_ADD, 3),
        Opcode("fsub", OpClass.FP_ADD, 3),
        Opcode("fmul", OpClass.FP_MUL, 4),
        Opcode("fdiv", OpClass.FP_DIV, 12, pipelined=False),
        Opcode("fmov", OpClass.FP_ADD, 1),
        # memory (latency = AGU cycle; cache time added by the hierarchy)
        Opcode("load", OpClass.LOAD, 1),
        Opcode("fload", OpClass.LOAD, 1),
        Opcode("store", OpClass.STORE, 1),
        Opcode("fstore", OpClass.STORE, 1),
        # control flow
        Opcode("beq", OpClass.BRANCH, 1),
        Opcode("bne", OpClass.BRANCH, 1),
        Opcode("blt", OpClass.BRANCH, 1),
        Opcode("bge", OpClass.BRANCH, 1),
        Opcode("jmp", OpClass.BRANCH, 1),
        # misc
        Opcode("nop", OpClass.NOP, 1),
        Opcode("halt", OpClass.NOP, 1),
    ]
    return {op.name: op for op in ops}


#: Mnemonic -> :class:`Opcode` for every op in the ISA.
OPCODES: dict = _make_opcode_table()

#: Opcodes whose result another instruction can consume via a register.
PRODUCING_CLASSES = frozenset(
    {
        OpClass.INT_ALU,
        OpClass.INT_MUL,
        OpClass.INT_DIV,
        OpClass.FP_ADD,
        OpClass.FP_MUL,
        OpClass.FP_DIV,
        OpClass.LOAD,
    }
)


def opcode(name: str) -> Opcode:
    """Look up an :class:`Opcode` by mnemonic, raising ``KeyError`` if absent."""
    return OPCODES[name]
