"""Architectural register namespace.

The ISA exposes 32 integer registers (``r0`` .. ``r31``; ``r0`` is hard-wired
to zero, as in most RISC machines) and 32 floating-point registers (``f0`` ..
``f31``).  Registers are represented as small integers so that rename tables
and scoreboards can be flat lists: integer register *i* is value *i*, floating
register *i* is value ``32 + i``.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

#: The always-zero integer register.
ZERO = 0


def int_reg(index: int) -> int:
    """Return the architectural id of integer register ``index``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Return the architectural id of floating-point register ``index``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return NUM_INT_REGS + index


def is_fp(reg: int) -> bool:
    """True if ``reg`` names a floating-point architectural register."""
    return reg >= NUM_INT_REGS


def reg_name(reg: int) -> str:
    """Human-readable name (``r7`` / ``f3``) for an architectural register id."""
    if not 0 <= reg < NUM_ARCH_REGS:
        raise ValueError(f"architectural register out of range: {reg}")
    if is_fp(reg):
        return f"f{reg - NUM_INT_REGS}"
    return f"r{reg}"


class _RegNamespace:
    """Attribute-style access to register ids: ``R.r5`` or ``R[5]``."""

    def __init__(self, prefix: str, base: int, count: int):
        self._prefix = prefix
        self._base = base
        self._count = count

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < self._count:
            raise IndexError(f"{self._prefix} register index out of range: {index}")
        return self._base + index

    def __getattr__(self, name: str) -> int:
        if name.startswith(self._prefix):
            try:
                return self[int(name[len(self._prefix):])]
            except ValueError:
                pass
        raise AttributeError(name)


#: ``R[i]`` / ``R.r3`` -> integer register ids.
R = _RegNamespace("r", 0, NUM_INT_REGS)
#: ``F[i]`` / ``F.f3`` -> floating-point register ids.
F = _RegNamespace("f", NUM_INT_REGS, NUM_FP_REGS)
