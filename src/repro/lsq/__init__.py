"""Load/store queues and memory dependence prediction."""

from .mdp import LFSTEntry, StoreSetPredictor
from .queues import ForwardResult, LoadEntry, LoadStoreUnit, StoreEntry

__all__ = [
    "LFSTEntry",
    "StoreSetPredictor",
    "ForwardResult",
    "LoadEntry",
    "LoadStoreUnit",
    "StoreEntry",
]
