"""Memory dependence prediction with store sets (Chrysos & Emer).

Two structures, per the paper (Table I: 1024-entry SSIT, 7-bit SSID):

* **SSIT** — store-set identifier table, indexed by instruction pc.  A load
  and the stores it has ever collided with share an SSID.
* **LFST** — last fetched store table, indexed by SSID.  Holds the most
  recently dispatched, still-in-flight store of the set; a dispatching load
  (or store) in the same set becomes dependent on it, serialising the pair
  and preventing the order violation from recurring.

For Ballerino's M-dependence-aware steering (paper §IV-C), each LFST entry
additionally tracks the *steering location* of the producer store — the
P-IQ index it was steered to and a Reserved bit — so a consumer load can be
steered into the same P-IQ, overriding its register dependences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class LFSTEntry:
    """One last-fetched-store entry (+ Ballerino steering extension)."""

    store_seq: int = -1  # dynamic seq of the most recent in-flight store
    store_pc: int = -1
    valid: bool = False
    # --- Ballerino extension: producer steering location ---
    iq_index: Optional[int] = None
    partition: int = 0
    reserved: bool = False


class StoreSetPredictor:
    """Store-set MDP with the LFST steering extension.

    Args:
        ssit_entries: SSIT size (power of two).
        num_ssids: Number of store sets (2**ssid_bits).
    """

    def __init__(self, ssit_entries: int = 1024, num_ssids: int = 128):
        if ssit_entries & (ssit_entries - 1):
            raise ValueError("ssit_entries must be a power of two")
        self._ssit_mask = ssit_entries - 1
        self.num_ssids = num_ssids
        self._ssit: Dict[int, int] = {}  # pc-index -> ssid
        self._lfst: Dict[int, LFSTEntry] = {}  # ssid -> entry
        self._next_ssid = 0
        self.violations_trained = 0
        self.lookups = 0
        self.dependences_imposed = 0

    # ------------------------------------------------------------------
    def _ssit_index(self, pc: int) -> int:
        return pc & self._ssit_mask

    def ssid_of(self, pc: int) -> Optional[int]:
        return self._ssit.get(self._ssit_index(pc))

    def _alloc_ssid(self) -> int:
        ssid = self._next_ssid
        self._next_ssid = (self._next_ssid + 1) % self.num_ssids
        return ssid

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Record a memory-order violation between a load and its producer."""
        self.violations_trained += 1
        li, si = self._ssit_index(load_pc), self._ssit_index(store_pc)
        load_ssid, store_ssid = self._ssit.get(li), self._ssit.get(si)
        if load_ssid is None and store_ssid is None:
            ssid = self._alloc_ssid()
        elif load_ssid is None:
            ssid = store_ssid
        elif store_ssid is None:
            ssid = load_ssid
        else:
            ssid = min(load_ssid, store_ssid)  # merge rule from the paper
        self._ssit[li] = ssid
        self._ssit[si] = ssid

    # ------------------------------------------------------------------
    # dispatch-time lookups
    # ------------------------------------------------------------------
    def store_dispatched(self, pc: int, seq: int) -> Optional[int]:
        """A store enters the window; returns the seq it must follow, if any.

        Also installs this store as the set's last fetched store.
        """
        ssid = self.ssid_of(pc)
        if ssid is None:
            return None
        self.lookups += 1
        entry = self._lfst.setdefault(ssid, LFSTEntry())
        dep = entry.store_seq if entry.valid else None
        entry.store_seq = seq
        entry.store_pc = pc
        entry.valid = True
        entry.iq_index = None
        entry.partition = 0
        entry.reserved = False
        if dep is not None:
            self.dependences_imposed += 1
        return dep

    def load_dispatched(self, pc: int) -> Optional[int]:
        """A load enters the window; returns the producer store seq, if any."""
        ssid = self.ssid_of(pc)
        if ssid is None:
            return None
        self.lookups += 1
        entry = self._lfst.get(ssid)
        if entry is not None and entry.valid:
            self.dependences_imposed += 1
            return entry.store_seq
        return None

    # ------------------------------------------------------------------
    # Ballerino MDA-steering extension
    # ------------------------------------------------------------------
    def record_store_steering(
        self, pc: int, seq: int, iq_index: int, partition: int = 0
    ) -> None:
        """Remember where the set's last store was steered (paper §IV-C)."""
        ssid = self.ssid_of(pc)
        if ssid is None:
            return
        entry = self._lfst.get(ssid)
        if entry is not None and entry.valid and entry.store_seq == seq:
            entry.iq_index = iq_index
            entry.partition = partition
            entry.reserved = False

    def steering_hint(self, pc: int) -> Optional[LFSTEntry]:
        """Steering location of the producer store for a dispatching load.

        Returns the LFST entry if the producer store is in flight, steered,
        and no other consumer has reserved its P-IQ tail yet.
        """
        ssid = self.ssid_of(pc)
        if ssid is None:
            return None
        entry = self._lfst.get(ssid)
        if (
            entry is not None
            and entry.valid
            and entry.iq_index is not None
            and not entry.reserved
        ):
            return entry
        return None

    # ------------------------------------------------------------------
    # release / recovery
    # ------------------------------------------------------------------
    def store_issued(self, pc: int, seq: int) -> None:
        """The set's last store issued: release the LFST entry."""
        ssid = self.ssid_of(pc)
        if ssid is None:
            return
        entry = self._lfst.get(ssid)
        if entry is not None and entry.valid and entry.store_seq == seq:
            entry.valid = False
            entry.iq_index = None
            entry.reserved = False

    def flush_store(self, pc: int, seq: int) -> None:
        """A squashed store clears its LFST entry if it made the last update."""
        self.store_issued(pc, seq)
