"""Memory dependence prediction with store sets (Chrysos & Emer).

Two structures, per the paper (Table I: 1024-entry SSIT, 7-bit SSID):

* **SSIT** — store-set identifier table, indexed by instruction pc.  A load
  and the stores it has ever collided with share an SSID.
* **LFST** — last fetched store table, indexed by SSID.  Holds the most
  recently dispatched, still-in-flight store of the set; a dispatching load
  (or store) in the same set becomes dependent on it, serialising the pair
  and preventing the order violation from recurring.

For Ballerino's M-dependence-aware steering (paper §IV-C), each LFST entry
additionally tracks the *steering location* of the producer store — the
P-IQ index it was steered to and a Reserved bit — so a consumer load can be
steered into the same P-IQ, overriding its register dependences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class LFSTEntry:
    """One last-fetched-store entry (+ Ballerino steering extension)."""

    store_seq: int = -1  # dynamic seq of the most recent in-flight store
    store_pc: int = -1
    valid: bool = False
    # --- Ballerino extension: producer steering location ---
    iq_index: Optional[int] = None
    partition: int = 0
    reserved: bool = False
    reserved_by: int = -1  # seq of the consumer load holding the reservation


class StoreSetPredictor:
    """Store-set MDP with the LFST steering extension.

    Args:
        ssit_entries: SSIT size (power of two).
        num_ssids: Number of store sets (2**ssid_bits).
    """

    def __init__(self, ssit_entries: int = 1024, num_ssids: int = 128):
        if ssit_entries & (ssit_entries - 1):
            raise ValueError("ssit_entries must be a power of two")
        self._ssit_mask = ssit_entries - 1
        self.num_ssids = num_ssids
        self._ssit: Dict[int, int] = {}  # pc-index -> ssid
        self._lfst: Dict[int, LFSTEntry] = {}  # ssid -> entry
        self._next_ssid = 0
        self.violations_trained = 0
        self.lookups = 0
        self.dependences_imposed = 0

    # ------------------------------------------------------------------
    def _ssit_index(self, pc: int) -> int:
        return pc & self._ssit_mask

    def ssid_of(self, pc: int) -> Optional[int]:
        return self._ssit.get(self._ssit_index(pc))

    def _alloc_ssid(self) -> int:
        ssid = self._next_ssid
        self._next_ssid = (self._next_ssid + 1) % self.num_ssids
        return ssid

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Record a memory-order violation between a load and its producer."""
        self.violations_trained += 1
        li, si = self._ssit_index(load_pc), self._ssit_index(store_pc)
        load_ssid, store_ssid = self._ssit.get(li), self._ssit.get(si)
        if load_ssid is None and store_ssid is None:
            ssid = self._alloc_ssid()
        elif load_ssid is None:
            ssid = store_ssid
        elif store_ssid is None:
            ssid = load_ssid
        else:
            ssid = min(load_ssid, store_ssid)  # merge rule from the paper
        self._ssit[li] = ssid
        self._ssit[si] = ssid

    # ------------------------------------------------------------------
    # dispatch-time lookups
    # ------------------------------------------------------------------
    def store_dispatched(self, pc: int, seq: int) -> Optional[int]:
        """A store enters the window; returns the seq it must follow, if any.

        Also installs this store as the set's last fetched store.
        """
        ssid = self.ssid_of(pc)
        if ssid is None:
            return None
        self.lookups += 1
        entry = self._lfst.setdefault(ssid, LFSTEntry())
        dep = entry.store_seq if entry.valid else None
        entry.store_seq = seq
        entry.store_pc = pc
        entry.valid = True
        entry.iq_index = None
        entry.partition = 0
        entry.reserved = False
        if dep is not None:
            self.dependences_imposed += 1
        return dep

    def load_dispatched(self, pc: int) -> Optional[int]:
        """A load enters the window; returns the producer store seq, if any."""
        ssid = self.ssid_of(pc)
        if ssid is None:
            return None
        self.lookups += 1
        entry = self._lfst.get(ssid)
        if entry is not None and entry.valid:
            self.dependences_imposed += 1
            return entry.store_seq
        return None

    # ------------------------------------------------------------------
    # Ballerino MDA-steering extension
    # ------------------------------------------------------------------
    def record_store_steering(
        self, pc: int, seq: int, iq_index: int, partition: int = 0
    ) -> None:
        """Remember where the set's last store was steered (paper §IV-C)."""
        ssid = self.ssid_of(pc)
        if ssid is None:
            return
        entry = self._lfst.get(ssid)
        if entry is not None and entry.valid and entry.store_seq == seq:
            entry.iq_index = iq_index
            entry.partition = partition
            entry.reserved = False
            entry.reserved_by = -1

    def reserve_steering(self, pc: int, load_seq: int) -> None:
        """A consumer load was steered behind the set's producer store.

        The reservation records *which* load took the P-IQ tail slot so a
        squash of that load (without the store) can release it again.
        """
        ssid = self.ssid_of(pc)
        if ssid is None:
            return
        entry = self._lfst.get(ssid)
        if entry is not None and entry.valid and entry.iq_index is not None:
            entry.reserved = True
            entry.reserved_by = load_seq

    def remap_steering(self, iq_index: int, remap: Dict[int, int]) -> None:
        """A shared P-IQ collapsed: chain partitions moved (paper §IV-D).

        Any LFST entry whose producer store sits in ``iq_index`` must track
        the partition move, or a later consumer load would be steered
        against a stale partition index.
        """
        for entry in self._lfst.values():
            if entry.valid and entry.iq_index == iq_index:
                entry.partition = remap.get(entry.partition, entry.partition)

    def steering_hint(self, pc: int) -> Optional[LFSTEntry]:
        """Steering location of the producer store for a dispatching load.

        Returns the LFST entry if the producer store is in flight, steered,
        and no other consumer has reserved its P-IQ tail yet.
        """
        ssid = self.ssid_of(pc)
        if ssid is None:
            return None
        entry = self._lfst.get(ssid)
        if (
            entry is not None
            and entry.valid
            and entry.iq_index is not None
            and not entry.reserved
        ):
            return entry
        return None

    # ------------------------------------------------------------------
    # release / recovery
    # ------------------------------------------------------------------
    def store_issued(self, pc: int, seq: int) -> None:
        """The set's last store issued: release the LFST entry.

        Matched by seq over *all* sets, not only the pc's current SSID:
        a violation trained between this store's dispatch and its issue
        can reassign the pc's SSID (the merge rule), which would orphan
        the entry under the old set id — leaving a "last fetched store"
        that already left the window, imposing false dependences on
        every later load of the old set.
        """
        for entry in self._lfst.values():
            if entry.valid and entry.store_seq == seq:
                entry.valid = False
                entry.iq_index = None
                entry.reserved = False
                entry.reserved_by = -1
                return

    def flush_store(self, pc: int, seq: int) -> None:
        """A squashed store clears its LFST entry if it made the last update."""
        self.store_issued(pc, seq)

    # ------------------------------------------------------------------
    # debug invariants (repro.verify)
    # ------------------------------------------------------------------
    def debug_check(self, inflight: Dict[int, object]) -> None:
        """Every valid LFST entry must reference a live, un-issued store.

        ``inflight`` is the pipeline's seq -> InFlightOp map.  Raises
        ``AssertionError`` when an entry outlives its store (the
        stale-reservation / stale-entry bug family).
        """
        for ssid, entry in self._lfst.items():
            if not entry.valid:
                assert not entry.reserved, (
                    f"LFST[{ssid}]: reserved bit set on an invalid entry"
                )
                continue
            op = inflight.get(entry.store_seq)
            assert op is not None, (
                f"LFST[{ssid}]: store seq {entry.store_seq} not in flight"
            )
            assert op.is_store, f"LFST[{ssid}]: seq {entry.store_seq} not a store"
            assert not op.issued, (
                f"LFST[{ssid}]: store seq {entry.store_seq} already issued"
            )
            if entry.reserved:
                assert entry.iq_index is not None, (
                    f"LFST[{ssid}]: reserved without a steering location"
                )

    def flush_from(self, seq: int) -> None:
        """Squash recovery: drop every LFST reference to a seq >= ``seq``.

        Two cases per entry:

        * the producer store itself was squashed — invalidate the entry
          (covers stores whatever their pc, unlike :meth:`flush_store`);
        * only the *reserving consumer load* was squashed — release the
          Reserved bit so the re-fetched load can reclaim its own
          steering hint (the stale-reservation bug: ``reserved`` used to
          survive the load's squash and permanently deny the hint).
        """
        for entry in self._lfst.values():
            if entry.valid and entry.store_seq >= seq:
                entry.valid = False
                entry.iq_index = None
                entry.reserved = False
                entry.reserved_by = -1
            elif entry.reserved and entry.reserved_by >= seq:
                entry.reserved = False
                entry.reserved_by = -1
