"""Load queue / store queue with forwarding and violation detection.

Behaviour modelled (paper §II-A):

* loads search the store queue at execute; the youngest older store to the
  same word with known address supplies the value (store-to-load forwarding),
  completing when the store's data is ready;
* a load may execute while older stores still have unknown addresses
  (speculative memory disambiguation).  When such a store later resolves to
  the same word, a **memory order violation** is flagged and the core must
  squash from the load onward (the MDP exists to make this rare);
* stores write the data cache at commit.

All accesses in the micro-op ISA are 8-byte aligned words, so conflict
detection is word-granular.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class StoreEntry:
    seq: int
    pc: int
    addr: Optional[int] = None  # None until the AGU executes
    data_ready: Optional[int] = None  # cycle the store value is available


@dataclass
class LoadEntry:
    seq: int
    pc: int
    addr: Optional[int] = None
    executed: Optional[int] = None  # cycle the load obtained its value
    #: seq of the store it forwarded from, or -1 for memory/cache
    source_seq: int = -1


@dataclass
class ForwardResult:
    """Outcome of a load's store-queue search."""

    forwarded: bool
    ready_cycle: Optional[int] = None  # valid when forwarded
    source_seq: int = -1


class LoadStoreUnit:
    """The core's load queue + store queue pair."""

    def __init__(self, lq_size: int = 72, sq_size: int = 56):
        self.lq_size = lq_size
        self.sq_size = sq_size
        self._loads: Dict[int, LoadEntry] = {}
        self._stores: Dict[int, StoreEntry] = {}
        self.forwards = 0
        self.violations = 0
        self.searches = 0
        #: nullable telemetry sinks; the pipeline wires its own here
        self.tracer = None
        self.metrics = None

    # ------------------------------------------------------------------
    # allocation (dispatch)
    # ------------------------------------------------------------------
    def lq_full(self) -> bool:
        return len(self._loads) >= self.lq_size

    def sq_full(self) -> bool:
        return len(self._stores) >= self.sq_size

    def allocate_load(self, seq: int, pc: int) -> None:
        if self.lq_full():
            raise RuntimeError("load queue overflow")
        self._loads[seq] = LoadEntry(seq=seq, pc=pc)

    def allocate_store(self, seq: int, pc: int) -> None:
        if self.sq_full():
            raise RuntimeError("store queue overflow")
        self._stores[seq] = StoreEntry(seq=seq, pc=pc)

    @property
    def lq_occupancy(self) -> int:
        return len(self._loads)

    @property
    def sq_occupancy(self) -> int:
        return len(self._stores)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def load_executing(self, seq: int, addr: int, cycle: int) -> ForwardResult:
        """A load's address is ready: search the SQ for a forwarding source."""
        self.searches += 1
        if self.metrics is not None:
            self.metrics.count("lsq.searches")
        entry = self._loads[seq]
        entry.addr = addr
        best: Optional[StoreEntry] = None
        for store in self._stores.values():
            if store.seq < seq and store.addr == addr:
                if best is None or store.seq > best.seq:
                    best = store
        if best is not None:
            self.forwards += 1
            if self.metrics is not None:
                self.metrics.count("lsq.forwards")
            if self.tracer is not None:
                self.tracer.emit(cycle, seq, "forward", f"from:{best.seq}")
            # data may not be produced yet; forwarding completes then
            ready = best.data_ready if best.data_ready is not None else None
            return ForwardResult(forwarded=True, ready_cycle=ready, source_seq=best.seq)
        return ForwardResult(forwarded=False)

    def load_executed(self, seq: int, cycle: int, source_seq: int = -1) -> None:
        """Record that the load obtained its value at ``cycle``."""
        entry = self._loads[seq]
        entry.executed = cycle
        entry.source_seq = source_seq

    def store_address_ready(self, seq: int, addr: int, cycle: int) -> List[int]:
        """A store's address resolves; returns violating younger load seqs.

        A younger load violates if it already executed with the same word
        address and obtained its value from memory or from a store *older*
        than this one.
        """
        store = self._stores.get(seq)
        if store is None:  # flushed while in flight
            return []
        store.addr = addr
        violators = [
            load.seq
            for load in self._loads.values()
            if (
                load.seq > seq
                and load.addr == addr
                and load.executed is not None
                and load.source_seq < seq
            )
        ]
        if violators:
            self.violations += len(violators)
            if self.metrics is not None:
                self.metrics.count("lsq.violations", len(violators))
            if self.tracer is not None:
                for load_seq in violators:
                    self.tracer.emit(
                        cycle, load_seq, "violation", f"store:{seq}"
                    )
        return sorted(violators)

    def store_data_ready(self, seq: int, cycle: int) -> None:
        store = self._stores.get(seq)
        if store is not None:
            store.data_ready = cycle

    # ------------------------------------------------------------------
    # retirement / recovery
    # ------------------------------------------------------------------
    def commit_load(self, seq: int) -> None:
        self._loads.pop(seq, None)

    def commit_store(self, seq: int) -> StoreEntry:
        return self._stores.pop(seq)

    def flush_from(self, seq: int) -> List[Tuple[int, int]]:
        """Squash all entries with ``seq >= seq``; returns flushed stores
        as ``(seq, pc)`` so the MDP can clear its LFST entries."""
        flushed_stores = [
            (s.seq, s.pc) for s in self._stores.values() if s.seq >= seq
        ]
        self._loads = {k: v for k, v in self._loads.items() if k < seq}
        self._stores = {k: v for k, v in self._stores.items() if k < seq}
        return flushed_stores

    # ------------------------------------------------------------------
    # debug invariants (repro.verify)
    # ------------------------------------------------------------------
    def debug_check(self, rob_loads: set, rob_stores: set) -> None:
        """LSQ/ROB agreement: the queues hold exactly the ROB's memory ops.

        Raises ``AssertionError`` on a leaked or lost entry — the symptom
        of a flush path and an allocate path disagreeing about a squash.
        """
        assert set(self._loads) == rob_loads, (
            f"LQ/ROB disagree: lq-only={sorted(set(self._loads) - rob_loads)} "
            f"rob-only={sorted(rob_loads - set(self._loads))}"
        )
        assert set(self._stores) == rob_stores, (
            f"SQ/ROB disagree: sq-only={sorted(set(self._stores) - rob_stores)} "
            f"rob-only={sorted(rob_stores - set(self._stores))}"
        )
        assert len(self._loads) <= self.lq_size, "LQ overflow"
        assert len(self._stores) <= self.sq_size, "SQ overflow"
