"""Memory system: caches, MSHRs, prefetcher, DRAM, hierarchy glue."""

from .cache import Cache, CacheStats, LINE_SIZE
from .dram import DRAM, DRAMTimings
from .hierarchy import AccessResult, CODE_BASE, HierarchyConfig, MemoryHierarchy
from .mshr import MSHRFile
from .prefetcher import StridePrefetcher

__all__ = [
    "Cache",
    "CacheStats",
    "LINE_SIZE",
    "DRAM",
    "DRAMTimings",
    "AccessResult",
    "CODE_BASE",
    "HierarchyConfig",
    "MemoryHierarchy",
    "MSHRFile",
    "StridePrefetcher",
]
