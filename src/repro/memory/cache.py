"""Set-associative cache model with in-flight fill tracking.

The timing simulators are cycle-driven but memory latency is computed at
access time: a lookup returns the cycle at which the data is available.  Each
resident line remembers its *fill time*, so an access that hits a line still
in flight (an MSHR merge in real hardware) completes when the original miss
does — this is what lets independent misses overlap (MLP) while dependent
accesses serialise.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

LINE_SIZE = 64


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    prefetch_fills: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of a write-back, write-allocate cache hierarchy.

    Args:
        name: Label used in stats and energy accounting (``"l1d"`` etc.).
        size_bytes: Total capacity.
        assoc: Associativity.
        latency: Hit latency in cycles.
    """

    def __init__(self, name: str, size_bytes: int, assoc: int, latency: int):
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.latency = latency
        self.num_sets = max(1, size_bytes // (LINE_SIZE * assoc))
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count must be a power of two")
        # per set: OrderedDict line_tag -> fill_time, LRU order (oldest first)
        self._sets: Tuple[OrderedDict, ...] = tuple(
            OrderedDict() for _ in range(self.num_sets)
        )
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _set_for(self, line: int) -> OrderedDict:
        return self._sets[line & (self.num_sets - 1)]

    def probe(self, line: int) -> Optional[int]:
        """Return the line's fill time if resident (without LRU update)."""
        return self._set_for(line).get(line)

    def lookup(self, line: int) -> Optional[int]:
        """LRU-updating lookup: fill time if the line is resident, else None."""
        entries = self._set_for(line)
        fill_time = entries.get(line)
        if fill_time is None:
            self.stats.misses += 1
            return None
        entries.move_to_end(line)
        self.stats.hits += 1
        return fill_time

    def fill(self, line: int, fill_time: int, prefetch: bool = False) -> Optional[int]:
        """Insert ``line`` (available at ``fill_time``); return evicted line."""
        entries = self._set_for(line)
        evicted = None
        if line in entries:
            # keep the earlier availability if the line is already in flight
            entries[line] = min(entries[line], fill_time)
            entries.move_to_end(line)
        else:
            if len(entries) >= self.assoc:
                evicted, _ = entries.popitem(last=False)
                self.stats.evictions += 1
            entries[line] = fill_time
        if prefetch:
            self.stats.prefetch_fills += 1
        return evicted

    def invalidate(self, line: int) -> None:
        self._set_for(line).pop(line, None)

    def settle(self, cycle: int) -> None:
        """Complete every in-flight fill: clamp fill times to ``cycle``.

        Used by functional warming (:mod:`repro.core.sampling`): content
        and LRU order are the warm state worth keeping; future fill
        times only encode the *timing* of the warming accesses, which a
        fast-forward stretch compresses into an unrealistically short
        clock span.
        """
        for entries in self._sets:
            for line, fill_time in entries.items():
                if fill_time > cycle:
                    entries[line] = cycle

    def resident_lines(self) -> int:
        """Total lines currently resident (for occupancy tests)."""
        return sum(len(entries) for entries in self._sets)
