"""Bank- and row-aware DDR4-like DRAM timing model.

A lightweight substitute for Ramulator (paper Table I: 4 GiB DDR4-2400,
1 channel, 1 rank): per-bank open-row state with activate / precharge / CAS
timing, bank-level parallelism, and a shared data-bus occupancy.  All timing
parameters are expressed in *CPU* cycles so the core simulator needs no clock
domain crossing; defaults correspond to a ~3.4 GHz core over DDR4-2400.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class DRAMTimings:
    """Timing parameters, in CPU cycles.

    Defaults approximate DDR4-2400 CL17 seen from a 3.4 GHz core:
    one DRAM clock ~= 2.8 CPU cycles.
    """

    t_rcd: int = 48  # activate -> column access
    t_cas: int = 48  # column access -> data
    t_rp: int = 48  # precharge
    t_burst: int = 11  # data-bus occupancy per 64B line
    controller: int = 30  # queueing/controller/PHY fixed overhead


@dataclass
class _Bank:
    open_row: int = -1
    ready_at: int = 0


class DRAM:
    """Open-page DRAM with ``banks`` independent banks and one data bus.

    Args:
        timings: CPU-cycle timing parameters.
        banks: Total banks (channel x rank x bank).
        row_bytes: Row-buffer size.
    """

    def __init__(
        self,
        timings: DRAMTimings = DRAMTimings(),
        banks: int = 16,
        row_bytes: int = 2048,
    ):
        self.timings = timings
        self.num_banks = banks
        self.row_bytes = row_bytes
        self._banks: List[_Bank] = [_Bank() for _ in range(banks)]
        self._bus_ready = 0
        self.accesses = 0
        self.row_hits = 0
        self.row_misses = 0

    def _map(self, addr: int) -> tuple:
        """Address mapping: line-interleaved across banks with XOR folding.

        Folding the row bits into the bank index (permutation-based
        interleaving) prevents same-index streams in different memory
        regions from serialising on a single bank with alternating rows.
        """
        line = addr // 64
        row = addr // (self.row_bytes * self.num_banks)
        bank = (line ^ row) % self.num_banks
        return bank, row

    def access(self, addr: int, cycle: int) -> int:
        """Issue a line fill; return the cycle at which data is delivered."""
        self.accesses += 1
        t = self.timings
        bank_id, row = self._map(addr)
        bank = self._banks[bank_id]
        start = max(cycle + t.controller, bank.ready_at)
        if bank.open_row == row:
            self.row_hits += 1
            data_at = start + t.t_cas
        else:
            self.row_misses += 1
            penalty = t.t_rp + t.t_rcd if bank.open_row != -1 else t.t_rcd
            data_at = start + penalty + t.t_cas
            bank.open_row = row
        # serialise on the shared data bus
        data_at = max(data_at, self._bus_ready)
        self._bus_ready = data_at + t.t_burst
        bank.ready_at = data_at
        return data_at + t.t_burst

    def settle(self, cycle: int) -> None:
        """Quiesce bank/bus occupancy to ``cycle``, keeping open rows.

        Open-row state is warm *content* (it determines future row
        hits); ``ready_at`` / bus occupancy are warm *timing*, which is
        meaningless after a fast-forward stretch compressed the clock.
        """
        for bank in self._banks:
            if bank.ready_at > cycle:
                bank.ready_at = cycle
        if self._bus_ready > cycle:
            self._bus_ready = cycle

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
