"""Three-level cache hierarchy + DRAM, glued together.

Latency composition is computed at access time: every access returns the
cycle at which its data is available to the core.  Lines in flight are
resident-with-future-fill-time, so overlapping misses behave like MSHR
merges, and MSHR files bound the per-level miss parallelism.

Configuration defaults follow paper Table I:

* L1 I/D: 32 KiB 8-way, 4-cycle, 8 MSHRs, stride prefetcher on the D-side
* L2: 256 KiB 8-way, 12-cycle, 32 MSHRs
* L3: 1 MiB 4-way, 42-cycle, 64 MSHRs
* DRAM: DDR4-2400-like bank/row model
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .cache import Cache, LINE_SIZE
from .dram import DRAM, DRAMTimings
from .mshr import MSHRFile
from .prefetcher import StridePrefetcher

#: Instruction fetches are mapped into this address region (one 4-byte slot
#: per static pc) so they exercise the L1I without aliasing data regions.
CODE_BASE = 0x4000_0000


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizes/latencies for the cache hierarchy (paper Table I defaults)."""

    l1_size: int = 32 * 1024
    l1_assoc: int = 8
    l1_latency: int = 4
    l1_mshrs: int = 8
    l2_size: int = 256 * 1024
    l2_assoc: int = 8
    l2_latency: int = 12
    l2_mshrs: int = 32
    l3_size: int = 1024 * 1024
    l3_assoc: int = 4
    l3_latency: int = 42
    l3_mshrs: int = 64
    prefetch: bool = True


@dataclass
class AccessResult:
    """Timing outcome of one memory access."""

    complete_cycle: int
    level: str  # "l1" / "l2" / "l3" / "dram" — where the data was found


class MemoryHierarchy:
    """The full data/instruction memory system for one simulated core."""

    def __init__(self, config: HierarchyConfig = HierarchyConfig()):
        self.config = config
        c = config
        self.l1i = Cache("l1i", c.l1_size, c.l1_assoc, c.l1_latency)
        self.l1d = Cache("l1d", c.l1_size, c.l1_assoc, c.l1_latency)
        self.l2 = Cache("l2", c.l2_size, c.l2_assoc, c.l2_latency)
        self.l3 = Cache("l3", c.l3_size, c.l3_assoc, c.l3_latency)
        self.dram = DRAM(DRAMTimings())
        self.mshrs = {
            "l1i": MSHRFile(c.l1_mshrs),
            "l1d": MSHRFile(c.l1_mshrs),
            "l2": MSHRFile(c.l2_mshrs),
            "l3": MSHRFile(c.l3_mshrs),
        }
        self.prefetcher = StridePrefetcher() if c.prefetch else None
        #: per-structure access counts consumed by the energy model
        self.events: Dict[str, int] = {
            "l1i": 0, "l1d": 0, "l2": 0, "l3": 0, "dram": 0
        }

    # ------------------------------------------------------------------
    # internal recursive fetch
    # ------------------------------------------------------------------
    def _fetch_line(
        self, chain: List[Tuple[Cache, MSHRFile]], line: int, cycle: int,
        addr: int, count_events: bool = True,
    ) -> Tuple[int, str]:
        """Fetch ``line`` through the remaining cache ``chain``.

        Returns ``(data_available_cycle, level_found)``.
        """
        if not chain:
            if count_events:
                self.events["dram"] += 1
            return self.dram.access(addr, cycle), "dram"
        (cache, mshr), rest = chain[0], chain[1:]
        if count_events:
            self.events[cache.name] += 1
        fill_time = cache.lookup(line)
        if fill_time is not None:
            return max(cycle, fill_time) + cache.latency, cache.name
        merged = mshr.lookup(line, cycle)
        if merged is not None:
            return max(cycle, merged) + cache.latency, cache.name
        start = mshr.earliest_free(cycle) + cache.latency  # tag check + queue
        completion, level = self._fetch_line(rest, line, start, addr, count_events)
        mshr.allocate(line, completion)
        cache.fill(line, completion)
        return completion + 1, level  # +1: fill-to-use forwarding

    # ------------------------------------------------------------------
    # public access points
    # ------------------------------------------------------------------
    def access_data(
        self, addr: int, cycle: int, is_write: bool = False, pc: int = 0
    ) -> AccessResult:
        """A load/store data access; returns when the data is available."""
        line = addr // LINE_SIZE
        chain = [
            (self.l1d, self.mshrs["l1d"]),
            (self.l2, self.mshrs["l2"]),
            (self.l3, self.mshrs["l3"]),
        ]
        complete, level = self._fetch_line(chain, line, cycle, addr)
        if self.prefetcher is not None and not is_write:
            for pf_addr in self.prefetcher.train(pc, addr):
                self._prefetch(pf_addr, cycle)
        return AccessResult(complete_cycle=complete, level=level)

    def _prefetch(self, addr: int, cycle: int) -> None:
        """Issue a prefetch into the L1D (does not block the core)."""
        line = addr // LINE_SIZE
        if self.l1d.probe(line) is not None:
            return
        if self.mshrs["l1d"].lookup(line, cycle) is not None:
            return
        chain = [
            (self.l2, self.mshrs["l2"]),
            (self.l3, self.mshrs["l3"]),
        ]
        completion, _ = self._fetch_line(
            chain, line, cycle + self.l1d.latency, addr, count_events=True
        )
        self.l1d.fill(line, completion, prefetch=True)

    def access_ifetch(self, pc: int, cycle: int) -> AccessResult:
        """An instruction fetch for the cache line holding ``pc``.

        A next-line prefetch is issued alongside every fetch (sequential
        instruction prefetching), so straight-line code pipelines its
        I-cache misses instead of serialising on them.
        """
        addr = CODE_BASE + pc * 4
        line = addr // LINE_SIZE
        chain = [
            (self.l1i, self.mshrs["l1i"]),
            (self.l2, self.mshrs["l2"]),
            (self.l3, self.mshrs["l3"]),
        ]
        complete, level = self._fetch_line(chain, line, cycle, addr)
        next_line = line + 1
        if (
            self.l1i.probe(next_line) is None
            and self.mshrs["l1i"].lookup(next_line, cycle) is None
        ):
            next_addr = next_line * LINE_SIZE
            nl_complete, _ = self._fetch_line(
                chain[1:], next_line, cycle + self.l1i.latency, next_addr
            )
            self.mshrs["l1i"].allocate(next_line, nl_complete)
            self.l1i.fill(next_line, nl_complete, prefetch=True)
        return AccessResult(complete_cycle=complete, level=level)

    # ------------------------------------------------------------------
    def settle(self, cycle: int) -> None:
        """Complete all in-flight timing state, keeping warm content.

        After a functional fast-forward stretch (:mod:`repro.core.
        sampling`) the hierarchy holds the right *content* — tags, LRU
        order, open DRAM rows — but its *timing* state (future fill
        times, outstanding MSHRs, bank/bus occupancy) reflects the
        compressed fast-forward clock: hundreds of misses issued in a
        few simulated cycles queue fills far into the measured window,
        which would charge the window latency the real machine never
        sees.  Settling declares all of that in-flight work done by
        ``cycle`` so a measured window starts from a warm, quiescent
        memory system.
        """
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            cache.settle(cycle)
        for mshr in self.mshrs.values():
            mshr.settle()
        self.dram.settle(cycle)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-level hit/miss statistics plus DRAM row behaviour."""
        out: Dict[str, Dict[str, float]] = {}
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            out[cache.name] = {
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "miss_rate": round(cache.stats.miss_rate, 4),
            }
        out["dram"] = {
            "accesses": self.dram.accesses,
            "row_hit_rate": round(self.dram.row_hit_rate, 4),
        }
        return out
