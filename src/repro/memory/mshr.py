"""Miss Status Holding Registers.

An MSHR file bounds the number of outstanding misses a cache can sustain —
the structural limit on memory-level parallelism.  Misses to a line already
outstanding *merge* (no new MSHR); when the file is full, a new miss must
wait for the earliest outstanding miss to complete.
"""

from __future__ import annotations

import heapq
from typing import Dict, List


class MSHRFile:
    """Tracks outstanding misses for one cache level.

    Args:
        capacity: Number of simultaneous outstanding (distinct-line) misses.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._by_line: Dict[int, int] = {}  # line -> completion cycle
        self._heap: List[tuple] = []  # (completion, line)
        self.merges = 0
        self.full_stalls = 0

    def _reap(self, cycle: int) -> None:
        while self._heap and self._heap[0][0] <= cycle:
            completion, line = heapq.heappop(self._heap)
            if self._by_line.get(line) == completion:
                del self._by_line[line]

    def outstanding(self, cycle: int) -> int:
        """Number of misses in flight (or queued behind a full file).

        When the file is full a new miss is timed to *start* at the earliest
        outstanding completion (see :meth:`earliest_free`) but is recorded
        immediately, so this count can transiently exceed ``capacity`` —
        the timing invariant (no more than ``capacity`` misses in service
        at once) is enforced through the start times, not this counter.
        """
        self._reap(cycle)
        return len(self._by_line)

    def lookup(self, line: int, cycle: int) -> int | None:
        """If ``line`` is already in flight, return its completion cycle."""
        self._reap(cycle)
        completion = self._by_line.get(line)
        if completion is not None:
            self.merges += 1
        return completion

    def earliest_free(self, cycle: int) -> int:
        """Earliest cycle at which a new MSHR can be allocated.

        With ``q`` misses already recorded, the new one must wait for the
        ``(q - capacity + 1)``-th earliest completion — each queued miss
        consumes one freed slot in completion order.
        """
        self._reap(cycle)
        queued = len(self._by_line)
        if queued < self.capacity:
            return cycle
        self.full_stalls += 1
        need = queued - self.capacity + 1
        completions = sorted(self._by_line.values())
        return completions[need - 1]

    def allocate(self, line: int, completion: int) -> None:
        """Record a new outstanding miss for ``line``."""
        self._by_line[line] = completion
        heapq.heappush(self._heap, (completion, line))

    def settle(self) -> None:
        """Drop every outstanding miss (treated as already completed).

        Part of the functional-warming reset between fast-forward and
        measured execution; merge/stall statistics are kept.
        """
        self._by_line.clear()
        self._heap.clear()
