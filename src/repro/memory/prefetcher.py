"""Stride-based hardware prefetcher (per-PC reference prediction table).

Matches the paper's "stride-based prefetcher" attached to the L1D: each
load/store PC trains an entry (last address, stride, confidence); once
confident, the prefetcher emits ``degree`` prefetch addresses ahead of the
current access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class _StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Per-PC stride detector.

    Args:
        table_entries: Size of the reference prediction table.
        degree: Prefetches issued per confident access.
        distance: How many strides ahead the first prefetch lands.
        threshold: Confidence needed before issuing prefetches.
    """

    def __init__(
        self,
        table_entries: int = 256,
        degree: int = 4,
        distance: int = 1,
        threshold: int = 2,
    ):
        self._mask = table_entries - 1
        if table_entries & self._mask:
            raise ValueError("table_entries must be a power of two")
        self.degree = degree
        self.distance = distance
        self.threshold = threshold
        self._table: Dict[int, _StrideEntry] = {}
        self.issued = 0

    def train(self, pc: int, addr: int) -> List[int]:
        """Observe an access; return addresses to prefetch (possibly empty)."""
        key = pc & self._mask
        entry = self._table.get(key)
        if entry is None:
            self._table[key] = _StrideEntry(last_addr=addr)
            return []
        stride = addr - entry.last_addr
        if stride == entry.stride and stride != 0:
            entry.confidence = min(entry.confidence + 1, 7)
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            if entry.confidence == 0:
                entry.stride = stride
        entry.last_addr = addr
        if entry.confidence >= self.threshold and entry.stride != 0:
            # scale small strides up to cache-line steps so prefetches run
            # far enough ahead to hide memory latency on unit-stride streams
            step = entry.stride
            if 0 < abs(step) < 64:
                lines = -(-64 // abs(step))  # ceil
                step *= lines
            prefetches = [
                addr + step * (self.distance + i) for i in range(self.degree)
            ]
            self.issued += len(prefetches)
            return prefetches
        return []
