"""Register renaming."""

from .rename_unit import OutOfPhysicalRegisters, RenameUnit, RenamedOp

__all__ = ["OutOfPhysicalRegisters", "RenameUnit", "RenamedOp"]
