"""Register renaming: RAT, physical free lists, and recovery.

Models the paper's two-stage pipelined renaming (§IV-B) at the architectural
level: a register alias table maps architectural to physical registers,
destinations draw from per-class free lists, and every rename writes a
recovery-log record so a pipeline flush can restore the RAT by walking the
log backwards (the paper's recovery-log scheme).

The two-*cycle* rename latency itself is applied by the pipeline; this module
provides the state and the rename/commit/flush operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..isa.instruction import DynOp
from ..isa.registers import NUM_ARCH_REGS, NUM_INT_REGS, ZERO, is_fp


@dataclass
class RenamedOp:
    """Rename-stage output for one micro-op: physical operand bindings."""

    seq: int
    dest_preg: Optional[int]
    src_pregs: Tuple[int, ...]
    #: previous mapping of the destination arch reg (for recovery + freeing)
    prev_dest_preg: Optional[int] = None
    dest_arch: Optional[int] = None


class OutOfPhysicalRegisters(RuntimeError):
    """Raised when ``rename`` is called without checking ``can_rename``."""


class RenameUnit:
    """RAT + free lists + recovery log.

    Physical register ids: integers ``0 .. num_int-1`` are the integer pool;
    ``num_int .. num_int+num_fp-1`` are the FP pool.  At reset, architectural
    register *i* maps to physical register *i*'s pool slot, and physical
    register 0 (backing ``r0``) is permanently ready and never reallocated.

    Args:
        num_int: Integer physical registers (paper 8-wide: 180).
        num_fp: FP physical registers (paper 8-wide: 168).
    """

    def __init__(self, num_int: int = 180, num_fp: int = 168):
        if num_int < NUM_INT_REGS or num_fp < NUM_ARCH_REGS - NUM_INT_REGS:
            raise ValueError("physical pools must cover the architectural state")
        self.num_int = num_int
        self.num_fp = num_fp
        self.num_phys = num_int + num_fp
        # initial identity mapping
        self._rat: List[int] = [0] * NUM_ARCH_REGS
        for arch in range(NUM_ARCH_REGS):
            if is_fp(arch):
                self._rat[arch] = num_int + (arch - NUM_INT_REGS)
            else:
                self._rat[arch] = arch
        self._free_int: List[int] = list(range(NUM_INT_REGS, num_int))
        self._free_fp: List[int] = list(
            range(num_int + (NUM_ARCH_REGS - NUM_INT_REGS), num_int + num_fp)
        )
        self.renames = 0
        self.recovered = 0
        #: nullable telemetry sink; the pipeline wires its registry here
        self.metrics = None

    # ------------------------------------------------------------------
    def lookup(self, arch: int) -> int:
        """Current physical mapping of an architectural register."""
        return self._rat[arch]

    def free_count(self, fp: bool) -> int:
        return len(self._free_fp) if fp else len(self._free_int)

    def can_rename(self, op: DynOp) -> bool:
        """True if a destination register (if any) can be allocated."""
        if op.dest is None or op.dest == ZERO:
            return True
        pool = self._free_fp if is_fp(op.dest) else self._free_int
        return bool(pool)

    def rename(self, op: DynOp) -> RenamedOp:
        """Rename one micro-op; the caller must have checked ``can_rename``."""
        src_pregs = tuple(self._rat[src] for src in op.srcs)
        dest_preg = None
        prev = None
        if op.dest is not None and op.dest != ZERO:
            pool = self._free_fp if is_fp(op.dest) else self._free_int
            if not pool:
                raise OutOfPhysicalRegisters(f"no free preg for {op}")
            dest_preg = pool.pop()
            prev = self._rat[op.dest]
            self._rat[op.dest] = dest_preg
        self.renames += 1
        if self.metrics is not None:
            self.metrics.count("rename.renames")
        return RenamedOp(
            seq=op.seq,
            dest_preg=dest_preg,
            src_pregs=src_pregs,
            prev_dest_preg=prev,
            dest_arch=op.dest,
        )

    # ------------------------------------------------------------------
    def commit_mapping(self, prev_dest_preg: Optional[int]) -> None:
        """Retire: the previous mapping of the destination becomes free."""
        if prev_dest_preg is not None:
            pool = (
                self._free_fp if prev_dest_preg >= self.num_int else self._free_int
            )
            pool.append(prev_dest_preg)

    def undo_mapping(
        self,
        dest_arch: Optional[int],
        dest_preg: Optional[int],
        prev_dest_preg: Optional[int],
    ) -> None:
        """Undo one rename (recovery-log walk-back, youngest first)."""
        if dest_preg is None:
            return
        self._rat[dest_arch] = prev_dest_preg
        pool = self._free_fp if dest_preg >= self.num_int else self._free_int
        pool.append(dest_preg)
        self.recovered += 1
        if self.metrics is not None:
            self.metrics.count("rename.recovered")

    def commit(self, renamed: RenamedOp) -> None:
        """Retire a :class:`RenamedOp` (wrapper over ``commit_mapping``)."""
        self.commit_mapping(renamed.prev_dest_preg)

    def flush(self, renamed_young_first: List[RenamedOp]) -> None:
        """Undo renames (youngest first), restoring the RAT and free lists."""
        for renamed in renamed_young_first:
            self.undo_mapping(
                renamed.dest_arch, renamed.dest_preg, renamed.prev_dest_preg
            )
