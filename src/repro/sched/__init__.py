"""Scheduling windows: the paper's subject.

``create_scheduler(pipeline)`` builds the scheduler named by the pipeline's
``config.scheduler.kind`` — one of ``inorder``, ``ooo``, ``ces``,
``casino``, ``fxa``, ``ballerino``.
"""

from __future__ import annotations

from .ballerino import BallerinoScheduler
from .base import SchedulerBase
from .casino import CasinoScheduler
from .ces import CESScheduler
from .fxa import FXAScheduler
from .inorder import InOrderScheduler
from .ooo import OutOfOrderScheduler
from .piq import SharedPIQ
from .steering import SteerDecision, SteerInfo, SteeringScoreboard

__all__ = [
    "BallerinoScheduler",
    "SchedulerBase",
    "CasinoScheduler",
    "CESScheduler",
    "FXAScheduler",
    "InOrderScheduler",
    "OutOfOrderScheduler",
    "SharedPIQ",
    "SteerDecision",
    "SteerInfo",
    "SteeringScoreboard",
    "create_scheduler",
]


def create_scheduler(core) -> SchedulerBase:
    """Instantiate the scheduler described by ``core.config.scheduler``."""
    params = core.config.scheduler
    kind = params.kind
    if kind == "inorder":
        return InOrderScheduler(core, iq_size=params.iq_size)
    if kind == "ooo":
        return OutOfOrderScheduler(
            core, iq_size=params.iq_size, oldest_first=params.oldest_first
        )
    if kind == "ces":
        return CESScheduler(
            core,
            num_piqs=params.num_piqs,
            piq_size=params.piq_size,
            mda_steering=params.mda_steering,
        )
    if kind == "casino":
        return CasinoScheduler(
            core, queue_sizes=params.casino_queues, window=params.casino_window
        )
    if kind == "fxa":
        return FXAScheduler(core, iq_size=params.iq_size,
                            ixu_depth=params.ixu_depth)
    if kind == "spq":
        from .spq import SPQScheduler

        return SPQScheduler(
            core, num_queues=params.num_piqs, queue_size=params.piq_size
        )
    if kind == "dnb":
        from .dnb import DNBScheduler

        return DNBScheduler(
            core,
            iq_size=params.iq_size,
            num_delay_queues=params.num_piqs,
            delay_queue_size=params.piq_size,
            bypass_size=params.siq_size,
            bypass_window=params.siq_window,
        )
    if kind == "ballerino":
        return BallerinoScheduler(
            core,
            siq_size=params.siq_size,
            siq_window=params.siq_window,
            num_piqs=params.num_piqs,
            piq_size=params.piq_size,
            mda_steering=params.mda_steering,
            piq_sharing=params.piq_sharing,
            ideal_sharing=params.ideal_sharing,
        )
    raise ValueError(f"unknown scheduler kind: {kind}")
