"""Ballerino: cascaded S-IQ + clustered shareable P-IQs (the paper's design).

Per cycle (paper §IV):

1. **P-IQ select** — every P-IQ examines its active head(s); ready heads
   request their issue port.  P-IQ requests occupy the upper prefix-sum
   inputs, so they automatically out-prioritise the younger S-IQ ops
   (partial oldest-first selection, §IV-E).
2. **S-IQ speculative issue & steering** — up to ``siq_window`` ops at the
   S-IQ head are processed in order: a ready op issues immediately; a ready
   op whose port is taken is steered to a P-IQ as a new dependence head
   (it retries at the P-IQ head next cycle); a non-ready op is steered
   along its M/R-dependences.  A steering stall blocks the S-IQ head.

Steering (§IV-C) resolves, in priority order: the M-dependence hint from
the extended LFST (loads only, ``mda_steering``), the first source operand
whose producer sits unreserved at a P-IQ tail, an empty P-IQ, and finally —
with ``piq_sharing`` — an eligible P-IQ is switched into sharing mode and
the op starts the second partition.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..core.ifop import InFlightOp
from .base import SchedulerBase
from .piq import SharedPIQ
from .steering import SteerDecision, SteerInfo, SteeringScoreboard


class BallerinoScheduler(SchedulerBase):
    """The full Ballerino scheduling window."""

    kind = "ballerino"

    def __init__(
        self,
        core,
        siq_size: int = 8,
        siq_window: int = 4,
        num_piqs: int = 7,
        piq_size: int = 12,
        mda_steering: bool = True,
        piq_sharing: bool = True,
        ideal_sharing: bool = False,
    ):
        super().__init__(core)
        self.siq_size = siq_size
        self.siq_window = siq_window
        self.num_piqs = num_piqs
        self.piq_size = piq_size
        self.mda = mda_steering
        self.sharing = piq_sharing
        self.ideal = ideal_sharing
        self.siq: Deque[InFlightOp] = deque()
        self.piqs: List[SharedPIQ] = [
            SharedPIQ(piq_size, ideal=ideal_sharing) for _ in range(num_piqs)
        ]
        self.steer = SteeringScoreboard()
        self.issued_siq = 0
        self.issued_piq = 0
        self.outcomes: Dict[str, int] = {
            "steer_dc": 0, "steer_mda": 0, "share": 0,
            "alloc_ready": 0, "alloc_nonready": 0,
            "stall_ready": 0, "stall_nonready": 0,
        }
        self.head_states: Dict[str, int] = {
            "issue": 0, "wait_mdep": 0, "wait_operand": 0,
            "port_conflict": 0, "empty": 0,
        }

    # ------------------------------------------------------------------
    # dispatch: everything enters through the S-IQ
    # ------------------------------------------------------------------
    def can_accept(self, ifop: InFlightOp) -> bool:
        return len(self.siq) < self.siq_size

    def insert(self, ifop: InFlightOp, cycle: int) -> None:
        self.siq.append(ifop)
        ifop.sched_tag = "siq"
        self.energy["iq_write"] += 1

    # ------------------------------------------------------------------
    # steering
    # ------------------------------------------------------------------
    def _decide(self, ifop: InFlightOp, ready: bool) -> SteerDecision:
        self.energy["pscb_read"] += max(1, len(ifop.src_pregs))
        # 1) M-dependence-aware override for loads
        if self.mda and ifop.is_load and self.core.mdp is not None:
            hint = self.core.mdp.steering_hint(ifop.op.pc)
            if hint is not None and hint.iq_index is not None:
                piq = self.piqs[hint.iq_index]
                tail = piq.tail(hint.partition)
                if (
                    tail is not None
                    and tail.seq == hint.store_seq
                    and piq.has_space(hint.partition)
                ):
                    return SteerDecision(
                        target=hint.iq_index, partition=hint.partition,
                        outcome="mda", ready=ready,
                    )
        # 2) follow the first source operand waiting at a P-IQ tail
        if not ready:
            for preg in ifop.src_pregs:
                info = self.steer.get(preg)
                if info is None or info.reserved:
                    continue
                if self.piqs[info.iq].has_space(info.partition):
                    return SteerDecision(
                        target=info.iq, partition=info.partition,
                        outcome="dc", followed_preg=preg, ready=ready,
                    )
                break  # producer's queue is full: become a new head
        # 3) a fresh dependence head: empty P-IQ first
        for index, piq in enumerate(self.piqs):
            if not piq.count:
                return SteerDecision(target=index, partition=0,
                                     outcome="alloc", ready=ready)
        # 4) P-IQ sharing
        if self.sharing:
            candidates = [
                index for index, piq in enumerate(self.piqs) if piq.shareable()
            ]
            if candidates:
                index = min(candidates, key=lambda j: self.piqs[j].count)
                return SteerDecision(target=index, partition=1,
                                     outcome="share", ready=ready)
        return SteerDecision(target=None, partition=0, outcome="stall",
                             ready=ready)

    def _count_outcome(self, decision: SteerDecision) -> None:
        suffix = "ready" if decision.ready else "nonready"
        if decision.outcome == "dc":
            self.outcomes["steer_dc"] += 1
        elif decision.outcome == "mda":
            self.outcomes["steer_mda"] += 1
        elif decision.outcome == "share":
            self.outcomes["share"] += 1
        elif decision.outcome == "alloc":
            self.outcomes[f"alloc_{suffix}"] += 1
        else:
            self.outcomes[f"stall_{suffix}"] += 1
        if self.metrics is not None:
            self.metrics.count(f"sched.steer.{decision.outcome}_{suffix}")

    def _apply_steer(self, ifop: InFlightOp, decision: SteerDecision) -> None:
        piq = self.piqs[decision.target]
        partition = decision.partition
        if decision.outcome == "share" and not piq.sharing:
            partition = piq.activate_sharing()
        piq.append(ifop, partition)
        ifop.iq_index = decision.target
        ifop.iq_partition = partition
        ifop.sched_tag = "piq"
        self.trace_steer(
            ifop, f"{decision.outcome}->piq{decision.target}.{partition}"
        )
        self.energy["iq_write"] += 1
        self.energy["steer"] += 1
        if decision.followed_preg is not None:
            self.steer.reserve(decision.followed_preg, ifop.seq)
        if decision.outcome == "mda" and self.core.mdp is not None:
            # record *which* load reserved the hint so a squash of the
            # load alone releases the reservation (see mdp.flush_from)
            self.core.mdp.reserve_steering(ifop.op.pc, ifop.seq)
        if ifop.dest_preg is not None:
            self.steer.set(
                ifop.dest_preg,
                SteerInfo(iq=decision.target, partition=partition,
                          owner_seq=ifop.seq),
            )
            self.energy["pscb_write"] += 1
        if self.mda and ifop.is_store and self.core.mdp is not None:
            self.core.mdp.record_store_steering(
                ifop.op.pc, ifop.seq, decision.target, partition
            )

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------
    def select(self, cycle: int) -> List[InFlightOp]:
        issued: List[InFlightOp] = []
        core = self.core
        try_grant = core.try_grant
        energy = self.energy
        select_inputs = 0
        # phase 1: P-IQ heads (upper prefix-sum inputs -> higher priority)
        head_states = self.head_states
        for index, piq in enumerate(self.piqs):
            if not piq.count:
                head_states["empty"] += 1
                continue
            issued_partition: Optional[int] = None
            # common case inlined: a non-sharing P-IQ examines exactly
            # its FIFO head (active_heads() would build a fresh list)
            if piq.sharing:
                heads = piq.active_heads()
            else:
                heads = ((0, piq.partitions[0][0]),)
            for partition, head in heads:
                select_inputs += 1
                table = head._t
                slot = head._i
                # inlined core.srcs_ready / core.mdp_dep_satisfied
                if table.wake_pending[slot]:
                    head_states["wait_operand"] += 1
                    continue
                if table.mdp_waiting[slot]:
                    head_states["wait_mdep"] += 1
                    continue
                if not try_grant(head, cycle):
                    head_states["port_conflict"] += 1
                    continue
                piq.pop_head(partition, collapse=False)
                self.steer.clear(head.dest_preg)
                energy["iq_read"] += 1
                head_states["issue"] += 1
                self.issued_piq += 1
                issued.append(head)
                issued_partition = partition
            remap = piq.collapse_idle()
            if remap is not None:
                # a partition drained and the queue collapsed: translate
                # every index captured before the collapse — the steering
                # scoreboard, the LFST hints, and the partition we issued
                # from (handing end_cycle the pre-collapse index would
                # leave `active` pointing at a chain that moved)
                self._apply_remap(index, remap)
                if issued_partition is not None:
                    issued_partition = remap.get(
                        issued_partition, issued_partition
                    )
            piq.end_cycle(issued_partition)
        # phase 2: the S-IQ's speculative scheduling window.  Ready ops in
        # the window issue immediately; non-ready ops *preceding* the last
        # issued op are steered to the P-IQs (they were bypassed, so they
        # must leave to keep the FIFO in program order).  Ops after the
        # last issued op stay — a consumer of a just-issued producer then
        # issues from the S-IQ next cycle (cycle-by-cycle chain issue).
        # If nothing in the window is ready, the whole window is steered,
        # advancing the speculative window toward younger ops.
        siq = self.siq
        window_len = len(siq)
        if not window_len:
            energy["select_input"] += select_inputs
            return issued
        if window_len > self.siq_window:
            window_len = self.siq_window
        window = [siq[i] for i in range(window_len)]
        select_inputs += window_len
        issued_mask = []
        ready_mask = []
        for op in window:
            table = op._t
            slot = op._i
            ready = (
                table.wake_pending[slot] == 0 and table.mdp_waiting[slot] == 0
            )
            granted = ready and try_grant(op, cycle)
            ready_mask.append(ready)
            issued_mask.append(granted)
            if granted:
                energy["iq_read"] += 1
                self.issued_siq += 1
                issued.append(op)
        energy["select_input"] += select_inputs
        if any(issued_mask):
            limit = max(i for i, ok in enumerate(issued_mask) if ok)
        else:
            limit = len(window)
        for _ in range(window_len):
            siq.popleft()
        kept: List[InFlightOp] = []
        blocked = False
        for i, op in enumerate(window):
            if issued_mask[i]:
                continue
            if blocked or i > limit:
                kept.append(op)
                continue
            # steer: along M/R-dependences if not ready, or as a fresh
            # dependence head if ready but the issue port was taken
            decision = self._decide(op, ready_mask[i])
            self._count_outcome(decision)
            if decision.target is None:
                blocked = True  # steering stall: this op blocks the head
                kept.append(op)
            else:
                self._apply_steer(op, decision)
        for op in reversed(kept):
            self.siq.appendleft(op)
        return issued

    def on_wakeup(self, preg: int, cycle: int) -> None:
        # completions are observed only by the P-IQ heads + S-IQ window
        self.energy["wakeup_cam"] += self.num_piqs + self.siq_window

    def _apply_remap(self, iq_index: int, remap: Dict[int, int]) -> None:
        """Propagate a P-IQ partition collapse to all location records."""
        self.steer.remap_partition(iq_index, remap)
        if self.mda and self.core.mdp is not None:
            self.core.mdp.remap_steering(iq_index, remap)

    # ------------------------------------------------------------------
    def flush_from(self, seq: int) -> None:
        while self.siq and self.siq[-1].seq >= seq:
            self.siq.pop()
        for index, piq in enumerate(self.piqs):
            remap = piq.flush_from(seq)
            if remap is not None:
                self._apply_remap(index, remap)
        self.steer.flush_from(seq)

    def check_invariants(self) -> None:
        assert len(self.siq) <= self.siq_size, "S-IQ overflow"
        seqs = [op.seq for op in self.siq]
        assert seqs == sorted(seqs), f"S-IQ out of program order: {seqs}"
        for index, piq in enumerate(self.piqs):
            piq.debug_check()
            for queue in piq.partitions:
                for op in queue:
                    assert op.iq_index == index, (
                        f"op {op.seq} records P-IQ {op.iq_index}, "
                        f"lives in {index}"
                    )

    def occupancy(self) -> int:
        return len(self.siq) + sum(piq.count for piq in self.piqs)

    def queue_occupancy(self) -> Dict[str, int]:
        out = {"siq": len(self.siq)}
        for index, piq in enumerate(self.piqs):
            out[f"piq{index}"] = piq.occupancy()
        return out

    def extra_stats(self) -> Dict[str, float]:
        stats: Dict[str, float] = dict(self.outcomes)
        stats.update({f"head_{k}": v for k, v in self.head_states.items()})
        stats["issued_siq"] = self.issued_siq
        stats["issued_piq"] = self.issued_piq
        stats["share_activations"] = sum(
            piq.share_activations for piq in self.piqs
        )
        return stats
