"""Scheduler interface.

A scheduler owns the scheduling window between dispatch and issue.  The
pipeline calls:

* :meth:`can_accept` / :meth:`insert` at dispatch (in program order);
* :meth:`select` once per cycle — the scheduler picks ready micro-ops,
  acquiring issue ports through ``core.try_grant``, and returns them;
* :meth:`on_wakeup` when a physical register becomes ready (used for
  energy accounting of wakeup broadcasts);
* :meth:`on_op_ready` when a specific op's *last* outstanding dependence
  resolves (event-driven wakeup; lets windowed schedulers maintain
  their ready-set incrementally instead of re-polling every entry);
* :meth:`flush_from` on a squash.

Schedulers record their energy-relevant activity into ``core.energy``
(a Counter) using these event names:

=================  ======================================================
``wakeup_cam``     CAM tag comparisons performed by wakeup broadcasts
``select_input``   prefix-sum select-logic inputs examined
``iq_write``       scheduling-window entry writes (dispatch, copies)
``iq_read``        payload reads at issue
``pscb_read``      physical-register scoreboard reads (Ballerino/CES)
``pscb_write``     scoreboard updates
``steer``          steering-mux operations
=================  ======================================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, TYPE_CHECKING

from ..core.ifop import InFlightOp

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pipeline import Pipeline


class SchedulerBase:
    """Common plumbing for all scheduling-window implementations."""

    kind = "base"

    def __init__(self, core: "Pipeline"):
        self.core = core
        self.energy = core.energy
        # getattr: unit tests drive schedulers with stripped-down fake cores
        self.metrics = getattr(core, "metrics", None)

    # -- telemetry -----------------------------------------------------
    def trace_steer(self, ifop: InFlightOp, cause: str) -> None:
        """Publish a ``steer`` event for this op (no-op when tracing is off).

        ``cause`` names the movement, e.g. ``dc->piq3.0`` or ``pass->q2``.
        """
        tracer = getattr(self.core, "tracer", None)
        if tracer is not None:
            tracer.emit(self.core.cycle, ifop.seq, "steer", cause)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a hardware counter (no-op when metrics are off)."""
        if self.metrics is not None:
            self.metrics.count(name, n)

    # -- dispatch ------------------------------------------------------
    def can_accept(self, ifop: InFlightOp) -> bool:
        raise NotImplementedError

    def insert(self, ifop: InFlightOp, cycle: int) -> None:
        raise NotImplementedError

    # -- issue ---------------------------------------------------------
    def select(self, cycle: int) -> List[InFlightOp]:
        raise NotImplementedError

    def on_wakeup(self, preg: int, cycle: int) -> None:
        """A physical register became ready (energy accounting hook)."""

    def on_op_ready(self, ifop: InFlightOp, cycle: int) -> None:
        """``ifop`` transitioned to fully ready (event-driven wakeup).

        Fired by the pipeline's :class:`~repro.core.wakeup.
        WakeupScoreboard` for every op whose last outstanding source (or
        MDP dependence) just resolved — wherever the op currently sits.
        Schedulers that keep an incremental ready-set override this; the
        default (head-polling FIFO designs, whose per-head check is
        already O(1)) ignores it.  Implementations must tolerate ops
        that are not (or no longer) resident in their window.
        """

    def on_complete(self, ifop: InFlightOp, cycle: int) -> None:
        """An op finished execution (training hook, e.g. delay trackers)."""

    # -- recovery ------------------------------------------------------
    def flush_from(self, seq: int) -> None:
        raise NotImplementedError

    # -- debug invariants (repro.verify) -------------------------------
    def check_invariants(self) -> None:
        """Assert window-shape invariants (FIFO order, capacity, ...).

        Called once per cycle by :func:`repro.verify.invariants.
        check_pipeline` when the pipeline runs with ``check_invariants``
        set.  The default is a no-op; window implementations override it
        with structure-specific assertions.
        """

    # -- reporting -----------------------------------------------------
    def occupancy(self) -> int:
        raise NotImplementedError

    def queue_occupancy(self) -> Dict[str, int]:
        """Instantaneous per-queue depths for the interval sampler.

        Partitioned designs override this with one entry per internal
        queue (``siq``/``piq0``/...); the default reports the whole
        window as a single queue.
        """
        return {"window": self.occupancy()}

    def extra_stats(self) -> Dict[str, float]:
        return {}
