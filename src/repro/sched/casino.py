"""CASINO: cascaded speculative in-order scheduling windows [HPCA'20].

One or more speculative in-order IQs (S-IQs) sit in front of a conventional
in-order IQ.  Each cycle every S-IQ examines a *speculative scheduling
window* of the first ``window`` entries:

* ready ops in the window issue immediately (out of order w.r.t. older
  non-ready ops);
* non-ready ops that precede an issued op are passed to the next queue,
  keeping program order inside each queue;
* if nothing in the window is ready, the window advances by passing
  ``window`` ops to the next queue.

Ops reaching the last queue issue strictly in order — which is why CASINO
is not cache-miss tolerant (paper §II-C): a stalled chain at the last
queue's head blocks every younger ready op behind it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Sequence, Tuple

from ..core.ifop import InFlightOp
from .base import SchedulerBase


class CasinoScheduler(SchedulerBase):
    """Cascaded S-IQs in front of an in-order IQ."""

    kind = "casino"

    def __init__(self, core, queue_sizes: Sequence[int] = (8, 40, 40, 8),
                 window: int = 4):
        super().__init__(core)
        if len(queue_sizes) < 2:
            raise ValueError("CASINO needs at least one S-IQ plus the final IQ")
        self.queue_sizes = tuple(queue_sizes)
        self.window = window
        self.queues: List[Deque[InFlightOp]] = [deque() for _ in queue_sizes]
        self.issued_from: List[int] = [0] * len(queue_sizes)
        self.passes = 0

    # ------------------------------------------------------------------
    def can_accept(self, ifop: InFlightOp) -> bool:
        return len(self.queues[0]) < self.queue_sizes[0]

    def insert(self, ifop: InFlightOp, cycle: int) -> None:
        self.queues[0].append(ifop)
        ifop.iq_index = 0
        self.energy["iq_write"] += 1

    # ------------------------------------------------------------------
    def select(self, cycle: int) -> List[InFlightOp]:
        issued: List[InFlightOp] = []
        last = len(self.queues) - 1
        # the final queue: strict in-order issue
        final = self.queues[last]
        while final and len(issued) < self.core.config.issue_width:
            head = final[0]
            self.energy["select_input"] += 1
            if not self.core.op_ready(head, cycle):
                break
            if not self.core.try_grant(head, cycle):
                break
            final.popleft()
            self.energy["iq_read"] += 1
            self.issued_from[last] += 1
            issued.append(head)
        # each S-IQ, youngest queue last so passes cannot cascade in one cycle
        for qi in range(last - 1, -1, -1):
            issued.extend(self._select_siq(qi, cycle))
        return issued

    def _select_siq(self, qi: int, cycle: int) -> List[InFlightOp]:
        core = self.core
        queue = self.queues[qi]
        next_queue = self.queues[qi + 1]
        next_cap = self.queue_sizes[qi + 1]
        if not queue:
            return []
        window = list(queue)[: self.window]
        self.energy["select_input"] += len(window)
        issued: List[InFlightOp] = []
        issued_mask: List[bool] = []
        for op in window:
            ok = core.op_ready(op, cycle) and core.try_grant(op, cycle)
            issued_mask.append(ok)
            if ok:
                issued.append(op)
                self.issued_from[qi] += 1
                self.energy["iq_read"] += 1
        if issued:
            # pass non-ready ops that precede the last issued op
            last_issued = max(i for i, ok in enumerate(issued_mask) if ok)
            passable = {id(window[i]) for i in range(last_issued) if not issued_mask[i]}
        else:
            # no ready op in the window: advance it wholesale
            passable = {id(op) for op in window}
        # rebuild the queue prefix: issued ops leave, passable ops move to
        # the next queue while order allows, the rest stay put
        for _ in window:
            queue.popleft()
        kept: List[InFlightOp] = []
        passed: List[InFlightOp] = []
        blocked = False
        for i, op in enumerate(window):
            if issued_mask[i]:
                continue  # left through an issue read port
            can_pass = (
                not blocked
                and id(op) in passable
                and len(next_queue) + len(passed) < next_cap
                and len(passed) < self.window
            )
            if can_pass:
                passed.append(op)
            else:
                kept.append(op)
                # once an op stays, younger ops must stay too, or a younger
                # op would reach a downstream queue ahead of an older one
                blocked = True
        for op in reversed(kept):
            queue.appendleft(op)
        for op in passed:
            op.iq_index = qi + 1
            next_queue.append(op)
            self.trace_steer(op, f"pass->q{qi + 1}")
            self.passes += 1
            self.energy["iq_write"] += 1  # physical copy to the next queue
        return issued

    def on_wakeup(self, preg: int, cycle: int) -> None:
        # every queue head window observes readiness
        self.energy["wakeup_cam"] += self.window * len(self.queues)

    # ------------------------------------------------------------------
    def flush_from(self, seq: int) -> None:
        for queue in self.queues:
            while queue and queue[-1].seq >= seq:
                queue.pop()

    def check_invariants(self) -> None:
        # walking oldest (last) queue -> youngest: every queue is FIFO in
        # program order AND strictly younger than everything downstream,
        # or the pass logic let a younger op overtake an older one
        newest_downstream = -1
        for qi in range(len(self.queues) - 1, -1, -1):
            seqs = [op.seq for op in self.queues[qi]]
            assert len(seqs) <= self.queue_sizes[qi], f"queue {qi} overflow"
            assert seqs == sorted(seqs), (
                f"queue {qi} out of program order: {seqs}"
            )
            for op in self.queues[qi]:
                assert op.iq_index == qi, (
                    f"op {op.seq} records queue {op.iq_index}, lives in {qi}"
                )
            if seqs:
                assert seqs[0] > newest_downstream, (
                    f"queue {qi} holds op {seqs[0]} older than op "
                    f"{newest_downstream} already passed downstream"
                )
                newest_downstream = seqs[-1]

    def occupancy(self) -> int:
        return sum(len(q) for q in self.queues)

    def queue_occupancy(self) -> Dict[str, int]:
        return {f"q{i}": len(q) for i, q in enumerate(self.queues)}

    def extra_stats(self) -> Dict[str, float]:
        stats = {f"issued_q{i}": n for i, n in enumerate(self.issued_from)}
        stats["passes"] = self.passes
        return stats
