"""CES: complexity-effective superscalar clustered P-IQs [Palacharla'97].

Dispatch steers each micro-op along its register dependence chain into one
of several parallel in-order FIFOs (P-IQs); only the FIFO heads are examined
for issue.  The steering heuristic follows the paper (§II-B1):

1. no producer waiting in a P-IQ (ready, or producers already executing)
   -> allocate a new (empty) P-IQ;
2. producer at the tail of a P-IQ with space -> steer behind it;
3. producer not at the tail (chain split), or target P-IQ full
   -> allocate a new P-IQ;
4. no empty P-IQ -> dispatch stalls.

The ``mda_steering`` option adds the paper's M-dependence-aware steering
(§III-B): a load whose store-set producer was steered to P-IQ *k* goes to
*k* (right behind the store) instead of allocating a fresh queue.

Steering-outcome counters reproduce Figure 4's breakdown.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..core.ifop import InFlightOp
from .base import SchedulerBase
from .steering import SteerDecision, SteerInfo, SteeringScoreboard


class CESScheduler(SchedulerBase):
    """Clustered in-order P-IQs with dependence steering."""

    kind = "ces"

    def __init__(self, core, num_piqs: int = 8, piq_size: int = 12,
                 mda_steering: bool = False):
        super().__init__(core)
        self.num_piqs = num_piqs
        self.piq_size = piq_size
        self.mda = mda_steering
        self.piqs: List[Deque[InFlightOp]] = [deque() for _ in range(num_piqs)]
        self.steer = SteeringScoreboard()
        self._pending: Optional[SteerDecision] = None
        self._pending_seq = -1
        # Figure 4 steering-outcome counters
        self.outcomes: Dict[str, int] = {
            "steer_dc": 0, "steer_mda": 0,
            "alloc_ready": 0, "alloc_nonready": 0,
            "stall_ready": 0, "stall_nonready": 0,
        }
        # Figure 6a head-state counters (cycles x P-IQs)
        self.head_states: Dict[str, int] = {
            "issue": 0, "wait_mdep": 0, "wait_operand": 0,
            "port_conflict": 0, "empty": 0,
        }

    # ------------------------------------------------------------------
    # steering
    # ------------------------------------------------------------------
    def _decide(self, ifop: InFlightOp, cycle: int) -> SteerDecision:
        ready = self.core.op_ready(ifop, cycle)
        self.energy["pscb_read"] += max(1, len(ifop.src_pregs))
        # M-dependence override for loads (steer behind the producer store)
        if self.mda and ifop.is_load and self.core.mdp is not None:
            hint = self.core.mdp.steering_hint(ifop.op.pc)
            if hint is not None and hint.iq_index is not None:
                queue = self.piqs[hint.iq_index]
                if queue and len(queue) < self.piq_size and queue[-1].seq == hint.store_seq:
                    return SteerDecision(
                        target=hint.iq_index, partition=0, outcome="mda",
                        ready=ready,
                    )
        # R-dependence: follow the first source whose producer waits at a tail
        for preg in ifop.src_pregs:
            info = self.steer.get(preg)
            if info is None or info.reserved:
                continue
            if len(self.piqs[info.iq]) < self.piq_size:
                return SteerDecision(
                    target=info.iq, partition=0, outcome="dc",
                    followed_preg=preg, ready=ready,
                )
            break  # producer's queue is full: fall through to allocation
        for index, queue in enumerate(self.piqs):
            if not queue:
                return SteerDecision(target=index, partition=0, outcome="alloc",
                                     ready=ready)
        return SteerDecision(target=None, partition=0, outcome="stall",
                             ready=ready)

    def _count_outcome(self, decision: SteerDecision) -> None:
        suffix = "ready" if decision.ready else "nonready"
        if decision.outcome == "dc":
            self.outcomes["steer_dc"] += 1
        elif decision.outcome == "mda":
            self.outcomes["steer_mda"] += 1
        elif decision.outcome in ("alloc", "share"):
            self.outcomes[f"alloc_{suffix}"] += 1
        else:
            self.outcomes[f"stall_{suffix}"] += 1
        if self.metrics is not None:
            self.metrics.count(f"sched.steer.{decision.outcome}_{suffix}")

    def can_accept(self, ifop: InFlightOp) -> bool:
        decision = self._decide(ifop, self.core.cycle)
        self._count_outcome(decision)
        self._pending = decision
        self._pending_seq = ifop.seq
        self.energy["steer"] += 1
        return decision.target is not None

    def insert(self, ifop: InFlightOp, cycle: int) -> None:
        decision = self._pending
        if decision is None or self._pending_seq != ifop.seq:
            decision = self._decide(ifop, cycle)  # defensive re-decide
        self._pending = None
        self._apply_steer(ifop, decision)

    def _apply_steer(self, ifop: InFlightOp, decision: SteerDecision) -> None:
        target = decision.target
        queue = self.piqs[target]
        queue.append(ifop)
        ifop.iq_index = target
        self.trace_steer(ifop, f"{decision.outcome}->piq{target}")
        self.energy["iq_write"] += 1
        if decision.followed_preg is not None:
            self.steer.reserve(decision.followed_preg, ifop.seq)
        if decision.outcome == "mda" and self.core.mdp is not None:
            # attribute the reservation to this load so a squash of the
            # load alone releases it (see StoreSetPredictor.flush_from)
            self.core.mdp.reserve_steering(ifop.op.pc, ifop.seq)
        if ifop.dest_preg is not None:
            self.steer.set(
                ifop.dest_preg,
                SteerInfo(iq=target, partition=0, owner_seq=ifop.seq),
            )
            self.energy["pscb_write"] += 1
        if self.mda and ifop.is_store and self.core.mdp is not None:
            self.core.mdp.record_store_steering(ifop.op.pc, ifop.seq, target)

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------
    def select(self, cycle: int) -> List[InFlightOp]:
        core = self.core
        issued: List[InFlightOp] = []
        for queue in self.piqs:
            if not queue:
                self.head_states["empty"] += 1
                continue
            head = queue[0]
            self.energy["select_input"] += 1
            if not core.srcs_ready(head, cycle):
                self.head_states["wait_operand"] += 1
                continue
            if not core.mdp_dep_satisfied(head):
                self.head_states["wait_mdep"] += 1
                continue
            if not core.try_grant(head, cycle):
                self.head_states["port_conflict"] += 1
                continue
            queue.popleft()
            self.steer.clear(head.dest_preg)
            self.energy["iq_read"] += 1
            self.head_states["issue"] += 1
            issued.append(head)
        return issued

    def on_wakeup(self, preg: int, cycle: int) -> None:
        # only P-IQ heads observe completions (no CAM broadcast)
        self.energy["wakeup_cam"] += self.num_piqs

    # ------------------------------------------------------------------
    def flush_from(self, seq: int) -> None:
        for queue in self.piqs:
            while queue and queue[-1].seq >= seq:
                queue.pop()
        self.steer.flush_from(seq)

    def check_invariants(self) -> None:
        for index, queue in enumerate(self.piqs):
            assert len(queue) <= self.piq_size, f"P-IQ {index} overflow"
            seqs = [op.seq for op in queue]
            assert seqs == sorted(seqs), (
                f"P-IQ {index} out of program order: {seqs}"
            )
            for op in queue:
                assert op.iq_index == index, (
                    f"op {op.seq} records P-IQ {op.iq_index}, lives in {index}"
                )

    def occupancy(self) -> int:
        return sum(len(q) for q in self.piqs)

    def queue_occupancy(self) -> Dict[str, int]:
        return {f"piq{i}": len(q) for i, q in enumerate(self.piqs)}

    def extra_stats(self) -> Dict[str, float]:
        stats: Dict[str, float] = dict(self.outcomes)
        stats.update({f"head_{k}": v for k, v in self.head_states.items()})
        return stats
