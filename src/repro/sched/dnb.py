"""DNB: Delay-and-Bypass scheduling [Alipour+ HPCA'20] — extension design.

The paper's related-work section (§VII) singles out DNB as the closest
hybrid scheme: classify instructions at dispatch by *readiness* and
*criticality*, then

* ready-at-dispatch ops enter an in-order **bypass** queue (cheap, issues
  immediately from a head window, like Ballerino's S-IQ);
* non-ready, *critical* ops get the small out-of-order IQ — they are the
  ones that profit from aggressive wakeup/select;
* non-ready, non-critical ops are parked in in-order **delay** queues
  steered along register dependences (CES-style), issuing only from the
  heads.

Criticality heuristic (as in the DNB paper's spirit): memory ops and
branches are critical, as is any op whose destination feeds one within the
rename group — here approximated by opcode class plus load-taint (the
``LdC`` classification the pipeline already computes).

This is not part of Ballerino; it is included so the library covers the
hybrid-scheduling design point the paper compares against conceptually.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from ..core.ifop import InFlightOp
from ..isa.opcodes import OpClass
from .base import SchedulerBase
from .ooo import OutOfOrderScheduler
from .steering import SteerInfo, SteeringScoreboard

_CRITICAL_CLASSES = frozenset(
    {OpClass.LOAD, OpClass.STORE, OpClass.BRANCH, OpClass.INT_DIV,
     OpClass.FP_DIV}
)


class DNBScheduler(SchedulerBase):
    """Delay-and-Bypass: bypass FIFO + small OoO IQ + delay FIFOs."""

    kind = "dnb"

    def __init__(self, core, iq_size: int = 24, num_delay_queues: int = 4,
                 delay_queue_size: int = 12, bypass_size: int = 12,
                 bypass_window: int = 4):
        super().__init__(core)
        self.ooo = OutOfOrderScheduler(core, iq_size=iq_size)
        self.bypass: Deque[InFlightOp] = deque()
        self.bypass_size = bypass_size
        self.bypass_window = bypass_window
        self.delay: List[Deque[InFlightOp]] = [
            deque() for _ in range(num_delay_queues)
        ]
        self.delay_queue_size = delay_queue_size
        self.steer = SteeringScoreboard()
        self.issued_bypass = 0
        self.issued_ooo = 0
        self.issued_delay = 0
        # routing decided in can_accept, applied in insert (the pipeline
        # calls them back to back; caching keeps them consistent even if
        # op state, e.g. an MDP dependence, changes in between)
        self._pending_route = None
        self._pending_seq = -1

    # ------------------------------------------------------------------
    def _critical(self, ifop: InFlightOp) -> bool:
        return (
            ifop.opcode.op_class in _CRITICAL_CLASSES
            or ifop.klass == "LdC"  # feeds/is fed by an outstanding load
        )

    def _delay_target(self, ifop: InFlightOp):
        """CES-style steering into the delay queues; None = no room."""
        for preg in ifop.src_pregs:
            info = self.steer.get(preg)
            if info is not None and not info.reserved:
                if len(self.delay[info.iq]) < self.delay_queue_size:
                    return info.iq, preg
                break
        for index, queue in enumerate(self.delay):
            if not queue:
                return index, None
        return None

    def _route(self, ifop: InFlightOp):
        """Pick ('bypass'|'delay'|'ooo', detail) or None if nothing fits."""
        if self.core.op_ready(ifop, self.core.cycle):
            if len(self.bypass) < self.bypass_size:
                return ("bypass", None)
            return None
        if not self._critical(ifop):
            target = self._delay_target(ifop)
            if target is not None:
                return ("delay", target)
        if self.ooo.can_accept(ifop):
            return ("ooo", None)
        return None

    def can_accept(self, ifop: InFlightOp) -> bool:
        route = self._route(ifop)
        self._pending_route = route
        self._pending_seq = ifop.seq
        return route is not None

    def insert(self, ifop: InFlightOp, cycle: int) -> None:
        route = self._pending_route
        if route is None or self._pending_seq != ifop.seq:
            route = self._route(ifop)  # defensive re-route
        self._pending_route = None
        kind, detail = route
        if kind == "bypass":
            self.bypass.append(ifop)
            ifop.sched_tag = "bypass"
            self.energy["iq_write"] += 1
        elif kind == "delay":
            index, followed = detail
            self.delay[index].append(ifop)
            ifop.iq_index = index
            ifop.sched_tag = "delay"
            self.energy["iq_write"] += 1
            self.energy["steer"] += 1
            if followed is not None:
                self.steer.reserve(followed, ifop.seq)
            if ifop.dest_preg is not None:
                self.steer.set(
                    ifop.dest_preg, SteerInfo(iq=index, owner_seq=ifop.seq)
                )
        else:
            self.ooo.insert(ifop, cycle)
            ifop.sched_tag = "ooo"

    # ------------------------------------------------------------------
    def select(self, cycle: int) -> List[InFlightOp]:
        issued: List[InFlightOp] = []
        core = self.core
        # delay-queue heads first (they are the oldest parked work)
        for queue in self.delay:
            if not queue:
                continue
            head = queue[0]
            self.energy["select_input"] += 1
            if core.op_ready(head, cycle) and core.try_grant(head, cycle):
                queue.popleft()
                self.steer.clear(head.dest_preg)
                self.energy["iq_read"] += 1
                self.issued_delay += 1
                issued.append(head)
        # the small out-of-order IQ
        ooo_issued = self.ooo.select(cycle)
        self.issued_ooo += len(ooo_issued)
        issued.extend(ooo_issued)
        # bypass window last (youngest, lowest priority)
        examined = 0
        while self.bypass and examined < self.bypass_window:
            head = self.bypass[0]
            examined += 1
            self.energy["select_input"] += 1
            if not core.op_ready(head, cycle):
                break  # "ready at dispatch" can regress only via a squash
            if not core.try_grant(head, cycle):
                break
            self.bypass.popleft()
            self.energy["iq_read"] += 1
            self.issued_bypass += 1
            issued.append(head)
        return issued

    def on_wakeup(self, preg: int, cycle: int) -> None:
        self.ooo.on_wakeup(preg, cycle)
        self.energy["wakeup_cam"] += len(self.delay) + self.bypass_window

    def on_op_ready(self, ifop: InFlightOp, cycle: int) -> None:
        # bypass/delay queues are head-polled; the small OoO IQ keeps an
        # incremental ready-set (non-resident ops are ignored there)
        self.ooo.on_op_ready(ifop, cycle)

    # ------------------------------------------------------------------
    def flush_from(self, seq: int) -> None:
        while self.bypass and self.bypass[-1].seq >= seq:
            self.bypass.pop()
        for queue in self.delay:
            while queue and queue[-1].seq >= seq:
                queue.pop()
        self.ooo.flush_from(seq)
        self.steer.flush_from(seq)

    def check_invariants(self) -> None:
        assert len(self.bypass) <= self.bypass_size, "bypass queue overflow"
        seqs = [op.seq for op in self.bypass]
        assert seqs == sorted(seqs), f"bypass out of program order: {seqs}"
        for index, queue in enumerate(self.delay):
            assert len(queue) <= self.delay_queue_size, (
                f"delay queue {index} overflow"
            )
            qseqs = [op.seq for op in queue]
            assert qseqs == sorted(qseqs), (
                f"delay queue {index} out of program order: {qseqs}"
            )
            for op in queue:
                assert op.iq_index == index, (
                    f"op {op.seq} records delay queue {op.iq_index}, "
                    f"lives in {index}"
                )
        self.ooo.check_invariants()

    def occupancy(self) -> int:
        return (
            len(self.bypass)
            + sum(len(q) for q in self.delay)
            + self.ooo.occupancy()
        )

    def queue_occupancy(self) -> Dict[str, int]:
        out = {"bypass": len(self.bypass)}
        for index, queue in enumerate(self.delay):
            out[f"delay{index}"] = len(queue)
        out["ooo"] = self.ooo.occupancy()
        return out

    def extra_stats(self) -> Dict[str, float]:
        return {
            "issued_bypass": self.issued_bypass,
            "issued_ooo": self.issued_ooo,
            "issued_delay": self.issued_delay,
        }
