"""FXA: front-end execution architecture [Shioya+ MICRO'14].

An in-order execution unit (IXU) sits in front of a conventional — but
half-sized — out-of-order back end.  Dispatched micro-ops flow through the
IXU pipeline; a 1-cycle integer op whose operands are available by its IXU
stage executes there (consuming no IQ entry and no back-end issue port).
Everything else — loads, stores, FP, long-latency ops, and ops whose
operands did not arrive in time — drops into the back-end out-of-order IQ.

Modelling notes: the IXU is a FIFO of ``depth`` stages; an op spends one
cycle per stage and is tested for readiness at each stage, so a value
produced by an older IXU op (1-cycle latency) is visible to a younger op
one stage behind it — the IXU's internal bypass network.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from ..core.ifop import InFlightOp
from ..isa.opcodes import OpClass
from .base import SchedulerBase
from .ooo import OutOfOrderScheduler

#: Op classes the IXU's simple ALUs can execute.
_IXU_CLASSES = frozenset({OpClass.INT_ALU, OpClass.BRANCH, OpClass.NOP})


class FXAScheduler(SchedulerBase):
    """In-order IXU filter + half-size out-of-order back end."""

    kind = "fxa"

    def __init__(self, core, iq_size: int = 48, ixu_depth: int = 3):
        super().__init__(core)
        self.ixu_depth = ixu_depth
        self.backend = OutOfOrderScheduler(core, iq_size=iq_size)
        #: (entered_cycle, ifop); ops leave after ``ixu_depth`` stages
        self._ixu: Deque[Tuple[int, InFlightOp]] = deque()
        self.ixu_executed = 0
        self.backend_issued = 0

    # ------------------------------------------------------------------
    def can_accept(self, ifop: InFlightOp) -> bool:
        # the IXU always accepts (it is a fixed pipeline); back-end pressure
        # surfaces when ops fall out of the IXU, which stalls the IXU flow
        return len(self._ixu) < self.ixu_depth * self.core.config.decode_width

    def insert(self, ifop: InFlightOp, cycle: int) -> None:
        self._ixu.append((cycle, ifop))
        ifop.sched_tag = "ixu"
        self.energy["iq_write"] += 1

    # ------------------------------------------------------------------
    def select(self, cycle: int) -> List[InFlightOp]:
        issued: List[InFlightOp] = []
        core = self.core
        # 1) IXU stage walk: execute eligible ready ops in order; ops that
        #    reach the last stage without executing drop to the back end
        still: Deque[Tuple[int, InFlightOp]] = deque()
        ixu_issues = 0
        while self._ixu:
            entered, op = self._ixu.popleft()
            eligible = op.opcode.op_class in _IXU_CLASSES
            self.energy["select_input"] += 1
            if (
                eligible
                and ixu_issues < core.config.decode_width
                and core.op_ready(op, cycle)
            ):
                # executes on an IXU ALU: no back-end port consumed
                core.ports.unassign(op.port)
                op.sched_tag = "ixu_exec"
                self.trace_steer(op, "ixu_exec")
                self.ixu_executed += 1
                ixu_issues += 1
                issued.append(op)
                continue
            if cycle - entered >= self.ixu_depth - 1:
                # fell out of the IXU: needs a back-end IQ entry
                if self.backend.can_accept(op):
                    self.backend.insert(op, cycle)
                    op.sched_tag = "backend"
                    self.trace_steer(op, "to_backend")
                else:
                    still.append((entered, op))  # back-end full: stall here
                    break
            else:
                still.append((entered, op))
        while self._ixu:
            still.append(self._ixu.popleft())
        self._ixu = still
        # 2) back-end out-of-order issue
        backend_issued = self.backend.select(cycle)
        self.backend_issued += len(backend_issued)
        issued.extend(backend_issued)
        return issued

    def on_wakeup(self, preg: int, cycle: int) -> None:
        self.backend.on_wakeup(preg, cycle)

    def on_op_ready(self, ifop: InFlightOp, cycle: int) -> None:
        # IXU ops are head-polled; only the back-end window tracks a
        # ready-set (it ignores ops not resident in its slots)
        self.backend.on_op_ready(ifop, cycle)

    # ------------------------------------------------------------------
    def flush_from(self, seq: int) -> None:
        self._ixu = deque(
            (entered, op) for entered, op in self._ixu if op.seq < seq
        )
        self.backend.flush_from(seq)

    def check_invariants(self) -> None:
        seqs = [op.seq for _, op in self._ixu]
        assert seqs == sorted(seqs), f"IXU out of program order: {seqs}"
        assert (
            len(self._ixu) <= self.ixu_depth * self.core.config.decode_width
        ), "IXU overflow"
        self.backend.check_invariants()

    def occupancy(self) -> int:
        return len(self._ixu) + self.backend.occupancy()

    def queue_occupancy(self) -> Dict[str, int]:
        return {"ixu": len(self._ixu), "backend": self.backend.occupancy()}

    def extra_stats(self) -> Dict[str, float]:
        return {
            "ixu_executed": self.ixu_executed,
            "backend_issued": self.backend_issued,
        }
