"""Stall-on-use in-order scheduler (the InO baseline).

A single FIFO window issued strictly from the head: each cycle consecutive
ready head ops issue (up to the machine width via port arbitration); the
first non-ready op stalls everything behind it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from ..core.ifop import InFlightOp
from .base import SchedulerBase


class InOrderScheduler(SchedulerBase):
    """In-order issue from a single FIFO IQ."""

    kind = "inorder"

    def __init__(self, core, iq_size: int = 96):
        super().__init__(core)
        self.iq_size = iq_size
        self._queue: Deque[InFlightOp] = deque()

    def can_accept(self, ifop: InFlightOp) -> bool:
        return len(self._queue) < self.iq_size

    def insert(self, ifop: InFlightOp, cycle: int) -> None:
        self._queue.append(ifop)
        self.energy["iq_write"] += 1

    def select(self, cycle: int) -> List[InFlightOp]:
        issued: List[InFlightOp] = []
        core = self.core
        width = core.config.issue_width
        while self._queue and len(issued) < width:
            head = self._queue[0]
            self.energy["select_input"] += 1
            if not core.op_ready(head, cycle):
                break
            if not core.try_grant(head, cycle):
                break
            self._queue.popleft()
            self.energy["iq_read"] += 1
            issued.append(head)
        return issued

    def flush_from(self, seq: int) -> None:
        while self._queue and self._queue[-1].seq >= seq:
            self._queue.pop()

    def check_invariants(self) -> None:
        assert len(self._queue) <= self.iq_size, "in-order IQ overflow"
        seqs = [op.seq for op in self._queue]
        assert seqs == sorted(seqs), f"in-order IQ out of program order: {seqs}"

    def occupancy(self) -> int:
        return len(self._queue)
