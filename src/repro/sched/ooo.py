"""Baseline out-of-order issue queue (paper §II-A, Figure 2).

A unified random queue (no compaction): dispatched ops occupy free slots;
wakeup is a CAM broadcast over every entry; per-port prefix-sum select
grants the *uppermost* (lowest slot index) requesting entry.  The optional
``oldest_first`` variant models an age-matrix/compaction design by
prioritising by sequence number instead of slot position (Fig. 11's
"OoO w/ oldest-first selection" bars).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.ifop import InFlightOp
from .base import SchedulerBase


class OutOfOrderScheduler(SchedulerBase):
    """Unified CAM-based IQ with per-port prefix-sum selection."""

    kind = "ooo"

    def __init__(self, core, iq_size: int = 96, oldest_first: bool = False):
        super().__init__(core)
        self.iq_size = iq_size
        self.oldest_first = oldest_first
        self._slots: List[Optional[InFlightOp]] = [None] * iq_size
        self._free: List[int] = list(range(iq_size - 1, -1, -1))
        self._count = 0
        # Event-driven fast path: when the core provides a wakeup
        # scoreboard (the real pipeline), ready entries are tracked
        # incrementally and select never scans the whole window.  Unit
        # tests drive schedulers with stripped-down fake cores that
        # poll their own readiness — those keep the scanning path.
        self._event_driven = getattr(core, "wakeup", None) is not None
        # (op, generation) pairs: with recycled InFlightOp views a slot
        # residency check alone can alias a flushed-and-reinserted op,
        # so entries carry the op-table generation captured when the op
        # became ready (see repro.core.optable).
        self._ready_ops: List[Tuple[InFlightOp, int]] = []

    def can_accept(self, ifop: InFlightOp) -> bool:
        return self._count < self.iq_size

    def insert(self, ifop: InFlightOp, cycle: int) -> None:
        slot = self._free.pop()
        self._slots[slot] = ifop
        ifop.iq_index = slot
        self._count += 1
        self.energy["iq_write"] += 1
        if self._event_driven and self.core.op_ready(ifop, cycle):
            self._ready_ops.append((ifop, ifop.gen))

    def on_op_ready(self, ifop: InFlightOp, cycle: int) -> None:
        # only track ops currently resident in this window (the identity
        # check also rejects stale iq_index values left by other queues)
        index = ifop.iq_index
        if 0 <= index < self.iq_size and self._slots[index] is ifop:
            self._ready_ops.append((ifop, ifop.gen))

    def select(self, cycle: int) -> List[InFlightOp]:
        core = self.core
        if self._count == 0:
            return []
        # every occupied entry feeds the per-port prefix-sum circuits
        self.energy["select_input"] += self._count
        event_driven = self._event_driven
        if event_driven:
            # drop entries that issued, were flushed, or whose view was
            # recycled for a new op since they woke (generation check)
            slots = self._slots
            candidates = []
            for pair in self._ready_ops:
                op = pair[0]
                table = op._t
                index = table.iq_index[op._i]
                if slots[index] is op and table.gen[op._i] == pair[1]:
                    candidates.append(pair)
            # restore the prefix-sum examination order: slot position
            # (or age under oldest-first) — identical to a full scan
            candidates.sort(
                key=(lambda pair: pair[0]._t.seq[pair[0]._i])
                if self.oldest_first
                else (lambda pair: pair[0]._t.iq_index[pair[0]._i])
            )
        else:
            candidates = [
                (op, 0) for op in self._slots if op is not None
            ]
            if self.oldest_first:
                candidates.sort(key=lambda pair: pair[0].seq)
        issued: List[InFlightOp] = []
        leftover: List[Tuple[InFlightOp, int]] = []
        width = core.config.issue_width
        for position, pair in enumerate(candidates):
            op = pair[0]
            if len(issued) >= width:
                if event_driven:
                    leftover.extend(candidates[position:])
                break
            if not core.op_ready(op, cycle):
                continue
            if not core.try_grant(op, cycle):
                if event_driven:
                    leftover.append(pair)  # stays ready; retry next cycle
                continue
            self._remove(op)
            self.energy["iq_read"] += 1
            issued.append(op)
        if event_driven:
            self._ready_ops = leftover
        return issued

    def _remove(self, ifop: InFlightOp) -> None:
        slot = ifop.iq_index
        self._slots[slot] = None
        self._free.append(slot)
        self._count -= 1

    def on_wakeup(self, preg: int, cycle: int) -> None:
        # destination-tag broadcast: one CAM compare per window entry
        self.energy["wakeup_cam"] += self.iq_size

    def flush_from(self, seq: int) -> None:
        for slot, op in enumerate(self._slots):
            if op is not None and op.seq >= seq:
                self._slots[slot] = None
                self._free.append(slot)
                self._count -= 1

    def check_invariants(self) -> None:
        occupied = [s for s, op in enumerate(self._slots) if op is not None]
        assert len(occupied) == self._count, (
            f"slot count drifted: {len(occupied)} occupied, _count={self._count}"
        )
        assert len(set(self._free)) == len(self._free), "free-list duplicate"
        assert self._count + len(self._free) == self.iq_size, "free-list leak"
        for slot in occupied:
            assert self._slots[slot].iq_index == slot, (
                f"op {self._slots[slot].seq} records slot "
                f"{self._slots[slot].iq_index}, lives in {slot}"
            )

    def occupancy(self) -> int:
        return self._count

    def queue_occupancy(self) -> Dict[str, int]:
        return {"iq": self._count}
