"""Baseline out-of-order issue queue (paper §II-A, Figure 2).

A unified random queue (no compaction): dispatched ops occupy free slots;
wakeup is a CAM broadcast over every entry; per-port prefix-sum select
grants the *uppermost* (lowest slot index) requesting entry.  The optional
``oldest_first`` variant models an age-matrix/compaction design by
prioritising by sequence number instead of slot position (Fig. 11's
"OoO w/ oldest-first selection" bars).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.ifop import InFlightOp
from .base import SchedulerBase


class OutOfOrderScheduler(SchedulerBase):
    """Unified CAM-based IQ with per-port prefix-sum selection."""

    kind = "ooo"

    def __init__(self, core, iq_size: int = 96, oldest_first: bool = False):
        super().__init__(core)
        self.iq_size = iq_size
        self.oldest_first = oldest_first
        self._slots: List[Optional[InFlightOp]] = [None] * iq_size
        self._free: List[int] = list(range(iq_size - 1, -1, -1))
        self._count = 0

    def can_accept(self, ifop: InFlightOp) -> bool:
        return self._count < self.iq_size

    def insert(self, ifop: InFlightOp, cycle: int) -> None:
        slot = self._free.pop()
        self._slots[slot] = ifop
        ifop.iq_index = slot
        self._count += 1
        self.energy["iq_write"] += 1

    def select(self, cycle: int) -> List[InFlightOp]:
        core = self.core
        if self._count == 0:
            return []
        # every occupied entry feeds the per-port prefix-sum circuits
        self.energy["select_input"] += self._count
        candidates = [op for op in self._slots if op is not None]
        if self.oldest_first:
            candidates.sort(key=lambda op: op.seq)
        issued: List[InFlightOp] = []
        width = core.config.issue_width
        for op in candidates:
            if len(issued) >= width:
                break
            if not core.op_ready(op, cycle):
                continue
            if not core.try_grant(op, cycle):
                continue
            self._remove(op)
            self.energy["iq_read"] += 1
            issued.append(op)
        return issued

    def _remove(self, ifop: InFlightOp) -> None:
        slot = ifop.iq_index
        self._slots[slot] = None
        self._free.append(slot)
        self._count -= 1

    def on_wakeup(self, preg: int, cycle: int) -> None:
        # destination-tag broadcast: one CAM compare per window entry
        self.energy["wakeup_cam"] += self.iq_size

    def flush_from(self, seq: int) -> None:
        for slot, op in enumerate(self._slots):
            if op is not None and op.seq >= seq:
                self._slots[slot] = None
                self._free.append(slot)
                self._count -= 1

    def occupancy(self) -> int:
        return self._count
