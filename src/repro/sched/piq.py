"""Ballerino's shareable P-IQ (paper §IV-D, Figure 9).

A P-IQ is a circular FIFO with two operating modes:

* **normal** — one FIFO holding a single dependence chain;
* **sharing** — the queue is split into two equal partitions, each a
  distinct FIFO holding its own chain, with an extra head/tail pointer pair.

Implementation constraints from the paper (evaluated by the ``ideal`` knob):

1. at most two partitions;
2. a P-IQ is eligible for sharing only while its head and tail pointers sit
   in the same physical half of the queue — equivalently, at most half the
   entries are occupied by the resident chain and they are physically
   contiguous within one half (a FIFO's occupancy is always contiguous, so
   we model the constraint as *occupancy <= size/2*);
3. only one partition's head is examined per cycle (single read port); the
   active head stays after issuing (back-to-back single-cycle issue) and
   otherwise toggles to give the other chain a chance — the paper's
   head-selection policy.

With ``ideal=True`` constraints 2 and 3 are lifted (sharing is allowed at
any pointer position and both heads may issue in one cycle), matching the
"Step 3 w/o constraints" bars of Figure 13.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..core.ifop import InFlightOp


class SharedPIQ:
    """One P-IQ supporting normal and (two-partition) sharing modes."""

    def __init__(self, size: int, ideal: bool = False):
        self.size = size
        self.ideal = ideal
        self.partitions: List[Deque[InFlightOp]] = [deque()]
        self.active = 0  # partition whose head is examined this cycle
        self.share_activations = 0
        #: total resident entries, maintained incrementally.  Profiles
        #: showed the old sum-over-partitions ``occupancy()`` dominating
        #: ballerino's select phase (~86k calls per 3k-op sim between
        #: occupancy/empty/sharing probes), so the count is now updated
        #: at the three mutation points (append / pop_head / flush_from)
        #: and cross-checked by :meth:`debug_check`.
        self.count = 0
        #: plain attribute mirroring ``len(partitions) == 2`` — probed
        #: every cycle by every caller, so it is maintained at the two
        #: mode transitions instead of recomputed (debug_check verifies).
        self.sharing = False

    # ------------------------------------------------------------------
    # mode / capacity
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return self.count

    @property
    def empty(self) -> bool:
        return self.count == 0

    def partition_capacity(self) -> int:
        return self.size // 2 if self.sharing else self.size

    def has_space(self, partition: int) -> bool:
        if partition >= len(self.partitions):
            return False
        if self.sharing and not self.ideal:
            return len(self.partitions[partition]) < self.size // 2
        # normal mode — and ideal sharing, where the equal-halves
        # constraint is lifted but the queue's total capacity still
        # holds (ideal sharing may start with >size/2 entries resident,
        # so a per-partition half cap would both overflow the queue and
        # wedge the resident chain's partition)
        return self.count < self.size

    def shareable(self) -> bool:
        """Can the steer logic activate sharing mode on this queue?"""
        count = self.count
        if count == 0 or self.sharing:
            return False
        if self.ideal:
            return count < self.size  # any free entry suffices
        # head and tail within the same physical half <=> occupancy <= size/2
        return count <= self.size // 2

    def activate_sharing(self) -> int:
        """Split into two partitions; returns the new partition's index."""
        if not self.shareable():
            raise RuntimeError("P-IQ not eligible for sharing")
        self.partitions.append(deque())
        self.sharing = True
        self.share_activations += 1
        return 1

    def _maybe_collapse(self) -> Optional[Dict[int, int]]:
        """Drop back to normal mode once a partition drains.

        Returns the partition-index remap applied (``{1: 0}`` when the
        surviving chain moved from partition 1 to partition 0), or
        ``None`` when nothing changed.  Callers holding partition indices
        captured *before* the collapse — the steering scoreboard, LFST
        steering hints, and the select loop's issued-partition record —
        must translate them through this remap or they dangle.
        """
        if self.sharing:
            if not self.partitions[1]:
                self.partitions.pop()
                self.sharing = False
                self.active = 0
                return {1: 0}  # partition 1 ceased to exist
            if not self.partitions[0]:
                self.partitions[0] = self.partitions.pop()
                self.sharing = False
                self.active = 0
                for op in self.partitions[0]:
                    op.iq_partition = 0
                return {1: 0}
        return None

    # ------------------------------------------------------------------
    # FIFO operations
    # ------------------------------------------------------------------
    def append(self, ifop: InFlightOp, partition: int) -> None:
        if not self.has_space(partition):
            raise RuntimeError("P-IQ partition overflow")
        self.partitions[partition].append(ifop)
        self.count += 1

    def tail(self, partition: int) -> Optional[InFlightOp]:
        queue = self.partitions[partition] if partition < len(self.partitions) else None
        return queue[-1] if queue else None

    def active_heads(self) -> List[tuple]:
        """(partition, head-op) pairs examined for issue this cycle."""
        if not self.sharing:
            queue = self.partitions[0]
            return [(0, queue[0])] if queue else []
        if self.ideal:
            return [
                (index, queue[0])
                for index, queue in enumerate(self.partitions)
                if queue
            ]
        queue = self.partitions[self.active]
        if not queue:  # the active partition drained: examine the other
            other = 1 - self.active
            queue = self.partitions[other]
            return [(other, queue[0])] if queue else []
        return [(self.active, queue[0])]

    def pop_head(self, partition: int, collapse: bool = True) -> InFlightOp:
        """Issue the head of ``partition``.

        ``collapse=False`` defers the normal-mode collapse so that a caller
        iterating over ``active_heads()`` pairs (ideal mode examines both)
        keeps stable partition indices; it must call :meth:`collapse_idle`
        afterwards.
        """
        ifop = self.partitions[partition].popleft()
        self.count -= 1
        if collapse:
            self._maybe_collapse()
        return ifop

    def collapse_idle(self) -> Optional[Dict[int, int]]:
        """Public deferred-collapse hook (see :meth:`pop_head`).

        Returns the partition remap (see :meth:`_maybe_collapse`) so the
        caller can fix up any partition indices captured pre-collapse.
        """
        return self._maybe_collapse()

    def end_cycle(self, issued_partition: Optional[int]) -> None:
        """Head-pointer selection for the next cycle (paper §IV-D).

        Keep the current head after a successful issue (back-to-back);
        otherwise hand the single read port to the other chain.

        ``issued_partition`` must be a *current* partition index: a caller
        that popped heads before :meth:`collapse_idle` ran has to translate
        the index it recorded through the returned remap first, or
        ``active`` would be pointed at a partition that no longer holds
        the issued chain.
        """
        if not self.sharing or self.ideal:
            self.active = 0
            return
        if issued_partition is not None:
            if issued_partition >= len(self.partitions):
                raise RuntimeError(
                    f"end_cycle handed stale partition {issued_partition} "
                    f"(queue has {len(self.partitions)})"
                )
            self.active = issued_partition
        else:
            other = 1 - self.active
            if self.partitions[other]:
                self.active = other

    # ------------------------------------------------------------------
    def flush_from(self, seq: int) -> Optional[Dict[int, int]]:
        """Squash every entry with ``seq >=`` the flush point.

        Returns the partition remap if the flush drained a partition and
        collapsed the queue (same contract as :meth:`collapse_idle`).
        """
        for queue in self.partitions:
            while queue and queue[-1].seq >= seq:
                queue.pop()
                self.count -= 1
        return self._maybe_collapse()

    def debug_check(self) -> None:
        """Structural invariants (used by the verify subsystem).

        Raises ``AssertionError`` when the queue violates its own FIFO,
        capacity, or head-pointer contracts.
        """
        assert 1 <= len(self.partitions) <= 2, "partition count out of range"
        assert self.sharing == (len(self.partitions) == 2), (
            f"sharing flag drifted: sharing={self.sharing}, "
            f"{len(self.partitions)} partitions"
        )
        assert 0 <= self.active < len(self.partitions), (
            f"active partition {self.active} dangles "
            f"({len(self.partitions)} partitions)"
        )
        cap = self.partition_capacity() if not self.ideal else self.size
        for index, queue in enumerate(self.partitions):
            seqs = [op.seq for op in queue]
            assert seqs == sorted(seqs), (
                f"partition {index} out of program order: {seqs}"
            )
            if self.sharing and not self.ideal:
                assert len(queue) <= cap, (
                    f"partition {index} over capacity: {len(queue)} > {cap}"
                )
            for op in queue:
                assert op.iq_partition == index, (
                    f"op {op.seq} records partition {op.iq_partition}, "
                    f"lives in {index}"
                )
        assert self.count == sum(len(p) for p in self.partitions), (
            f"incremental count drifted: count={self.count}, "
            f"partitions hold {sum(len(p) for p in self.partitions)}"
        )
        assert self.count <= self.size, "P-IQ over total capacity"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = "/".join(str(len(p)) for p in self.partitions)
        return f"<PIQ {sizes} of {self.size}{' sharing' if self.sharing else ''}>"
