"""Ballerino's shareable P-IQ (paper §IV-D, Figure 9).

A P-IQ is a circular FIFO with two operating modes:

* **normal** — one FIFO holding a single dependence chain;
* **sharing** — the queue is split into two equal partitions, each a
  distinct FIFO holding its own chain, with an extra head/tail pointer pair.

Implementation constraints from the paper (evaluated by the ``ideal`` knob):

1. at most two partitions;
2. a P-IQ is eligible for sharing only while its head and tail pointers sit
   in the same physical half of the queue — equivalently, at most half the
   entries are occupied by the resident chain and they are physically
   contiguous within one half (a FIFO's occupancy is always contiguous, so
   we model the constraint as *occupancy <= size/2*);
3. only one partition's head is examined per cycle (single read port); the
   active head stays after issuing (back-to-back single-cycle issue) and
   otherwise toggles to give the other chain a chance — the paper's
   head-selection policy.

With ``ideal=True`` constraints 2 and 3 are lifted (sharing is allowed at
any pointer position and both heads may issue in one cycle), matching the
"Step 3 w/o constraints" bars of Figure 13.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..core.ifop import InFlightOp


class SharedPIQ:
    """One P-IQ supporting normal and (two-partition) sharing modes."""

    def __init__(self, size: int, ideal: bool = False):
        self.size = size
        self.ideal = ideal
        self.partitions: List[Deque[InFlightOp]] = [deque()]
        self.active = 0  # partition whose head is examined this cycle
        self.share_activations = 0

    # ------------------------------------------------------------------
    # mode / capacity
    # ------------------------------------------------------------------
    @property
    def sharing(self) -> bool:
        return len(self.partitions) == 2

    def occupancy(self) -> int:
        return sum(len(p) for p in self.partitions)

    @property
    def empty(self) -> bool:
        return self.occupancy() == 0

    def partition_capacity(self) -> int:
        return self.size // 2 if self.sharing else self.size

    def has_space(self, partition: int) -> bool:
        if partition >= len(self.partitions):
            return False
        if self.sharing:
            return len(self.partitions[partition]) < self.size // 2
        return self.occupancy() < self.size

    def shareable(self) -> bool:
        """Can the steer logic activate sharing mode on this queue?"""
        if self.sharing or self.empty:
            return False
        if self.ideal:
            return self.occupancy() < self.size  # any free entry suffices
        # head and tail within the same physical half <=> occupancy <= size/2
        return self.occupancy() <= self.size // 2

    def activate_sharing(self) -> int:
        """Split into two partitions; returns the new partition's index."""
        if not self.shareable():
            raise RuntimeError("P-IQ not eligible for sharing")
        self.partitions.append(deque())
        self.share_activations += 1
        return 1

    def _maybe_collapse(self) -> None:
        """Drop back to normal mode once a partition drains."""
        if self.sharing:
            if not self.partitions[1]:
                self.partitions.pop()
                self.active = 0
            elif not self.partitions[0]:
                self.partitions[0] = self.partitions.pop()
                self.active = 0

    # ------------------------------------------------------------------
    # FIFO operations
    # ------------------------------------------------------------------
    def append(self, ifop: InFlightOp, partition: int) -> None:
        if not self.has_space(partition):
            raise RuntimeError("P-IQ partition overflow")
        self.partitions[partition].append(ifop)

    def tail(self, partition: int) -> Optional[InFlightOp]:
        queue = self.partitions[partition] if partition < len(self.partitions) else None
        return queue[-1] if queue else None

    def active_heads(self) -> List[tuple]:
        """(partition, head-op) pairs examined for issue this cycle."""
        if not self.sharing:
            queue = self.partitions[0]
            return [(0, queue[0])] if queue else []
        if self.ideal:
            return [
                (index, queue[0])
                for index, queue in enumerate(self.partitions)
                if queue
            ]
        queue = self.partitions[self.active]
        if not queue:  # the active partition drained: examine the other
            other = 1 - self.active
            queue = self.partitions[other]
            return [(other, queue[0])] if queue else []
        return [(self.active, queue[0])]

    def pop_head(self, partition: int, collapse: bool = True) -> InFlightOp:
        """Issue the head of ``partition``.

        ``collapse=False`` defers the normal-mode collapse so that a caller
        iterating over ``active_heads()`` pairs (ideal mode examines both)
        keeps stable partition indices; it must call :meth:`collapse_idle`
        afterwards.
        """
        ifop = self.partitions[partition].popleft()
        if collapse:
            self._maybe_collapse()
        return ifop

    def collapse_idle(self) -> None:
        """Public deferred-collapse hook (see :meth:`pop_head`)."""
        self._maybe_collapse()

    def end_cycle(self, issued_partition: Optional[int]) -> None:
        """Head-pointer selection for the next cycle (paper §IV-D).

        Keep the current head after a successful issue (back-to-back);
        otherwise hand the single read port to the other chain.
        """
        if not self.sharing or self.ideal:
            self.active = 0
            return
        if issued_partition is not None:
            self.active = issued_partition
        else:
            other = 1 - self.active
            if self.partitions[other]:
                self.active = other

    # ------------------------------------------------------------------
    def flush_from(self, seq: int) -> None:
        for queue in self.partitions:
            while queue and queue[-1].seq >= seq:
                queue.pop()
        self._maybe_collapse()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = "/".join(str(len(p)) for p in self.partitions)
        return f"<PIQ {sizes} of {self.size}{' sharing' if self.sharing else ''}>"
