"""SPQ: load-delay-tracking systolic-priority-queue scheduler — extension.

The paper's related work (§VII) describes Diavastos & Carlson's design:
dispatched micro-ops are steered across parallel *systolic priority
queues*, each of which keeps its contents ordered by **predicted issue
time**; only queue heads are examined, so select stays as cheap as CES's,
but — unlike a FIFO P-IQ — a chain with a far-future ready time does not
block a near-future one steered to the same queue.

The issue-time prediction needs a *load delay tracker*: a per-load-PC
table of the last observed completion latency, consulted at dispatch to
estimate when each destination register will be ready.

Not part of Ballerino; included as a second related-work extension so the
library covers the priority-queue design point too.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from ..core.ifop import InFlightOp
from .base import SchedulerBase

#: Default delay guess for a never-seen load (optimistic L1 hit).
DEFAULT_LOAD_DELAY = 6


class LoadDelayTracker:
    """Per-PC table of recently observed load completion latencies."""

    def __init__(self, entries: int = 512):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._delays: Dict[int, int] = {}

    def predict(self, pc: int) -> int:
        return self._delays.get(pc & self._mask, DEFAULT_LOAD_DELAY)

    def record(self, pc: int, delay: int) -> None:
        self._delays[pc & self._mask] = delay


class SPQScheduler(SchedulerBase):
    """Parallel priority queues ordered by predicted issue time."""

    kind = "spq"

    def __init__(self, core, num_queues: int = 8, queue_size: int = 12):
        super().__init__(core)
        self.num_queues = num_queues
        self.queue_size = queue_size
        # each queue: list of (predicted_issue, seq, ifop), kept sorted
        self.queues: List[List[Tuple[int, int, InFlightOp]]] = [
            [] for _ in range(num_queues)
        ]
        self.tracker = LoadDelayTracker()
        #: preg -> predicted ready cycle (dispatch-time estimate)
        self._predicted_ready: Dict[int, int] = {}
        #: in-flight store seq -> predicted issue time (for MDP ordering)
        self._store_predicted: Dict[int, int] = {}
        self.issued_total = 0
        self.mispredicted_heads = 0

    # ------------------------------------------------------------------
    def can_accept(self, ifop: InFlightOp) -> bool:
        return any(len(q) < self.queue_size for q in self.queues)

    def insert(self, ifop: InFlightOp, cycle: int) -> None:
        # predict when the op can issue: operands' predicted ready times
        predicted = cycle + 1
        for preg in ifop.src_pregs:
            if self.core.ready.is_ready(preg, cycle):
                continue
            predicted = max(predicted, self._predicted_ready.get(preg, cycle + 1))
        # an MDP dependence must keep the consumer *behind* its producer
        # store in any queue, or a head-blocked priority inversion could
        # deadlock the pair — order by the store's predicted issue time
        dep = ifop.mdp_dep_seq
        if dep is not None and dep in self._store_predicted:
            predicted = max(predicted, self._store_predicted[dep] + 1)
        if ifop.is_store:
            self._store_predicted[ifop.seq] = predicted
        self.energy["pscb_read"] += max(1, len(ifop.src_pregs))
        # predicted completion feeds consumers' estimates
        latency = ifop.opcode.latency
        if ifop.is_load:
            latency += self.tracker.predict(ifop.op.pc)
        if ifop.dest_preg is not None:
            self._predicted_ready[ifop.dest_preg] = predicted + latency
            self.energy["pscb_write"] += 1
        # steer: least-occupied queue (opcode/balance steering)
        queue = min(self.queues, key=len)
        bisect.insort(queue, (predicted, ifop.seq, ifop))
        ifop.iq_index = self.queues.index(queue)
        self.energy["iq_write"] += 1
        self.energy["steer"] += 1

    # ------------------------------------------------------------------
    def select(self, cycle: int) -> List[InFlightOp]:
        issued: List[InFlightOp] = []
        core = self.core
        for queue in self.queues:
            if not queue:
                continue
            _, _, head = queue[0]
            self.energy["select_input"] += 1
            if not core.op_ready(head, cycle):
                self.mispredicted_heads += 1
                continue
            if not core.try_grant(head, cycle):
                continue
            queue.pop(0)
            if head.is_store:
                self._store_predicted.pop(head.seq, None)
            self.energy["iq_read"] += 1
            self.issued_total += 1
            issued.append(head)
        return issued

    def on_wakeup(self, preg: int, cycle: int) -> None:
        self.energy["wakeup_cam"] += self.num_queues
        self._predicted_ready.pop(preg, None)

    def on_complete(self, ifop: InFlightOp, cycle: int) -> None:
        """Train the load-delay tracker with the observed latency."""
        if ifop.is_load and ifop.issue_cycle >= 0:
            self.tracker.record(ifop.op.pc, cycle - ifop.issue_cycle)

    # ------------------------------------------------------------------
    def flush_from(self, seq: int) -> None:
        for index, queue in enumerate(self.queues):
            self.queues[index] = [
                entry for entry in queue if entry[1] < seq
            ]
        self._store_predicted = {
            s: t for s, t in self._store_predicted.items() if s < seq
        }
        # stale per-preg predictions are harmless (performance hints only)
        # and bounded by the physical register count.

    def check_invariants(self) -> None:
        for index, queue in enumerate(self.queues):
            assert len(queue) <= self.queue_size, f"SPQ {index} overflow"
            assert queue == sorted(queue), (
                f"SPQ {index} lost its predicted-issue ordering"
            )
            for _, seq, op in queue:
                assert op.seq == seq, f"SPQ {index}: key/op seq mismatch"
                assert op.iq_index == index, (
                    f"op {seq} records SPQ {op.iq_index}, lives in {index}"
                )

    def occupancy(self) -> int:
        return sum(len(q) for q in self.queues)

    def queue_occupancy(self) -> Dict[str, int]:
        return {f"q{i}": len(q) for i, q in enumerate(self.queues)}

    def extra_stats(self) -> Dict[str, float]:
        return {
            "issued_total": self.issued_total,
            "mispredicted_heads": self.mispredicted_heads,
        }
