"""Shared steering state for dependence-based schedulers (CES, Ballerino).

The :class:`SteeringScoreboard` is the producer-location half of the paper's
P-SCB (§IV-C): for each physical register whose producer currently waits in
a P-IQ, it records *which* P-IQ (and partition), and a Reserved bit that is
set once one consumer has been steered behind the producer — a second
consumer then sees Reserved and must start a new chain (chain split).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class SteerInfo:
    """Location of an un-issued producer inside the clustered P-IQs."""

    iq: int
    partition: int = 0
    reserved: bool = False
    owner_seq: int = -1  # producer's dynamic seq (for flush filtering)
    reserved_by: int = -1  # consumer seq holding the reservation


@dataclass
class SteerDecision:
    """Outcome of one steering attempt at the head of dispatch/S-IQ."""

    target: Optional[int]  # P-IQ index, or None on a steering stall
    partition: int
    outcome: str  # "dc" | "mda" | "alloc" | "share" | "stall"
    followed_preg: Optional[int] = None  # src whose producer we followed
    ready: bool = False  # was the op ready-at-dispatch?


class SteeringScoreboard:
    """preg -> :class:`SteerInfo` with flush support."""

    def __init__(self):
        self._map: Dict[int, SteerInfo] = {}

    def get(self, preg: int) -> Optional[SteerInfo]:
        return self._map.get(preg)

    def set(self, preg: int, info: SteerInfo) -> None:
        self._map[preg] = info

    def reserve(self, preg: int, by_seq: int = -1) -> None:
        info = self._map.get(preg)
        if info is not None:
            info.reserved = True
            info.reserved_by = by_seq

    def clear(self, preg: Optional[int]) -> None:
        if preg is not None:
            self._map.pop(preg, None)

    def flush_from(self, seq: int) -> None:
        """Drop every reference to a squashed op.

        Entries whose *producer* was squashed disappear; entries whose
        producer survives but whose *reserving consumer* was squashed get
        their Reserved bit released (otherwise the re-fetched consumer
        would be denied steering behind its own producer forever).
        """
        kept: Dict[int, SteerInfo] = {}
        for preg, info in self._map.items():
            if info.owner_seq >= seq:
                continue
            if info.reserved and info.reserved_by >= seq:
                info.reserved = False
                info.reserved_by = -1
            kept[preg] = info
        self._map = kept

    def remap_partition(self, iq: int, remap: Dict[int, int]) -> None:
        """A shared P-IQ collapsed: translate partition indices for ``iq``."""
        for info in self._map.values():
            if info.iq == iq:
                info.partition = remap.get(info.partition, info.partition)

    def items(self):
        """Live (preg, SteerInfo) pairs — for invariant checkers."""
        return self._map.items()

    def __len__(self) -> int:
        return len(self._map)
