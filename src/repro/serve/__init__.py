"""Simulation-as-a-service: the ``repro serve`` daemon and its parts.

Turns campaigns, fuzz runs and sweeps into *submitted jobs* instead of
foreground processes (ROADMAP item 3).  The subsystem wraps the
fault-tolerant :class:`~repro.analysis.runner.ExperimentRunner` in a
long-lived serving layer:

* :mod:`~repro.serve.protocol` — versioned JSON job/result schemas;
* :mod:`~repro.serve.queue` — durable journal-backed priority queue
  with per-tenant rate limiting and backpressure;
* :mod:`~repro.serve.pool` — worker threads driving ``run_many``;
* :mod:`~repro.serve.resequencer` — ordered result delivery;
* :mod:`~repro.serve.daemon` — the stdlib-HTTP REST API;
* :mod:`~repro.serve.client` — the ``repro submit`` / ``repro poll``
  client.

See docs/serving.md for the API reference and durability model.
"""

from .client import ServeClient, ServeError
from .daemon import ServeDaemon
from .pool import WorkerPool
from .protocol import (
    PROTOCOL_VERSION,
    PRIORITY_CLASSES,
    Cell,
    JobSpec,
    ProtocolError,
    parse_submit,
)
from .queue import (
    DurableJobQueue,
    QueueFull,
    QueueRejection,
    RateLimited,
    TokenBucket,
)
from .resequencer import Resequencer

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeDaemon",
    "WorkerPool",
    "PROTOCOL_VERSION",
    "PRIORITY_CLASSES",
    "Cell",
    "JobSpec",
    "ProtocolError",
    "parse_submit",
    "DurableJobQueue",
    "QueueFull",
    "QueueRejection",
    "RateLimited",
    "TokenBucket",
    "Resequencer",
]
