"""Thin stdlib HTTP client for the ``repro serve`` API.

Used by ``repro submit`` / ``repro poll`` and by tests; speaks exactly
the :mod:`repro.serve.protocol` schemas.  Server-side refusals
(structured 4xx bodies) surface as :class:`ServeError` carrying the
machine-readable ``code`` and the ``retry_after`` hint when present.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from .protocol import PROTOCOL_VERSION


class ServeError(RuntimeError):
    """A structured error response from the daemon."""

    def __init__(self, status: int, code: str, message: str,
                 retry_after: Optional[float] = None):
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


class ServeClient:
    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None) -> Dict:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
                error = body.get("error", {})
            except (ValueError, TypeError):
                error = {}
            raise ServeError(
                exc.code,
                error.get("code", "http-error"),
                error.get("message", str(exc)),
                retry_after=error.get("retry_after"),
            ) from None

    # ------------------------------------------------------------------
    def submit(
        self,
        cells: Optional[List[Dict]] = None,
        matrix: Optional[Dict] = None,
        priority: str = "batch",
        tenant: str = "default",
        idempotency_key: Optional[str] = None,
    ) -> Dict:
        """``POST /jobs``; returns the job-status body (with ``created``)."""
        payload: Dict[str, object] = {
            "version": PROTOCOL_VERSION,
            "priority": priority,
            "tenant": tenant,
        }
        if idempotency_key is not None:
            payload["idempotency_key"] = idempotency_key
        if cells is not None:
            payload["cells"] = cells
        if matrix is not None:
            payload["matrix"] = matrix
        return self._request("POST", "/jobs", payload)

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")

    def results(self, job_id: str, since: int = 0) -> Dict:
        return self._request("GET", f"/jobs/{job_id}/results?since={since}")

    def health(self) -> Dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict:
        return self._request("GET", "/metricsz")

    def shutdown(self) -> Dict:
        return self._request("POST", "/shutdownz", {})

    # ------------------------------------------------------------------
    def wait(self, job_id: str, timeout: float = 120.0,
             interval: float = 0.2) -> Dict:
        """Poll until the job is terminal; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["status"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after "
                    f"{timeout:g}s")
            time.sleep(interval)

    def stream_results(self, job_id: str, timeout: float = 120.0,
                       interval: float = 0.2) -> List[Dict]:
        """Fetch the complete ordered result stream, polling as it grows."""
        deadline = time.monotonic() + timeout
        entries: List[Dict] = []
        while True:
            page = self.results(job_id, since=len(entries))
            entries.extend(page["results"])
            if page["complete"]:
                return entries
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} results incomplete after {timeout:g}s")
            time.sleep(interval)
