"""Thin stdlib HTTP client for the ``repro serve`` API.

Used by ``repro submit`` / ``repro poll`` and by tests; speaks exactly
the :mod:`repro.serve.protocol` schemas.  Server-side refusals
(structured 4xx bodies) surface as :class:`ServeError` carrying the
machine-readable ``code`` and the ``retry_after`` hint when present.

Transient-failure handling is **off by default** (one shot, errors
surface immediately — the CLI's historical behaviour).  Constructing
with ``retries=N`` enables bounded retry with exponential backoff and
full jitter for failures that plausibly heal on their own: connection
refused/reset (a daemon restarting), request timeouts, and 429/503
backpressure responses — the latter honouring the server's
``retry_after`` hint when it exceeds the computed backoff.  Structured
4xx refusals (bad cells, unknown jobs, protocol mismatches) never
retry: the request is wrong, not unlucky.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from .protocol import PROTOCOL_VERSION

#: HTTP statuses worth retrying when retries are enabled: backpressure
#: (429 rate-limit / queue-full) and transient unavailability (503).
RETRYABLE_STATUSES = (429, 503)


class ServeError(RuntimeError):
    """A structured error response from the daemon."""

    def __init__(self, status: int, code: str, message: str,
                 retry_after: Optional[float] = None):
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


def _transient(exc: Exception) -> bool:
    """Connection-level failures that a retry can plausibly outlive."""
    if isinstance(exc, (ConnectionError, TimeoutError)):
        return True
    if isinstance(exc, urllib.error.URLError):
        return isinstance(exc.reason, (ConnectionError, TimeoutError,
                                       OSError))
    return False


class ServeClient:
    def __init__(self, base_url: str, timeout: float = 10.0,
                 retries: int = 0, backoff: float = 0.25):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        #: transparent retries performed (observability / tests)
        self.retries_performed = 0

    # ------------------------------------------------------------------
    def _delay(self, attempt: int) -> float:
        """Exponential backoff with full jitter (uncoordinated clients
        hammering a restarting daemon in lock-step is the failure mode
        jitter exists to break)."""
        base = self.backoff * (2 ** attempt)
        return base * (0.5 + random.random() / 2)

    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None) -> Dict:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServeError as exc:
                if (attempt >= self.retries
                        or exc.status not in RETRYABLE_STATUSES):
                    raise
                delay = self._delay(attempt)
                if exc.retry_after is not None:
                    delay = max(delay, float(exc.retry_after))
            except Exception as exc:  # noqa: BLE001 — filtered below
                if attempt >= self.retries or not _transient(exc):
                    raise
                delay = self._delay(attempt)
            attempt += 1
            self.retries_performed += 1
            time.sleep(delay)

    def _request_once(self, method: str, path: str,
                      payload: Optional[Dict] = None) -> Dict:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
                error = body.get("error", {})
            except (ValueError, TypeError):
                error = {}
            raise ServeError(
                exc.code,
                error.get("code", "http-error"),
                error.get("message", str(exc)),
                retry_after=error.get("retry_after"),
            ) from None

    # ------------------------------------------------------------------
    def submit(
        self,
        cells: Optional[List[Dict]] = None,
        matrix: Optional[Dict] = None,
        priority: str = "batch",
        tenant: str = "default",
        idempotency_key: Optional[str] = None,
        trace: Optional[Dict[str, str]] = None,
    ) -> Dict:
        """``POST /jobs``; returns the job-status body (with ``created``).

        ``trace`` is an optional span-correlation parent context
        (``{"trace_id": ..., "span_id": ...}``): the server nests the
        job's spans under it and echoes per-cell ids on the result
        stream.
        """
        payload: Dict[str, object] = {
            "version": PROTOCOL_VERSION,
            "priority": priority,
            "tenant": tenant,
        }
        if idempotency_key is not None:
            payload["idempotency_key"] = idempotency_key
        if trace is not None:
            payload["trace"] = dict(trace)
        if cells is not None:
            payload["cells"] = cells
        if matrix is not None:
            payload["matrix"] = matrix
        return self._request("POST", "/jobs", payload)

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")

    def results(self, job_id: str, since: int = 0) -> Dict:
        return self._request("GET", f"/jobs/{job_id}/results?since={since}")

    def health(self) -> Dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict:
        return self._request("GET", "/metricsz")

    def shutdown(self) -> Dict:
        return self._request("POST", "/shutdownz", {})

    # ------------------------------------------------------------------
    def wait(self, job_id: str, timeout: float = 120.0,
             interval: float = 0.2) -> Dict:
        """Poll until the job is terminal; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["status"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after "
                    f"{timeout:g}s")
            time.sleep(interval)

    def stream_results(self, job_id: str, timeout: float = 120.0,
                       interval: float = 0.2) -> List[Dict]:
        """Fetch the complete ordered result stream, polling as it grows."""
        deadline = time.monotonic() + timeout
        entries: List[Dict] = []
        while True:
            page = self.results(job_id, since=len(entries))
            entries.extend(page["results"])
            if page["complete"]:
                return entries
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} results incomplete after {timeout:g}s")
            time.sleep(interval)
