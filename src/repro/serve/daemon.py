"""The ``repro serve`` daemon: REST API over the queue + worker pool.

Endpoints (all JSON; see docs/serving.md for the full reference):

* ``POST /jobs`` — submit cells or a sweep matrix; 202 with the job
  id, 200 on an idempotency-key replay, 400 on malformed payloads,
  429 with a structured body on rate-limit / backpressure refusals.
* ``GET /jobs/<id>`` — job status.
* ``GET /jobs/<id>/results?since=N`` — the ordered result stream from
  sequence ``N`` (incremental polling: follow ``next`` until
  ``complete``).
* ``GET /healthz`` — liveness + version/protocol + queue counts +
  cache health (the runners' tolerated-corruption counter).
* ``GET /metricsz`` — the shared MetricsRegistry snapshot;
  ``?format=prometheus`` returns the same counters/gauges/histograms
  in Prometheus text exposition format (``text/plain; version=0.0.4``)
  for scraping.
* ``POST /shutdownz`` — graceful shutdown (also triggered by
  SIGTERM/SIGINT via the CLI): stop accepting, drain in-flight
  shards, requeue unfinished jobs, journal ``serve_stop``.

Built on stdlib ``ThreadingHTTPServer`` — one thread per connection,
which is plenty: requests only touch in-memory queue state; the heavy
lifting happens in the pool's worker threads.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from ..analysis.runner import ExperimentRunner
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.prometheus import render_prometheus
from ..telemetry.spans import SpanRecorder
from .pool import WorkerPool
from .protocol import PROTOCOL_VERSION, ProtocolError, parse_submit
from .queue import DurableJobQueue, QueueRejection, new_job_id


def _repro_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from .. import __version__

        return __version__


class ServeDaemon:
    """Owns the queue, the pool, the metrics registry and the HTTP server."""

    def __init__(
        self,
        queue_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        shard_size: int = 4,
        shard_jobs: int = 1,
        max_depth: int = 64,
        rate: float = 10.0,
        burst: float = 20,
        runner_factory: Optional[Callable[[], ExperimentRunner]] = None,
        runner_kwargs: Optional[Dict] = None,
        spans: bool = False,
    ):
        self.metrics = MetricsRegistry()
        self.queue = DurableJobQueue(
            queue_dir, max_depth=max_depth, rate=rate, burst=burst,
            metrics=self.metrics)
        # One daemon-owned span sink for all jobs; traced submits nest
        # job/shard/cell spans here under the client's parent context.
        self.spans: Optional[SpanRecorder] = None
        if spans:
            self.spans = SpanRecorder(os.path.join(queue_dir, "spans.jsonl"))
        if runner_factory is None:
            kwargs = dict(runner_kwargs or {})
            kwargs.setdefault("metrics", self.metrics)
            if self.spans is not None:
                kwargs.setdefault("spans", self.spans)
            runner_factory = lambda: ExperimentRunner(**kwargs)  # noqa: E731
        self.pool = WorkerPool(
            self.queue, runner_factory, workers=workers,
            shard_size=shard_size, shard_jobs=shard_jobs,
            metrics=self.metrics, spans=self.spans)
        self.workers = workers
        self._httpd = ThreadingHTTPServer((host, port), self._handler_class())
        self._http_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._started_t = time.monotonic()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.pool.start()
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http",
            daemon=True)
        self._http_thread.start()
        self.queue.log("serve_start", host=self.host, port=self.port,
                       workers=self.workers)

    def stop(self, drain: bool = True,
             timeout: Optional[float] = 30.0) -> Tuple[int, int]:
        """Graceful shutdown; returns ``(drained_shards, requeued_jobs)``."""
        if self._stopped.is_set():
            return (0, 0)
        self._httpd.shutdown()
        self._httpd.server_close()
        drained, requeued = self.pool.stop(drain=drain, timeout=timeout)
        self.queue.log("serve_stop", drained=drained, requeued=requeued)
        if self.spans is not None:
            self.spans.close()
        self.queue.close()
        self._stopped.set()
        return drained, requeued

    def request_stop(self) -> None:
        """Signal-handler-safe: trigger :meth:`stop` off-thread."""
        threading.Thread(target=self.stop, daemon=True).start()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon has stopped."""
        return self._stopped.wait(timeout)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return {
            "status": "ok",
            "version": _repro_version(),
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started_t, 3),
            "workers": self.workers,
            "jobs": self.queue.counts(),
            "rejections": self.queue.rejections,
            "replayed_jobs": self.queue.replayed_jobs,
            "cache_warnings": self.pool.cache_warnings,
            "quarantined_cells": self.pool.quarantined_cells,
            "cells_executed": self.pool.cells_executed,
        }

    def _submit(self, payload: Dict) -> Tuple[int, Dict]:
        spec = parse_submit(payload, job_id=new_job_id())
        state, created = self.queue.submit(spec)
        body = state.status_dict()
        body["created"] = created
        return (202 if created else 200), body

    def _handler_class(self):
        daemon = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # quiet by default
                pass

            def _reply(self, status: int, body: Dict) -> None:
                data = json.dumps(body, sort_keys=True).encode()
                self._reply_raw(status, data, "application/json")

            def _reply_raw(self, status: int, data: bytes,
                           content_type: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def _error(self, status: int, code: str, message: str,
                       **extra) -> None:
                self._reply(status,
                            {"error": {"code": code, "message": message,
                                       **extra}})

            # ----------------------------------------------------------
            def do_GET(self):
                path, _, query = self.path.partition("?")
                if path == "/healthz":
                    return self._reply(200, daemon.health())
                if path == "/metricsz":
                    snapshot = daemon.metrics.snapshot()
                    if "format=prometheus" in query.split("&"):
                        text = render_prometheus(snapshot)
                        return self._reply_raw(
                            200, text.encode(),
                            "text/plain; version=0.0.4; charset=utf-8")
                    return self._reply(200, snapshot)
                if path.startswith("/jobs/"):
                    parts = path.split("/")[2:]
                    job_id = parts[0] if parts else ""
                    state = daemon.queue.jobs.get(job_id)
                    if state is None:
                        return self._error(404, "unknown-job",
                                           f"no such job: {job_id}")
                    if len(parts) == 1:
                        return self._reply(200, state.status_dict())
                    if len(parts) == 2 and parts[1] == "results":
                        since = 0
                        for pair in query.split("&"):
                            if pair.startswith("since="):
                                try:
                                    since = max(0, int(pair[6:]))
                                except ValueError:
                                    return self._error(
                                        400, "bad-request",
                                        "since must be an integer")
                        entries, final = daemon.queue.results(job_id, since)
                        return self._reply(200, {
                            "job_id": job_id,
                            "status": state.status,
                            "results": entries,
                            "next": since + len(entries),
                            "complete": final,
                        })
                return self._error(404, "not-found",
                                   f"unknown path: {path}")

            def do_POST(self):
                path = self.path.partition("?")[0]
                if path == "/shutdownz":
                    self._reply(200, {"status": "stopping"})
                    daemon.request_stop()
                    return
                if path != "/jobs":
                    return self._error(404, "not-found",
                                       f"unknown path: {path}")
                try:
                    length = int(self.headers.get("Content-Length", 0))
                    payload = json.loads(self.rfile.read(length) or b"{}")
                except (ValueError, TypeError):
                    return self._error(400, "bad-request",
                                       "body must be valid JSON")
                try:
                    status, body = daemon._submit(payload)
                except ProtocolError as exc:
                    return self._error(400, exc.code, exc.message)
                except QueueRejection as exc:
                    return self._reply(429, {"error": exc.to_dict()})
                self._reply(status, body)

        return Handler
