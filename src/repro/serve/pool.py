"""Worker pool: drives queued jobs through ``ExperimentRunner.run_many``.

Each worker thread owns its own fault-tolerant
:class:`~repro.analysis.runner.ExperimentRunner` (built by the
injected factory), so the watchdog / retry / quarantine / atomic-cache
semantics of PR 4 carry over unchanged — the shared disk cache is the
merge point, exactly as in parallel campaigns.  A job's cells are
split into **shards** of ``shard_size`` cells; shards from different
jobs (and from the same job) execute concurrently across the workers,
so completions arrive out of order and each job's
:class:`~repro.serve.resequencer.Resequencer` restores submission
order before anything reaches the result stream.

Dispatch priority (per worker, every time it frees up):

1. a buffered **interactive** shard;
2. a newly queued **interactive** job (sharded on the spot) — this is
   what lets an interactive job overtake a backlog of batch shards;
3. a buffered **batch** shard;
4. a newly queued **batch** job.

Below the thread pool sits the **lock-step batching tier**: a shard's
cells typically share a (workload, seed) — only the config varies — so
the runner's serial path groups them and advances every config's
pipeline over the once-decoded trace in a single pass
(:mod:`repro.core.lockstep`).  Results are bit-identical to per-cell
execution; ``lockstep=False`` opts the pool out for A/B measurement.
Raising ``shard_size`` widens the groups (more configs amortise each
trace decode); shards still bound the unit of loss.

Gap repair: a shard lost to a crashing worker thread leaves holes in
its job's sequence space; the failing worker resubmits exactly the
missing cells as a repair shard (journaled as ``cell_repair``), up to
``repair_limit`` rounds before the job is marked failed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.runner import ExperimentRunner
from ..core.sampling import with_sampling
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.spans import (Span, SpanContext, SpanRecorder,
                               derive_span_id, derive_trace_id)
from .protocol import Cell, result_envelope
from .queue import DurableJobQueue, JobState
from .resequencer import Resequencer

#: Default cells per shard (the unit of dispatch and of loss).
DEFAULT_SHARD_SIZE = 4


@dataclass
class _JobRun:
    """Pool-side execution state for one dispatched job."""

    state: JobState
    resequencer: Resequencer
    failed_cells: int = 0
    repairs: int = 0
    #: shards handed to workers but not yet accounted (done or lost)
    outstanding: int = 0
    finished: bool = False
    #: open ``job`` span when the pool traces (see module docstring)
    job_span: Optional[Span] = None


@dataclass
class _Shard:
    """A contiguous-or-repair slice of one job's cells."""

    run: _JobRun
    seqs: List[int]
    cells: List[Cell] = field(default_factory=list)


class WorkerPool:
    """N worker threads pulling shards off the durable queue."""

    def __init__(
        self,
        queue: DurableJobQueue,
        runner_factory: Callable[[], ExperimentRunner],
        workers: int = 2,
        shard_size: int = DEFAULT_SHARD_SIZE,
        shard_jobs: int = 1,
        repair_limit: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        poll_interval: float = 0.2,
        lockstep: Optional[bool] = None,
        spans: Optional[SpanRecorder] = None,
    ):
        if shard_size <= 0:
            raise ValueError("shard_size must be positive")
        self.queue = queue
        self.runner_factory = runner_factory
        self.workers = max(0, workers)
        self.shard_size = shard_size
        self.shard_jobs = max(1, shard_jobs)
        self.repair_limit = repair_limit
        self.metrics = metrics
        self.poll_interval = poll_interval
        #: lock-step batching tier knob, passed through to run_many
        #: (None defers to the runner / $REPRO_LOCKSTEP)
        self.lockstep = lockstep
        #: span recorder shared by all workers (thread-safe); each
        #: dispatched job gets a ``job`` span (parented under the
        #: client's submitted trace context when the JobSpec carries
        #: one) and each shard a ``dispatch_shard`` child that cells
        #: nest under.  ``None`` (default) disables the whole plane.
        self.spans = spans
        self._lock = threading.Lock()
        self._shards: Dict[str, List[_Shard]] = {
            "interactive": [], "batch": []}
        self._active: Dict[str, _JobRun] = {}
        self._runners: List[ExperimentRunner] = []
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        #: dispatch log for tests/observability: (job_id, priority, seqs)
        self.dispatched: List[Tuple[str, str, List[int]]] = []
        self.shards_executed = 0
        self.cells_executed = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._stopping.clear()
        for index in range(self.workers):
            runner = self.runner_factory()
            self._runners.append(runner)
            thread = threading.Thread(
                target=self._worker_loop, args=(runner,),
                name=f"repro-serve-worker-{index}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def stop(self, drain: bool = True,
             timeout: Optional[float] = None) -> Tuple[int, int]:
        """Stop the pool; returns ``(drained_shards, requeued_jobs)``.

        ``drain=True`` lets each worker finish its in-flight shard
        (bounded by ``timeout``); jobs not fully complete are requeued
        at the front of their lane — the journal already guarantees the
        same outcome after a crash, this just does it politely.
        """
        self._stopping.set()
        for thread in self._threads:
            thread.join(timeout=timeout if drain else 0.1)
        drained = self.shards_executed
        requeued = 0
        with self._lock:
            leftovers = [run for run in self._active.values()
                         if not run.finished]
            self._shards = {"interactive": [], "batch": []}
            self._active = {}
        for run in leftovers:
            self.queue.requeue(run.state.spec.job_id, "shutdown")
            requeued += 1
        self._threads = []
        return drained, requeued

    @property
    def cache_warnings(self) -> int:
        """Tolerated cache corruptions across every worker's runner."""
        return sum(runner.cache_warnings for runner in self._runners)

    @property
    def quarantined_cells(self) -> int:
        return sum(len(runner.quarantined) for runner in self._runners)

    @property
    def lockstep_groups(self) -> int:
        """Lock-step groups executed across every worker's runner."""
        return sum(runner.lockstep_groups for runner in self._runners)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _shard_job(self, state: JobState) -> None:
        """Expand a freshly dispatched job into shards (caller holds lock)."""
        cells = state.spec.cells
        run = _JobRun(state=state, resequencer=Resequencer(len(cells)))
        if self.spans is not None:
            # deterministic job span id: a requeued/replayed job maps to
            # the same span, so the merged trace dedupes the re-dispatch
            parent = (SpanContext.from_dict(state.spec.trace)
                      if state.spec.trace else None)
            trace_id = (parent.trace_id if parent is not None
                        else derive_trace_id("job", state.spec.job_id))
            run.job_span = self.spans.start(
                "job", parent=parent, trace_id=trace_id,
                span_id=derive_span_id(trace_id, "job", state.spec.job_id),
                job_id=state.spec.job_id, tenant=state.spec.tenant,
                priority=state.spec.priority, cells=len(cells))
        self._active[state.spec.job_id] = run
        lane = state.spec.priority
        for start in range(0, len(cells), self.shard_size):
            seqs = list(range(start, min(start + self.shard_size, len(cells))))
            self._shards[lane].append(
                _Shard(run=run, seqs=seqs,
                       cells=[cells[seq] for seq in seqs]))

    def _next_shard(self) -> Optional[_Shard]:
        """The priority-ordered dispatch decision (see module docstring)."""
        with self._lock:
            if self._shards["interactive"]:
                return self._take("interactive")
        state = self.queue.next_job(classes=("interactive",), timeout=0)
        if state is not None:
            with self._lock:
                self._shard_job(state)
                return self._take("interactive")
        with self._lock:
            if self._shards["batch"]:
                return self._take("batch")
        state = self.queue.next_job(timeout=0)
        if state is not None:
            with self._lock:
                self._shard_job(state)
                return self._take(state.spec.priority)
        return None

    def _take(self, lane: str) -> _Shard:
        shard = self._shards[lane].pop(0)
        shard.run.outstanding += 1
        self.dispatched.append(
            (shard.run.state.spec.job_id, lane, list(shard.seqs)))
        if self.metrics is not None:
            self.metrics.count(f"serve.pool.dispatched.{lane}")
        return shard

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker_loop(self, runner: ExperimentRunner) -> None:
        while not self._stopping.is_set():
            shard = self._next_shard()
            if shard is None:
                self._stopping.wait(self.poll_interval)
                continue
            try:
                self._execute(runner, shard)
            except Exception as exc:  # a lost shard, not a lost worker
                self._shard_lost(shard, exc)

    def _execute(self, runner: ExperimentRunner, shard: _Shard) -> None:
        tasks = [cell.task(runner.seed) for cell in shard.cells]
        sampling = shard.run.state.spec.sampling
        if sampling is not None:
            # sampled tier: same cells, sampled configs — results carry
            # sampled=True and cache separately from the full tier
            tasks = [
                (workload, with_sampling(config, **sampling), seed)
                for workload, config, seed in tasks
            ]
        # Forward the lock-step knob only when explicitly set; otherwise
        # the runner's own default (REPRO_LOCKSTEP) governs.
        extra = {} if self.lockstep is None else {"lockstep": self.lockstep}
        run = shard.run
        shard_span = None
        cell_traces: Dict[int, Dict[str, str]] = {}
        if self.spans is not None and run.job_span is not None:
            shard_span = self.spans.start(
                "dispatch_shard", parent=run.job_span,
                job_id=run.state.spec.job_id, seqs=list(shard.seqs))
            extra["trace"] = shard_span.context
            trace_id = shard_span.trace_id
            for seq, task in zip(shard.seqs, tasks):
                key = runner.key_for(task[0], task[1], task[2])
                cell_traces[seq] = {
                    "trace_id": trace_id,
                    "span_id": derive_span_id(trace_id, "cell", key),
                    "parent_id": shard_span.span_id,
                }
        results = runner.run_many(tasks, jobs=self.shard_jobs, **extra)
        if shard_span is not None:
            self.spans.finish(shard_span)
        released: List[Tuple[int, Dict]] = []
        with self._lock:
            run.outstanding -= 1
            self.shards_executed += 1
            self.cells_executed += len(results)
            for seq, cell, result in zip(shard.seqs, shard.cells, results):
                if not result.ok:
                    run.failed_cells += 1
                released.extend(
                    run.resequencer.push(
                        seq, result_envelope(seq, cell, result,
                                             trace=cell_traces.get(seq))))
            complete = run.resequencer.complete and not run.finished
            if complete:
                run.finished = True
        job_id = run.state.spec.job_id
        self.queue.append_results(job_id, [payload for _, payload in released])
        if self.metrics is not None and released:
            self.metrics.count("serve.cells.completed", len(released))
        if complete:
            self.queue.mark_done(job_id, run.failed_cells)
            if self.spans is not None and run.job_span is not None:
                self.spans.finish(run.job_span,
                                  failed_cells=run.failed_cells)
            with self._lock:
                self._active.pop(job_id, None)

    def _shard_lost(self, shard: _Shard, exc: Exception) -> None:
        """A shard died in-thread: resubmit its missing cells or give up.

        ``run_many`` quarantines cell-level failures, so landing here
        means the harness itself broke (OOM, interpreter error).  The
        resequencer's gap view names exactly what was lost; a repair
        shard re-executes those cells — anything that did publish to
        the cache before the crash is a hit.
        """
        run = shard.run
        with self._lock:
            run.outstanding -= 1
            missing = [seq for seq in shard.seqs
                       if seq in run.resequencer.missing(
                           high_water=max(shard.seqs) + 1)]
            give_up = run.repairs >= self.repair_limit
            if not give_up:
                run.repairs += 1
                lane = run.state.spec.priority
                self._shards[lane].insert(
                    0, _Shard(run=run, seqs=missing,
                              cells=[run.state.spec.cells[s]
                                     for s in missing]))
        job_id = run.state.spec.job_id
        if give_up:
            self.queue.mark_failed(
                job_id,
                f"shard {missing} lost {run.repairs + 1} time(s): "
                f"{type(exc).__name__}: {exc}")
            if self.spans is not None and run.job_span is not None:
                self.spans.finish(run.job_span, status="error",
                                  error=f"{type(exc).__name__}: {exc}")
            with self._lock:
                run.finished = True
                self._active.pop(job_id, None)
        else:
            self.queue.log("cell_repair", job_id=job_id, seqs=missing)
            if self.metrics is not None:
                self.metrics.count("serve.pool.repairs")
