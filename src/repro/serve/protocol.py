"""Versioned wire schemas for the ``repro serve`` job API.

Everything that crosses the HTTP boundary (or the durable queue
journal) is defined here: the submit payload — a flat list of
``(workload, arch, width, seed)`` **cells** or a **sweep matrix** that
the server expands deterministically — plus the job-status and ordered
result-stream envelopes.  The schemas are versioned by
:data:`PROTOCOL_VERSION`; ``repro --version`` prints it and the daemon
echoes it on ``/healthz`` so clients can check compatibility before
submitting.

A submit payload looks like either of::

    {"version": 1, "priority": "interactive", "tenant": "alice",
     "idempotency_key": "nightly-42",
     "cells": [{"workload": "dotprod", "arch": "ooo", "width": 8,
                "seed": null}]}

    {"version": 1, "priority": "batch",
     "matrix": {"workloads": ["dotprod", "histogram"],
                "arches": ["ooo", "ballerino"],
                "widths": [8], "seeds": [null]}}

Matrix expansion order is fixed (workload-major, then arch, width,
seed) so a submitted sweep's result order is reproducible and equals a
serial :meth:`~repro.analysis.runner.ExperimentRunner.run_many` over
the same expansion.  ``priority`` selects one of the two queue lanes
(:data:`PRIORITY_CLASSES`); ``idempotency_key`` makes resubmission of
the same logical job (per tenant) return the original job id instead
of enqueueing a duplicate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.config import CoreConfig, config_for
from ..workloads.kernels import KERNELS

#: Version of the job/result wire schemas.  Bump on breaking changes;
#: the daemon rejects submits that pin a different version.
PROTOCOL_VERSION = 1

#: Queue lanes, in dispatch-priority order (first wins).
PRIORITY_CLASSES = ("interactive", "batch")

#: Default priority class for submits that do not name one.
DEFAULT_PRIORITY = "batch"

#: Default tenant for unauthenticated/anonymous clients.
DEFAULT_TENANT = "default"

#: Upper bound on cells per job — one job cannot monopolise the queue;
#: submit several jobs (they interleave fairly) for bigger sweeps.
MAX_CELLS_PER_JOB = 4096

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Keys a submit's ``sampling`` object may carry — the keyword
#: arguments of :func:`repro.core.sampling.with_sampling`.
SAMPLING_KEYS = ("period", "window", "warmup", "ff_width", "ff_warmup_ops")


class ProtocolError(ValueError):
    """A malformed or incompatible request payload.

    ``code`` is a stable machine-readable slug (``bad-request``,
    ``protocol-version``, ``unknown-workload``, ...) that travels in the
    structured HTTP error body.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Cell:
    """One (workload, arch, width, seed) simulation request.

    ``seed=None`` means "the server's default workload-data seed" — it
    stays ``None`` on the wire so the same job submitted to servers
    with different default seeds hits their respective caches.
    """

    workload: str
    arch: str
    width: int = 8
    seed: Optional[int] = None

    def to_dict(self) -> Dict:
        return {"workload": self.workload, "arch": self.arch,
                "width": self.width, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Dict) -> "Cell":
        if not isinstance(data, dict):
            raise ProtocolError("bad-cell", f"cell must be an object, got {data!r}")
        try:
            cell = cls(
                workload=data["workload"],
                arch=data["arch"],
                width=int(data.get("width", 8)),
                seed=(None if data.get("seed") is None else int(data["seed"])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError("bad-cell", f"malformed cell {data!r}: {exc}")
        cell.validate()
        return cell

    def validate(self) -> None:
        if self.workload not in KERNELS:
            raise ProtocolError(
                "unknown-workload", f"unknown workload: {self.workload!r}")
        try:
            self.config()
        except Exception:
            raise ProtocolError(
                "unknown-arch",
                f"unknown arch/width: {self.arch!r} @ {self.width}-wide")

    def config(self) -> CoreConfig:
        return config_for(self.arch, width=self.width)

    def task(self, default_seed: int) -> Tuple[str, CoreConfig, int]:
        """The runner task tuple this cell resolves to."""
        seed = self.seed if self.seed is not None else default_seed
        return (self.workload, self.config(), seed)


def expand_matrix(matrix: Dict) -> List[Cell]:
    """Expand a sweep matrix into its deterministic cell list.

    Order: workload-major, then arch, width, seed — documented on the
    wire schema and relied on by the byte-identity tests.
    """
    if not isinstance(matrix, dict):
        raise ProtocolError("bad-matrix", "matrix must be an object")
    unknown = set(matrix) - {"workloads", "arches", "widths", "seeds"}
    if unknown:
        raise ProtocolError("bad-matrix",
                            f"unknown matrix axes: {sorted(unknown)}")
    workloads = matrix.get("workloads") or []
    arches = matrix.get("arches") or []
    if not workloads or not arches:
        raise ProtocolError(
            "bad-matrix", "matrix needs non-empty workloads and arches")
    widths = matrix.get("widths") or [8]
    seeds = matrix.get("seeds") or [None]
    return [
        Cell.from_dict({"workload": w, "arch": a, "width": wd, "seed": s})
        for w, a, wd, s in itertools.product(workloads, arches, widths, seeds)
    ]


def _validate_trace(raw) -> Optional[Dict[str, str]]:
    """Validate an optional ``trace`` correlation object.

    ``{"trace_id": <hex>, "span_id": <hex>}`` names the client-side
    parent span a job's work should nest under (see
    :mod:`repro.telemetry.spans`).  Optional and additive — absent
    means untraced — so it rides on :data:`PROTOCOL_VERSION` 1 without
    a version bump; servers that predate it ignore unknown keys.
    """
    if raw is None:
        return None
    from ..telemetry.spans import SpanContext

    try:
        context = SpanContext.from_dict(raw)
    except ValueError as exc:
        raise ProtocolError("bad-trace", str(exc))
    return context.to_dict()


@dataclass
class JobSpec:
    """A validated, admitted job: what to run, for whom, how urgently."""

    job_id: str
    cells: List[Cell]
    priority: str = DEFAULT_PRIORITY
    tenant: str = DEFAULT_TENANT
    idempotency_key: Optional[str] = None
    #: ``with_sampling`` kwargs applied to every cell's config, or
    #: ``None`` for full-detail simulation (see :data:`SAMPLING_KEYS`).
    sampling: Optional[Dict[str, int]] = None
    #: optional span-trace parent context (``{"trace_id", "span_id"}``)
    #: propagated from the submitting client; ``None`` means untraced.
    trace: Optional[Dict[str, str]] = None

    def to_dict(self) -> Dict:
        return {
            "job_id": self.job_id,
            "priority": self.priority,
            "tenant": self.tenant,
            "idempotency_key": self.idempotency_key,
            "sampling": self.sampling,
            "trace": self.trace,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobSpec":
        return cls(
            job_id=data["job_id"],
            cells=[Cell.from_dict(c) for c in data["cells"]],
            priority=data.get("priority", DEFAULT_PRIORITY),
            tenant=data.get("tenant", DEFAULT_TENANT),
            idempotency_key=data.get("idempotency_key"),
            sampling=data.get("sampling"),
            trace=_validate_trace(data.get("trace")),
        )


def parse_submit(payload: Dict, job_id: str) -> JobSpec:
    """Validate a ``POST /jobs`` payload into a :class:`JobSpec`.

    Raises :class:`ProtocolError` (-> HTTP 400) on anything malformed;
    admission control (rate limits, backpressure) happens later, in the
    queue.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("bad-request", "submit payload must be an object")
    version = payload.get("version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "protocol-version",
            f"server speaks protocol {PROTOCOL_VERSION}, client sent "
            f"{version!r}")
    if ("cells" in payload) == ("matrix" in payload):
        raise ProtocolError(
            "bad-request", "submit exactly one of 'cells' or 'matrix'")
    if "cells" in payload:
        raw = payload["cells"]
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("bad-request", "'cells' must be a non-empty list")
        cells = [Cell.from_dict(c) for c in raw]
    else:
        cells = expand_matrix(payload["matrix"])
    if len(cells) > MAX_CELLS_PER_JOB:
        raise ProtocolError(
            "too-many-cells",
            f"job has {len(cells)} cells, limit is {MAX_CELLS_PER_JOB}")
    priority = payload.get("priority", DEFAULT_PRIORITY)
    if priority not in PRIORITY_CLASSES:
        raise ProtocolError(
            "bad-priority",
            f"priority must be one of {PRIORITY_CLASSES}, got {priority!r}")
    tenant = payload.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("bad-tenant", "tenant must be a non-empty string")
    idempotency_key = payload.get("idempotency_key")
    if idempotency_key is not None and not isinstance(idempotency_key, str):
        raise ProtocolError("bad-request", "idempotency_key must be a string")
    sampling = _parse_sampling(payload)
    trace = _validate_trace(payload.get("trace"))
    return JobSpec(job_id=job_id, cells=cells, priority=priority,
                   tenant=tenant, idempotency_key=idempotency_key,
                   sampling=sampling, trace=trace)


def _parse_sampling(payload: Dict) -> Optional[Dict[str, int]]:
    """Validate the optional sampled-simulation request.

    ``"sampled": true`` selects the sampled tier with default knobs;
    ``"sampling": {"period": ..., ...}`` (implies sampled) overrides
    them.  Returns the ``with_sampling`` kwargs, or ``None`` for a
    full-detail job.
    """
    sampled = payload.get("sampled", False)
    if not isinstance(sampled, bool):
        raise ProtocolError("bad-sampling", "'sampled' must be a boolean")
    raw = payload.get("sampling")
    if raw is None:
        return {} if sampled else None
    if not isinstance(raw, dict):
        raise ProtocolError("bad-sampling", "'sampling' must be an object")
    unknown = set(raw) - set(SAMPLING_KEYS)
    if unknown:
        raise ProtocolError(
            "bad-sampling",
            f"unknown sampling keys: {sorted(unknown)} "
            f"(allowed: {list(SAMPLING_KEYS)})")
    knobs: Dict[str, int] = {}
    for key, value in raw.items():
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                "bad-sampling", f"sampling.{key} must be an integer")
        if value < 0 or (value == 0 and key != "ff_warmup_ops"):
            raise ProtocolError(
                "bad-sampling", f"sampling.{key} must be positive, got {value}")
        knobs[key] = value
    return knobs


def result_envelope(seq: int, cell: Cell, result,
                    trace: Optional[Dict[str, str]] = None) -> Dict:
    """One entry of the ordered result stream.

    ``result`` is a :class:`~repro.core.stats.SimResult` or
    :class:`~repro.analysis.runner.FailedResult`; its ``to_dict`` payload
    is embedded verbatim so a fetched sweep is byte-identical to a
    local ``run_many`` of the same cells.  ``trace`` (optional,
    additive) carries the cell's span-correlation ids
    (``trace_id``/``span_id``/``parent_id``) back to the client so a
    fetched result links into the submitter's trace.
    """
    envelope = {
        "seq": seq,
        "cell": cell.to_dict(),
        "ok": bool(result.ok),
        "result": result.to_dict(),
    }
    if trace is not None:
        envelope["trace"] = dict(trace)
    return envelope
