"""Durable, crash-safe job queue with priority lanes and admission control.

The queue is the daemon's source of truth.  Every state transition is
appended to ``<root>/journal.jsonl`` through the same validated,
flushed-per-line :class:`~repro.telemetry.runlog.RunLog` writer the
campaign run-log uses, and recovery goes through the same
torn-tail-tolerant :func:`~repro.telemetry.runlog.read_run_log`: a
daemon killed mid-write loses at most the torn final line, and on
restart every job that was enqueued but never reached ``job_done`` /
``job_failed`` / ``job_cancelled`` is requeued in its original
submission order.  Replay is cheap because results live in the shared
``.bench_cache`` — a replayed job's already-simulated cells are cache
hits.

Completed jobs additionally persist their ordered result stream to
``<root>/results/<job_id>.json`` (written atomically), so ``GET
/jobs/<id>/results`` keeps working across daemon restarts.

Admission control, per Carroll & Lin's queuing-model framing: two
FIFO **lanes** (``interactive`` ahead of ``batch``) give the
interactive class strict dispatch priority; a per-tenant **token
bucket** bounds each tenant's sustained submit rate (refusals carry a
``retry_after`` hint); and a bounded total depth applies
**backpressure** — a full queue refuses new work with a structured
429-style rejection instead of queueing it silently.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..telemetry.metrics import MetricsRegistry
from ..telemetry.runlog import RunLog, read_run_log
from .protocol import JOB_STATES, PRIORITY_CLASSES, JobSpec

#: States in which a job will never run again.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Default cap on queued (not-yet-running) jobs before backpressure.
DEFAULT_MAX_DEPTH = 64

#: Default per-tenant sustained submit rate (jobs/second) and burst.
DEFAULT_RATE = 10.0
DEFAULT_BURST = 20


def new_job_id() -> str:
    """A fresh job id (unique across daemon restarts)."""
    return f"j-{uuid.uuid4().hex[:12]}"


class QueueRejection(Exception):
    """A structured admission refusal (HTTP 429 at the API boundary)."""

    code = "rejected"

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.message = message
        self.retry_after = retry_after

    def to_dict(self) -> Dict:
        body: Dict[str, object] = {"code": self.code, "message": self.message}
        if self.retry_after is not None:
            body["retry_after"] = round(self.retry_after, 3)
        return body


class RateLimited(QueueRejection):
    """The tenant's token bucket is empty; retry after the hint."""

    code = "rate-limited"


class QueueFull(QueueRejection):
    """Backpressure: the bounded queue depth is exhausted."""

    code = "queue-full"


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/sec, capacity ``burst``.

    ``try_take`` returns ``None`` on success or the seconds until a
    token will be available (the 429 ``retry_after`` hint).  The clock
    is injectable so tests don't sleep.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_take(self) -> Optional[float]:
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return None
        return (1.0 - self._tokens) / self.rate


@dataclass
class JobState:
    """One job's full server-side state (spec + lifecycle + results)."""

    spec: JobSpec
    status: str = "queued"
    submitted_t: float = 0.0
    started_t: Optional[float] = None
    finished_t: Optional[float] = None
    failed_cells: int = 0
    error: str = ""
    #: ordered result envelopes released by the resequencer so far;
    #: for a job completed in an earlier daemon life this is loaded
    #: lazily from the results file.
    results: List[Dict] = field(default_factory=list)
    results_loaded: bool = True

    def status_dict(self) -> Dict:
        assert self.status in JOB_STATES
        return {
            "job_id": self.spec.job_id,
            "status": self.status,
            "priority": self.spec.priority,
            "tenant": self.spec.tenant,
            "cells": len(self.spec.cells),
            "results_ready": len(self.results) if self.results_loaded else
            len(self.spec.cells),
            "failed_cells": self.failed_cells,
            "error": self.error,
            "submitted_t": self.submitted_t,
            "started_t": self.started_t,
            "finished_t": self.finished_t,
        }


class DurableJobQueue:
    """Journal-backed priority queue; every method is thread-safe."""

    def __init__(
        self,
        root: str,
        max_depth: int = DEFAULT_MAX_DEPTH,
        rate: float = DEFAULT_RATE,
        burst: float = DEFAULT_BURST,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.max_depth = max_depth
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self.metrics = metrics
        self._cond = threading.Condition()
        self.jobs: Dict[str, JobState] = {}
        self._lanes: Dict[str, List[str]] = {
            lane: [] for lane in PRIORITY_CLASSES}
        self._idempotency: Dict[Tuple[str, str], str] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self.rejections = 0
        journal_path = self.root / "journal.jsonl"
        self._journal_path = journal_path
        #: jobs whose complete results file recovered a torn job_done
        self.recovered_jobs: List[str] = []
        replayed = self._replay(journal_path) if journal_path.exists() else 0
        self.replayed_jobs = replayed
        # startup compaction: drop terminal jobs' events so the journal
        # stays proportional to *live* work, not daemon lifetime
        kept, dropped = (self._compact_lines()
                         if journal_path.exists() else ([], 0))
        if dropped:
            self._rewrite_journal(kept)
        self._journal = RunLog(str(journal_path))
        for job_id in self.recovered_jobs:
            self._journal.log("job_recovered", job_id=job_id,
                              cells=len(self.jobs[job_id].spec.cells))
        if dropped:
            self._journal.log("journal_compact", kept=len(kept),
                              dropped=dropped)
        self._depth_gauges()

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _replay(self, journal_path: Path) -> int:
        """Rebuild queue state from the journal (torn tail tolerated).

        Jobs enqueued but not terminal are requeued in submission
        order; terminal jobs keep their status, with done results
        loaded lazily from the results files.
        """
        requeued = 0
        order: List[str] = []
        for record in read_run_log(str(journal_path)):
            event = record.get("event")
            if event == "job_enqueue":
                spec = JobSpec.from_dict(record["spec"])
                state = JobState(spec=spec, submitted_t=record["t"])
                self.jobs[spec.job_id] = state
                order.append(spec.job_id)
                if spec.idempotency_key:
                    self._idempotency[(spec.tenant, spec.idempotency_key)] \
                        = spec.job_id
            elif event == "job_done":
                state = self.jobs.get(record["job_id"])
                if state is not None:
                    state.status = "done"
                    state.failed_cells = record["failed_cells"]
                    state.finished_t = record["t"]
                    state.results_loaded = False
            elif event == "job_failed":
                state = self.jobs.get(record["job_id"])
                if state is not None:
                    state.status = "failed"
                    state.error = record["error"]
                    state.finished_t = record["t"]
            elif event == "job_cancelled":
                state = self.jobs.get(record["job_id"])
                if state is not None:
                    state.status = "cancelled"
        for job_id in order:
            state = self.jobs[job_id]
            if state.status in TERMINAL_STATES:
                continue
            if self._recover_torn_done(state):
                continue
            state.status = "queued"
            state.started_t = None
            state.results = []
            self._lanes[state.spec.priority].append(job_id)
            requeued += 1
        return requeued

    def _recover_torn_done(self, state: JobState) -> bool:
        """Detect a job whose ``job_done`` journal record was torn off.

        ``mark_done`` persists the ordered results file *before*
        journaling ``job_done``; a crash in that window leaves a
        complete results file for a journal-non-terminal job.  Replay
        must classify it as done — requeueing would double-run the job
        (cheaply, via cache hits, but its results_ready would bounce
        and a torn-off failure count would be lost).  A *partial*
        results file never matches the cell count, so genuinely
        interrupted jobs still requeue.
        """
        path = self._results_path(state.spec.job_id)
        if not path.exists():
            return False
        try:
            envelopes = json.loads(path.read_text())
        except (OSError, ValueError):
            return False
        if (not isinstance(envelopes, list)
                or len(envelopes) != len(state.spec.cells)):
            return False
        state.status = "done"
        state.failed_cells = sum(
            1 for envelope in envelopes
            if isinstance(envelope, dict) and not envelope.get("ok"))
        state.finished_t = time.time()
        state.results = []
        state.results_loaded = False
        self.recovered_jobs.append(state.spec.job_id)
        return True

    # ------------------------------------------------------------------
    # journal compaction
    # ------------------------------------------------------------------
    def _live_job_ids(self) -> set:
        return {job_id for job_id, state in self.jobs.items()
                if state.status not in TERMINAL_STATES}

    def _compact_lines(self) -> Tuple[List[str], int]:
        """Partition the journal's raw lines into (keep, dropped-count).

        Raw lines (not re-logged records) so surviving events keep
        their original ``t``/``elapsed`` stamps.  Kept: every event
        carrying the ``job_id`` of a currently non-terminal job — the
        exact set replay needs to rebuild the queue.  Dropped: terminal
        jobs' histories, job-less audit records (rejections, previous
        compactions) and undecodable lines.
        """
        live = self._live_job_ids()
        keep: List[str] = []
        dropped = 0
        try:
            lines = self._journal_path.read_text(
                encoding="utf-8", errors="replace").splitlines()
        except OSError:
            return [], 0
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                dropped += 1
                continue
            if isinstance(record, dict) and record.get("job_id") in live:
                keep.append(line)
            else:
                dropped += 1
        return keep, dropped

    def _rewrite_journal(self, keep: List[str]) -> None:
        path = self._journal_path
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text("\n".join(keep) + ("\n" if keep else ""),
                       encoding="utf-8")
        os.replace(tmp, path)

    def compact(self) -> Tuple[int, int]:
        """Atomically shrink the journal to live jobs' events only.

        Closes the writer, rewrites the file (tmp + ``os.replace`` — a
        crash mid-compaction leaves the old journal intact), reopens,
        and journals a ``journal_compact`` marker.  Returns ``(kept,
        dropped)`` line counts.  Startup performs the same compaction
        automatically after replay.
        """
        with self._cond:
            self._journal.close()
            keep, dropped = self._compact_lines()
            self._rewrite_journal(keep)
            self._journal = RunLog(str(self._journal_path))
            self._journal.log("journal_compact", kept=len(keep),
                              dropped=dropped)
            return len(keep), dropped

    def log(self, event: str, **fields) -> None:
        """Append one journal event (thread-safe; used by the pool too)."""
        with self._cond:
            self._journal.log(event, **fields)

    def _results_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    def _depth_gauges(self) -> None:
        if self.metrics is None:
            return
        for lane, ids in self._lanes.items():
            self.metrics.set_gauge(f"serve.queue.depth.{lane}", len(ids))
        self.metrics.set_gauge("serve.queue.depth", self.depth())

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Jobs admitted but not yet dispatched (both lanes)."""
        return sum(len(ids) for ids in self._lanes.values())

    def submit(self, spec: JobSpec) -> Tuple[JobState, bool]:
        """Admit one job; returns ``(state, created)``.

        ``created`` is False on an idempotency-key hit (the original
        job's state is returned and nothing is enqueued or charged
        against the tenant's rate budget).  Raises :class:`RateLimited`
        or :class:`QueueFull` on refusal — both journaled as
        ``job_reject`` for the audit trail.
        """
        with self._cond:
            if spec.idempotency_key:
                existing = self._idempotency.get(
                    (spec.tenant, spec.idempotency_key))
                if existing is not None:
                    return self.jobs[existing], False
            bucket = self._buckets.get(spec.tenant)
            if bucket is None:
                bucket = self._buckets[spec.tenant] = TokenBucket(
                    self.rate, self.burst, self._clock)
            wait = bucket.try_take()
            if wait is not None:
                self.rejections += 1
                self._journal.log("job_reject", tenant=spec.tenant,
                                  code="rate-limited",
                                  reason=f"retry after {wait:.3f}s")
                if self.metrics is not None:
                    self.metrics.count("serve.queue.rejected.rate_limited")
                raise RateLimited(
                    f"tenant {spec.tenant!r} exceeded {self.rate:g} "
                    f"jobs/s (burst {self.burst:g})", retry_after=wait)
            if self.depth() >= self.max_depth:
                self.rejections += 1
                self._journal.log("job_reject", tenant=spec.tenant,
                                  code="queue-full",
                                  reason=f"depth {self.depth()} >= "
                                         f"{self.max_depth}")
                if self.metrics is not None:
                    self.metrics.count("serve.queue.rejected.queue_full")
                raise QueueFull(
                    f"queue full ({self.max_depth} jobs); retry later",
                    retry_after=1.0)
            state = JobState(spec=spec, submitted_t=time.time())
            self.jobs[spec.job_id] = state
            self._lanes[spec.priority].append(spec.job_id)
            if spec.idempotency_key:
                self._idempotency[(spec.tenant, spec.idempotency_key)] \
                    = spec.job_id
            self._journal.log("job_enqueue", job_id=spec.job_id,
                              tenant=spec.tenant, priority=spec.priority,
                              cells=len(spec.cells), spec=spec.to_dict())
            if self.metrics is not None:
                self.metrics.count("serve.queue.enqueued")
            self._depth_gauges()
            self._cond.notify_all()
            return state, True

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def next_job(self, classes: Sequence[str] = PRIORITY_CLASSES,
                 timeout: Optional[float] = 0.0) -> Optional[JobState]:
        """Pop the highest-priority queued job, or ``None``.

        Lanes are scanned in :data:`~repro.serve.protocol.
        PRIORITY_CLASSES` order restricted to ``classes`` — an
        interactive job always dispatches ahead of every queued batch
        job.  ``timeout`` is how long to block waiting for work (0 =
        non-blocking).
        """
        deadline = (time.monotonic() + timeout) if timeout else None
        with self._cond:
            while True:
                for lane in PRIORITY_CLASSES:
                    if lane in classes and self._lanes[lane]:
                        job_id = self._lanes[lane].pop(0)
                        state = self.jobs[job_id]
                        state.status = "running"
                        state.started_t = time.time()
                        self._journal.log("job_dispatch", job_id=job_id,
                                          priority=lane)
                        self._depth_gauges()
                        return state
                if deadline is None:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def requeue(self, job_id: str, reason: str) -> None:
        """Put a dispatched-but-unfinished job back at the front of its lane.

        Used by graceful shutdown; crash recovery reaches the same
        state through journal replay.  Partial results are discarded —
        the rerun's cells are cache hits, so nothing is recomputed.
        """
        with self._cond:
            state = self.jobs[job_id]
            state.status = "queued"
            state.started_t = None
            state.results = []
            state.results_loaded = True
            self._lanes[state.spec.priority].insert(0, job_id)
            self._journal.log("job_requeue", job_id=job_id, reason=reason)
            self._depth_gauges()
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # completion / results
    # ------------------------------------------------------------------
    def append_results(self, job_id: str, envelopes: List[Dict]) -> None:
        """Extend a running job's ordered result stream."""
        if not envelopes:
            return
        with self._cond:
            self.jobs[job_id].results.extend(envelopes)

    def mark_done(self, job_id: str, failed_cells: int) -> None:
        """Finish a job: persist its ordered results, journal the event."""
        with self._cond:
            state = self.jobs[job_id]
            state.status = "done"
            state.failed_cells = failed_cells
            state.finished_t = time.time()
            seconds = round(state.finished_t - (state.started_t
                                                or state.submitted_t), 6)
            path = self._results_path(job_id)
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(state.results))
            os.replace(tmp, path)
            self._journal.log("job_done", job_id=job_id,
                              ok=(failed_cells == 0),
                              failed_cells=failed_cells, seconds=seconds)
            if self.metrics is not None:
                self.metrics.count("serve.jobs.done")
                self.metrics.set_gauge("serve.job.last_seconds", seconds)
                self.metrics.observe("serve.job.seconds", seconds)

    def mark_failed(self, job_id: str, error: str) -> None:
        """A job the pool could not finish even with repairs."""
        with self._cond:
            state = self.jobs[job_id]
            state.status = "failed"
            state.error = error
            state.finished_t = time.time()
            self._journal.log("job_failed", job_id=job_id, error=error)
            if self.metrics is not None:
                self.metrics.count("serve.jobs.failed")

    def results(self, job_id: str, since: int = 0) -> Tuple[List[Dict], bool]:
        """The ordered result stream from ``since``; ``(entries, final)``.

        ``final`` is True once the stream can grow no further (job
        terminal).  For a job completed in an earlier daemon life the
        stream is loaded from its results file on first access.
        """
        with self._cond:
            state = self.jobs[job_id]
            if not state.results_loaded:
                path = self._results_path(job_id)
                state.results = json.loads(path.read_text()) \
                    if path.exists() else []
                state.results_loaded = True
            return (list(state.results[since:]),
                    state.status in TERMINAL_STATES)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        with self._cond:
            by_status: Dict[str, int] = {status: 0 for status in JOB_STATES}
            for state in self.jobs.values():
                by_status[state.status] += 1
            by_status["depth"] = self.depth()
            for lane, ids in self._lanes.items():
                by_status[f"depth_{lane}"] = len(ids)
            return by_status

    def close(self) -> None:
        self._journal.close()
