"""Resequencer: restore submission order from out-of-order completions.

The worker pool executes a job's cells as shards spread across worker
threads, so completions arrive interleaved and out of order.  Each job
owns one :class:`Resequencer` (the job id is the correlation key, the
cell's submission index is the sequence number): completions are
buffered until the next expected sequence arrives, then the contiguous
prefix is released — downstream consumers (the ordered result stream
served on ``GET /jobs/<id>/results``) only ever observe cells in
submission order, no matter how execution interleaved.

Gap handling: a shard lost to a dying worker thread leaves a hole in
the sequence space.  :meth:`Resequencer.missing` names the holes below
the high-water mark so the pool can resubmit exactly those cells as a
repair shard (see :mod:`repro.serve.pool`); duplicates from a repair
racing the original are dropped on arrival.

This is the Enterprise Integration Patterns *Resequencer* (buffer by
key, detect gaps, emit in order) specialised to a dense 0..n-1
sequence space, which makes gap detection exact instead of
heuristic — the expected count is known at job admission.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Resequencer:
    """Order-restoring buffer over a dense sequence space ``0..expected-1``.

    Not thread-safe by itself — the pool serialises access per job under
    its own lock.
    """

    def __init__(self, expected: int):
        if expected <= 0:
            raise ValueError(f"expected must be positive, got {expected}")
        self.expected = expected
        self._next = 0
        self._buffer: Dict[int, object] = {}
        #: total payloads released in order so far
        self.emitted = 0
        #: duplicate arrivals dropped (repair racing the original)
        self.duplicates = 0

    def push(self, seq: int, payload: object) -> List[Tuple[int, object]]:
        """Accept one completion; return the newly releasable prefix.

        The returned list is the (possibly empty) run of ``(seq,
        payload)`` pairs that became contiguous with everything already
        emitted — i.e. exactly what downstream may now consume, in
        order.  Out-of-range sequences raise; duplicates are counted
        and ignored.
        """
        if not 0 <= seq < self.expected:
            raise ValueError(
                f"sequence {seq} outside 0..{self.expected - 1}")
        if seq < self._next or seq in self._buffer:
            self.duplicates += 1
            return []
        self._buffer[seq] = payload
        released: List[Tuple[int, object]] = []
        while self._next in self._buffer:
            released.append((self._next, self._buffer.pop(self._next)))
            self._next += 1
        self.emitted += len(released)
        return released

    @property
    def complete(self) -> bool:
        """Every sequence emitted — the job's result stream is final."""
        return self.emitted == self.expected

    @property
    def next_expected(self) -> int:
        """The sequence the ordered stream is currently waiting on."""
        return self._next

    @property
    def buffered(self) -> int:
        """Completions held back waiting for an earlier sequence."""
        return len(self._buffer)

    def missing(self, high_water: Optional[int] = None) -> List[int]:
        """The sequence gaps blocking emission, for repair resubmission.

        With no argument, reports holes below the highest buffered
        sequence (something later already finished, so the hole is a
        *lost* completion, not merely a slow one).  Passing
        ``high_water`` widens the check: every unemitted, unbuffered
        sequence below it is reported — the pool passes ``expected``
        once all shards have been accounted for, turning "slow" into
        "lost" exactly when nothing is in flight any more.
        """
        if high_water is None:
            high_water = max(self._buffer) + 1 if self._buffer else self._next
        return [seq for seq in range(self._next, min(high_water, self.expected))
                if seq not in self._buffer]
