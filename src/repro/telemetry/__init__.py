"""Observability: cycle-level tracing, stall attribution, trace export.

Opt-in instrumentation for the simulator.  Construct a
:class:`Tracer` and/or :class:`StallAttribution` and hand them to the
:class:`~repro.core.pipeline.Pipeline`::

    from repro import build_trace, config_for
    from repro.core.pipeline import Pipeline
    from repro.telemetry import StallAttribution, Tracer, write_chrome_trace

    tracer, attribution = Tracer(), StallAttribution()
    pipe = Pipeline(build_trace("dotprod", 2000), config_for("ballerino"),
                    tracer=tracer, attribution=attribution)
    result = pipe.run()
    write_chrome_trace(tracer, "pipeline.json")
    print(result.stats.stall_cycles)   # sums exactly to result.cycles

When neither is supplied, every hook reduces to a nullable-reference
check; the measured overhead is below the 3% budget (see
``docs/observability.md``).
"""

from .attribution import CATEGORIES, OCCUPANCY_KEYS, StallAttribution
from .export import (
    read_chrome_trace,
    write_chrome_trace,
    write_konata,
)
from .snapshot import capture_snapshot, describe_head, render_snapshot
from .tracer import (
    AUX_STAGES,
    LIFECYCLE,
    LIFECYCLE_RANK,
    OpInfo,
    TraceEvent,
    Tracer,
)

__all__ = [
    "AUX_STAGES",
    "CATEGORIES",
    "LIFECYCLE",
    "LIFECYCLE_RANK",
    "OCCUPANCY_KEYS",
    "OpInfo",
    "StallAttribution",
    "TraceEvent",
    "Tracer",
    "capture_snapshot",
    "describe_head",
    "read_chrome_trace",
    "render_snapshot",
    "write_chrome_trace",
    "write_konata",
]
