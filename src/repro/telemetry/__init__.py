"""Observability: cycle-level tracing, stall attribution, trace export.

Opt-in instrumentation for the simulator.  Construct a
:class:`Tracer` and/or :class:`StallAttribution` and hand them to the
:class:`~repro.core.pipeline.Pipeline`::

    from repro import build_trace, config_for
    from repro.core.pipeline import Pipeline
    from repro.telemetry import StallAttribution, Tracer, write_chrome_trace

    tracer, attribution = Tracer(), StallAttribution()
    pipe = Pipeline(build_trace("dotprod", 2000), config_for("ballerino"),
                    tracer=tracer, attribution=attribution)
    result = pipe.run()
    write_chrome_trace(tracer, "pipeline.json")
    print(result.stats.stall_cycles)   # sums exactly to result.cycles

When neither is supplied, every hook reduces to a nullable-reference
check; the measured overhead is below the 3% budget (see
``docs/observability.md``).
"""

from .attribution import CATEGORIES, OCCUPANCY_KEYS, StallAttribution
from .export import (
    chrome_counter_events,
    read_chrome_trace,
    write_chrome_trace,
    write_konata,
)
from .metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    IntervalSampler,
    MetricsRegistry,
    flatten_sample,
    samples_to_csv,
    series,
    write_samples_csv,
)
from .runlog import (EVENT_FIELDS, RunLog, read_run_log,
                     read_run_log_tolerant, validate_event)
from .snapshot import capture_snapshot, describe_head, render_snapshot
from .tracer import (
    AUX_STAGES,
    LIFECYCLE,
    LIFECYCLE_RANK,
    OpInfo,
    TraceEvent,
    Tracer,
)

__all__ = [
    "AUX_STAGES",
    "CATEGORIES",
    "CounterMetric",
    "EVENT_FIELDS",
    "GaugeMetric",
    "HistogramMetric",
    "IntervalSampler",
    "LIFECYCLE",
    "LIFECYCLE_RANK",
    "MetricsRegistry",
    "OCCUPANCY_KEYS",
    "OpInfo",
    "RunLog",
    "StallAttribution",
    "TraceEvent",
    "Tracer",
    "capture_snapshot",
    "chrome_counter_events",
    "describe_head",
    "flatten_sample",
    "read_chrome_trace",
    "read_run_log",
    "read_run_log_tolerant",
    "render_snapshot",
    "samples_to_csv",
    "series",
    "validate_event",
    "write_chrome_trace",
    "write_konata",
    "write_samples_csv",
]
