"""Observability: cycle-level tracing, stall attribution, trace export.

Opt-in instrumentation for the simulator.  Construct a
:class:`Tracer` and/or :class:`StallAttribution` and hand them to the
:class:`~repro.core.pipeline.Pipeline`::

    from repro import build_trace, config_for
    from repro.core.pipeline import Pipeline
    from repro.telemetry import StallAttribution, Tracer, write_chrome_trace

    tracer, attribution = Tracer(), StallAttribution()
    pipe = Pipeline(build_trace("dotprod", 2000), config_for("ballerino"),
                    tracer=tracer, attribution=attribution)
    result = pipe.run()
    write_chrome_trace(tracer, "pipeline.json")
    print(result.stats.stall_cycles)   # sums exactly to result.cycles

When neither is supplied, every hook reduces to a nullable-reference
check; the measured overhead is below the 3% budget (see
``docs/observability.md``).
"""

from .attribution import CATEGORIES, OCCUPANCY_KEYS, StallAttribution
from .export import (
    chrome_counter_events,
    read_chrome_trace,
    write_chrome_trace,
    write_konata,
)
from .metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    IntervalSampler,
    MetricsRegistry,
    flatten_sample,
    samples_to_csv,
    series,
    write_samples_csv,
)
from .prometheus import (
    escape_label_value,
    lint_prometheus,
    render_prometheus,
)
from .runlog import (EVENT_FIELDS, TRACE_FIELDS, RunLog, read_jsonl,
                     read_run_log, read_run_log_tolerant, validate_event)
from .snapshot import capture_snapshot, describe_head, render_snapshot
from .spans import (
    Span,
    SpanContext,
    SpanRecorder,
    derive_span_id,
    derive_trace_id,
    merge_span_files,
    merge_spans,
    new_span_id,
    new_trace_id,
    read_spans,
    span_tree,
    spans_to_chrome,
    write_spans,
)
from .top import LogTail, TopModel, render_top, run_top
from .tracer import (
    AUX_STAGES,
    LIFECYCLE,
    LIFECYCLE_RANK,
    OpInfo,
    TraceEvent,
    Tracer,
)

__all__ = [
    "AUX_STAGES",
    "CATEGORIES",
    "CounterMetric",
    "EVENT_FIELDS",
    "GaugeMetric",
    "HistogramMetric",
    "IntervalSampler",
    "LIFECYCLE",
    "LIFECYCLE_RANK",
    "LogTail",
    "MetricsRegistry",
    "OCCUPANCY_KEYS",
    "OpInfo",
    "RunLog",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "StallAttribution",
    "TRACE_FIELDS",
    "TopModel",
    "TraceEvent",
    "Tracer",
    "capture_snapshot",
    "chrome_counter_events",
    "derive_span_id",
    "derive_trace_id",
    "describe_head",
    "escape_label_value",
    "flatten_sample",
    "lint_prometheus",
    "merge_span_files",
    "merge_spans",
    "new_span_id",
    "new_trace_id",
    "read_chrome_trace",
    "read_jsonl",
    "read_run_log",
    "read_run_log_tolerant",
    "read_spans",
    "render_prometheus",
    "render_snapshot",
    "render_top",
    "run_top",
    "samples_to_csv",
    "series",
    "span_tree",
    "spans_to_chrome",
    "validate_event",
    "write_chrome_trace",
    "write_konata",
    "write_samples_csv",
    "write_spans",
]
