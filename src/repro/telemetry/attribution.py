"""Stall attribution: classify every simulated cycle into one bucket.

The engine implements a ROB-head ("top-down") cycle accounting in the
taxonomy of the paper's bottleneck figures: every cycle is charged to
exactly one category, so the per-category counts sum exactly to the
total simulated cycle count — the invariant the telemetry tests assert.

Categories
----------

=================  ====================================================
``commit``         at least one µop retired this cycle (useful work)
``frontend``       ROB empty and fetch/decode supplied nothing (I-cache
                   miss, fetch/rename latency, trace drained)
``squash``         ROB empty inside a recovery window (branch
                   mispredict or memory-order-violation penalty)
``memory``         the oldest µop is an in-flight load/store, waits on
                   a predicted store dependence, or is load-shadowed
                   (class ``LdC``/``Ld`` with operands outstanding)
``not_ready``      the oldest µop waits on a non-load operand chain or
                   a multi-cycle non-memory execution
``port_conflict``  the oldest µop was ready but the scheduler could not
                   issue it (port taken or select-bandwidth loss)
``iq_full``        a non-memory execution stall during which dispatch
                   was also blocked by window/ROB/LSQ backpressure
=================  ====================================================

The classification is deliberately *head-based*: when several causes
coexist, the cycle is charged to whatever blocks the oldest µop, the
same root-cause convention hardware top-down counters use.

The engine also samples per-cycle occupancy of the major structures
(ROB, scheduling window, decode queue, LQ/SQ) and reports averages.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pipeline import Pipeline

#: Every attribution bucket, in report order.
CATEGORIES = (
    "commit", "frontend", "squash", "memory",
    "not_ready", "port_conflict", "iq_full",
)

#: Structures whose occupancy is sampled each cycle.
OCCUPANCY_KEYS = ("rob", "sched", "decode_queue", "lq", "sq")


class StallAttribution:
    """Per-cycle stall classifier, fed once per simulated cycle.

    The pipeline calls :meth:`record_cycle` at the end of every cycle
    (guarded by a nullable reference, like the tracer) and notifies the
    engine of recovery windows and dispatch backpressure via
    :meth:`note_recovery` / :meth:`note_dispatch_block`.
    """

    __slots__ = ("cycles", "_occupancy", "samples",
                 "_recovery_until", "_dispatch_block")

    def __init__(self) -> None:
        self.cycles: Dict[str, int] = {name: 0 for name in CATEGORIES}
        self._occupancy: Dict[str, int] = {k: 0 for k in OCCUPANCY_KEYS}
        self.samples = 0
        self._recovery_until = -1
        self._dispatch_block: str = ""

    # -- pipeline notifications ---------------------------------------
    def note_recovery(self, resume_cycle: int) -> None:
        """Fetch is stalled until ``resume_cycle`` repairing speculation."""
        if resume_cycle > self._recovery_until:
            self._recovery_until = resume_cycle

    def note_dispatch_block(self, reason: str) -> None:
        """Dispatch hit backpressure this cycle (iq/rob/lq/sq full)."""
        self._dispatch_block = reason

    # -- per-cycle sampling -------------------------------------------
    def record_cycle(self, pipe: "Pipeline", committed: bool) -> None:
        self.samples += 1
        occ = self._occupancy
        occ["rob"] += len(pipe.rob)
        occ["sched"] += pipe.scheduler.occupancy()
        occ["decode_queue"] += len(pipe.decode_queue)
        occ["lq"] += pipe.lsu.lq_occupancy
        occ["sq"] += pipe.lsu.sq_occupancy
        self.cycles[self._classify(pipe, committed)] += 1
        self._dispatch_block = ""

    def _classify(self, pipe: "Pipeline", committed: bool) -> str:
        if committed:
            return "commit"
        head = pipe.rob.head
        if head is None:
            if pipe.cycle < self._recovery_until:
                return "squash"
            return "frontend"
        if not head.issued:
            if pipe.op_ready(head, pipe.cycle):
                return "port_conflict"
            if not pipe.mdp_dep_satisfied(head):
                return "memory"  # held behind a predicted store dependence
            # operand wait: charge memory when the head sits in a load
            # shadow (its dispatch-time class marked it load-dependent)
            return "memory" if head.klass in ("Ld", "LdC") else "not_ready"
        # issued but not retired: an execution-latency stall
        if head.is_load or head.is_store:
            return "memory"
        if self._dispatch_block:
            return "iq_full"
        return "not_ready"

    # -- reporting -----------------------------------------------------
    def totals(self) -> Dict[str, int]:
        """Category -> cycles; values sum to the sampled cycle count."""
        return dict(self.cycles)

    def fractions(self) -> Dict[str, float]:
        total = self.samples or 1
        return {k: v / total for k, v in self.cycles.items()}

    def occupancy_averages(self) -> Dict[str, float]:
        """Structure -> mean per-cycle occupancy."""
        total = self.samples or 1
        return {k: round(v / total, 2) for k, v in self._occupancy.items()}
