"""Trace exporters: Chrome trace-event JSON and Konata pipeline logs.

Two viewer formats are produced from one :class:`~repro.telemetry.tracer.
Tracer`:

* **Chrome trace-event JSON** (``chrome://tracing`` / Perfetto): each µop
  lifecycle becomes a run of complete ("X") events — one slice per
  pipeline stage — on a greedily packed lane, with auxiliary events
  (steering, forwarding, violations, squashes) as instants.  One
  simulated cycle maps to one microsecond of trace time.
* **Konata** (https://github.com/shioyadan/Konata): the classic
  cycle-by-cycle pipeline viewer format (``Kanata 0004``): ``I``/``L``
  declare each µop, ``S`` marks stage starts, ``R`` retires or flushes.

Both writers are pure functions of the tracer; they can run after the
simulation finished (the tracer is append-only).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .tracer import LIFECYCLE_RANK, TraceEvent, Tracer

#: Konata stage mnemonics per lifecycle stage.
_KONATA_STAGE = {
    "fetch": "F", "rename": "Rn", "dispatch": "Ds", "issue": "Is",
    "execute": "Ex", "writeback": "Wb", "commit": "Cm",
}


def _attempt_spans(events: List[TraceEvent]) -> List[Tuple[str, int, int, str]]:
    """(stage, start, end, cause) spans for one fetch attempt.

    Each lifecycle stage runs from its own event to the next stage's
    event (minimum one cycle); auxiliary events do not open spans.
    """
    stages = [e for e in events if e.stage in LIFECYCLE_RANK]
    spans = []
    for i, event in enumerate(stages):
        if i + 1 < len(stages):
            end = max(stages[i + 1].cycle, event.cycle + 1)
        else:
            end = event.cycle + 1
        spans.append((event.stage, event.cycle, end, event.cause))
    return spans


def _label(tracer: Tracer, seq: int) -> str:
    info = tracer.ops.get(seq)
    if info is None:
        return f"uop {seq}"
    return f"{info.opcode} @pc={info.pc} (seq {seq})"


def chrome_counter_events(
    samples: List[Dict[str, object]], pid: int = 0
) -> List[Dict[str, object]]:
    """Interval samples as Chrome trace *counter* ("C") events.

    Each :class:`~repro.telemetry.metrics.IntervalSampler` sample
    becomes a handful of counter tracks (IPC, structure occupancy, LSQ
    pressure, stall fractions) that viewers render as area charts
    overlaying the per-µop slices from :func:`write_chrome_trace`.
    """
    events: List[Dict[str, object]] = []
    for sample in samples:
        ts = sample["cycle"]
        events.append({
            "name": "IPC", "ph": "C", "pid": pid, "ts": ts, "cat": "metrics",
            "args": {"interval": round(float(sample["ipc"]), 4),
                     "cumulative": round(float(sample["ipc_cum"]), 4)},
        })
        occupancy = sample.get("occupancy") or {}
        if occupancy:
            events.append({
                "name": "occupancy", "ph": "C", "pid": pid, "ts": ts,
                "cat": "metrics",
                "args": {k: occupancy[k] for k in ("rob", "sched",
                                                   "decode_queue")
                         if k in occupancy},
            })
            if "lq" in occupancy or "sq" in occupancy:
                events.append({
                    "name": "lsq", "ph": "C", "pid": pid, "ts": ts,
                    "cat": "metrics",
                    "args": {k: occupancy[k] for k in ("lq", "sq")
                             if k in occupancy},
                })
        queues = sample.get("queues") or {}
        if queues:
            events.append({
                "name": "queues", "ph": "C", "pid": pid, "ts": ts,
                "cat": "metrics", "args": dict(queues),
            })
        stalls = sample.get("stall_fractions") or {}
        if stalls:
            events.append({
                "name": "stalls", "ph": "C", "pid": pid, "ts": ts,
                "cat": "metrics",
                "args": {k: round(float(v), 4) for k, v in stalls.items()},
            })
    return events


def write_chrome_trace(
    tracer: Tracer,
    path: str,
    label: str = "repro",
    metadata: Optional[Dict[str, object]] = None,
    samples: Optional[List[Dict[str, object]]] = None,
) -> Path:
    """Write the trace as Chrome trace-event JSON; returns the path.

    When ``samples`` (an interval-sampler series) is given, counter
    ("C") events are appended so the time-series overlays the slices.
    """
    out: List[Dict[str, object]] = [
        {"ph": "M", "pid": 0, "name": "process_name",
         "args": {"name": f"repro pipeline: {label}"}},
    ]
    # greedy lane packing: each fetch attempt occupies one lane for its
    # whole lifetime, reusing the lowest lane free at its first cycle
    lane_busy_until: List[int] = []
    lane_of: Dict[Tuple[int, int], int] = {}
    attempts = []
    for seq in tracer.seqs():
        for attempt_index, events in enumerate(tracer.attempts_for(seq)):
            spans = _attempt_spans(events)
            if spans:
                attempts.append((seq, attempt_index, events, spans))
    attempts.sort(key=lambda item: item[3][0][1])  # by first stage start
    for seq, attempt_index, events, spans in attempts:
        start, end = spans[0][1], spans[-1][2]
        for lane, busy_until in enumerate(lane_busy_until):
            if busy_until <= start:
                break
        else:
            lane = len(lane_busy_until)
            lane_busy_until.append(0)
        lane_busy_until[lane] = end
        lane_of[(seq, attempt_index)] = lane
        for stage, span_start, span_end, cause in spans:
            args: Dict[str, object] = {"seq": seq, "op": _label(tracer, seq)}
            if cause:
                args["cause"] = cause
            out.append({
                "name": stage, "cat": "uop", "ph": "X",
                "ts": span_start, "dur": span_end - span_start,
                "pid": 0, "tid": lane, "args": args,
            })
        for event in events:
            if event.stage in LIFECYCLE_RANK:
                continue
            out.append({
                "name": event.stage, "cat": "aux", "ph": "i", "s": "t",
                "ts": event.cycle, "pid": 0, "tid": lane,
                "args": {"seq": seq, "cause": event.cause},
            })
    if samples:
        out.extend(chrome_counter_events(samples))
    document: Dict[str, object] = {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.telemetry", "cycles_per_us": 1},
    }
    if metadata:
        document["otherData"].update(metadata)
    target = Path(path)
    target.write_text(json.dumps(document))
    return target


def read_chrome_trace(path: str) -> Dict[str, object]:
    """Load a Chrome trace-event JSON written by :func:`write_chrome_trace`."""
    document = json.loads(Path(path).read_text())
    if "traceEvents" not in document:
        raise ValueError(f"{path}: not a Chrome trace-event file")
    return document


def write_konata(tracer: Tracer, path: str) -> Path:
    """Write the trace as a Konata (``Kanata 0004``) pipeline log."""
    lines: List[str] = ["Kanata\t0004"]
    ordered = sorted(
        range(len(tracer.events)), key=lambda i: (tracer.events[i].cycle, i)
    )
    current_cycle: Optional[int] = None
    next_uid = 0
    uid_of: Dict[int, int] = {}  # seq -> uid of the live attempt
    for index in ordered:
        event = tracer.events[index]
        if current_cycle is None:
            lines.append(f"C=\t{event.cycle}")
            current_cycle = event.cycle
        elif event.cycle > current_cycle:
            lines.append(f"C\t{event.cycle - current_cycle}")
            current_cycle = event.cycle
        seq = event.seq
        if event.stage == "fetch":
            uid = next_uid
            next_uid += 1
            uid_of[seq] = uid
            lines.append(f"I\t{uid}\t{seq}\t0")
            lines.append(f"L\t{uid}\t0\t{_label(tracer, seq)}")
        uid = uid_of.get(seq)
        if uid is None:
            continue  # event for a µop whose fetch predates tracing
        stage = _KONATA_STAGE.get(event.stage)
        if stage is not None:
            lines.append(f"S\t{uid}\t0\t{stage}")
        elif event.stage == "squash":
            lines.append(f"L\t{uid}\t1\tsquash: {event.cause}")
            lines.append(f"R\t{uid}\t{seq}\t1")
            uid_of.pop(seq, None)
        elif event.cause:
            lines.append(f"L\t{uid}\t1\t{event.stage}: {event.cause}")
        if event.stage == "commit":
            lines.append(f"R\t{uid}\t{seq}\t0")
            uid_of.pop(seq, None)
    target = Path(path)
    target.write_text("\n".join(lines) + "\n")
    return target
