"""Hardware-counter metrics registry and interval time-series sampling.

Two opt-in instruments, built on the same null-object pattern as
:class:`~repro.telemetry.tracer.Tracer`: the pipeline (and every
scheduler, the LSQ and the rename unit) holds a nullable reference and
every hook is guarded by a single ``is not None`` check, so the
disabled cost is one branch per site.

* :class:`MetricsRegistry` — a flat namespace of named **counters**
  (monotonic event counts: ops committed, dispatch blocks by reason,
  steering outcomes, store-forwards), **gauges** (last-written level)
  and **histograms** (distributions over fixed bucket bounds, e.g.
  squash depths).  ``registry.count(name)`` is the one-liner used on
  hot paths; :meth:`MetricsRegistry.snapshot` renders everything to a
  plain dict for JSON/CSV export.

* :class:`IntervalSampler` — snapshots the running pipeline every *N*
  cycles (plus one tail sample for the final partial interval) into a
  list of plain dicts: interval and cumulative IPC, per-structure
  occupancy (ROB / window / decode queue / LQ / SQ), per-IQ queue
  depths via ``scheduler.queue_occupancy()``, interval stall-class
  fractions (when a :class:`~repro.telemetry.attribution.
  StallAttribution` is attached) and interval deltas of the
  scheduler's ``extra_stats()`` (steering outcomes, issue mix).  The
  series lands on ``SimResult.interval_samples``; the last sample's
  cumulative fields match the end-of-run ``SimStats`` exactly.

Neither instrument mutates simulation state: enabling both leaves
every simulated statistic byte-identical (pinned against
``tests/golden_stats.json``).
"""

from __future__ import annotations

from bisect import bisect_left
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pipeline import Pipeline

#: Default histogram bucket upper bounds (powers of two; an implicit
#: overflow bucket catches everything above the last bound).
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class CounterMetric:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}


class GaugeMetric:
    """A last-written level (instantaneous value, not a count)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        """Adjust the level by ``delta`` (e.g. queue depth +1/-1)."""
        self.value += delta

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}


class HistogramMetric:
    """A distribution over fixed bucket upper bounds.

    ``observe(v)`` lands ``v`` in the first bucket whose bound is
    ``>= v``; values above every bound land in the overflow bucket.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total")
    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"{name}: bucket bounds must be sorted and non-empty")
        self.name = name
        self.bounds = tuple(buckets)
        self.buckets = [0] * (len(self.bounds) + 1)  # +1 = overflow
        self.count = 0
        self.total: float = 0

    def observe(self, value: float) -> None:
        # first bucket whose bound is >= value; everything past the last
        # bound lands in the trailing overflow bucket
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "buckets": {
                **{f"le_{bound}": n
                   for bound, n in zip(self.bounds, self.buckets)},
                "overflow": self.buckets[-1],
            },
        }


Metric = Union[CounterMetric, GaugeMetric, HistogramMetric]


class MetricsRegistry:
    """Named hardware-style counters/gauges/histograms for one run.

    Metrics are created lazily on first touch (``counter(name)`` is
    get-or-create); asking for an existing name with a different kind
    raises ``TypeError``.  Instrumentation sites use dotted names
    (``pipeline.commit_ops``, ``sched.steer.share``, ``lsq.forwards``)
    so snapshots group naturally.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory, kind: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif metric.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {kind}"
            )
        return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get_or_create(name, lambda: CounterMetric(name), "counter")

    def gauge(self, name: str) -> GaugeMetric:
        return self._get_or_create(name, lambda: GaugeMetric(name), "gauge")

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> HistogramMetric:
        return self._get_or_create(
            name, lambda: HistogramMetric(name, buckets), "histogram"
        )

    # hot-path one-liner: sites call ``metrics.count("x")`` behind a
    # single nil-check, so the enabled cost stays a dict lookup + add
    def count(self, name: str, n: int = 1) -> None:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = CounterMetric(name)
        metric.value += n

    def observe(self, name: str, value: float) -> None:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = HistogramMetric(name)
        metric.observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Get-or-create one-liner for gauges (queue depths, latencies)."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = GaugeMetric(name)
        metric.value = value

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def value(self, name: str) -> float:
        """The scalar value of a counter/gauge (0 if never touched)."""
        metric = self._metrics.get(name)
        return metric.value if metric is not None else 0

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Everything, as plain JSON-serialisable dicts, sorted by name."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}


class IntervalSampler:
    """Every-N-cycles time-series snapshots of a running pipeline.

    The pipeline calls :meth:`tick` once per cycle (after the cycle
    counter advances) and :meth:`finalize` after the run loop, which
    takes one tail sample covering the final partial interval — unless
    the run ended exactly on a boundary, in which case the series is
    already complete.  Samples are plain dicts (see :meth:`_take`).
    """

    def __init__(self, interval: int = 1000):
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        self.interval = interval
        self.samples: List[Dict[str, object]] = []
        self._next = interval
        self._prev_cycle = 0
        self._prev = {"committed": 0, "issued": 0, "fetched": 0}
        self._prev_stalls: Dict[str, int] = {}
        self._prev_sched: Dict[str, float] = {}

    def tick(self, pipe: "Pipeline") -> None:
        if pipe.cycle >= self._next:
            self._take(pipe)
            # advance along the fixed grid (multiples of ``interval``):
            # rebasing on pipe.cycle would let one overshoot — e.g. a
            # driver that ticks less than every cycle — permanently
            # shift every later sample point off the grid
            self._next += (
                (pipe.cycle - self._next) // self.interval + 1
            ) * self.interval

    def finalize(self, pipe: "Pipeline") -> None:
        """Sample the final partial interval (no-op on exact boundary)."""
        if not self.samples or self.samples[-1]["cycle"] != pipe.cycle:
            self._take(pipe)

    def take(self, pipe: "Pipeline") -> Dict[str, object]:
        """Take one explicit sample now, off the periodic grid.

        Used by the sampled-simulation driver
        (:mod:`repro.core.sampling`) to bracket measured windows: the
        delta fields of the returned sample then cover exactly the
        stretch since the previous take.  Does not move :meth:`tick`'s
        grid.
        """
        self._take(pipe)
        return self.samples[-1]

    def _take(self, pipe: "Pipeline") -> None:
        stats = pipe.stats
        cycle = pipe.cycle
        interval = cycle - self._prev_cycle
        cumulative = {
            "committed": stats.committed,
            "issued": stats.issued,
            "fetched": stats.fetched,
        }
        delta = {k: cumulative[k] - self._prev[k] for k in cumulative}
        sample: Dict[str, object] = {
            "cycle": cycle,
            "interval": interval,
            **cumulative,
            "delta": delta,
            "ipc": delta["committed"] / interval if interval else 0.0,
            "ipc_cum": cumulative["committed"] / cycle if cycle else 0.0,
            "occupancy": {
                "rob": len(pipe.rob),
                "sched": pipe.scheduler.occupancy(),
                "decode_queue": len(pipe.decode_queue),
                "lq": pipe.lsu.lq_occupancy,
                "sq": pipe.lsu.sq_occupancy,
            },
            "queues": dict(pipe.scheduler.queue_occupancy()),
        }
        attribution = pipe.attribution
        if attribution is not None:
            stalls = attribution.cycles
            sample["stall_fractions"] = {
                k: (stalls[k] - self._prev_stalls.get(k, 0)) / interval
                if interval else 0.0
                for k in stalls
            }
            self._prev_stalls = dict(stalls)
        sched = pipe.scheduler.extra_stats()
        if sched:
            sample["scheduler"] = {
                k: v - self._prev_sched.get(k, 0) for k, v in sched.items()
            }
            self._prev_sched = dict(sched)
        self._prev_cycle = cycle
        self._prev = cumulative
        self.samples.append(sample)


# ---------------------------------------------------------------------------
# export helpers


def flatten_sample(sample: Dict[str, object]) -> Dict[str, object]:
    """One sample as a flat dict with dotted keys (for CSV rows)."""
    flat: Dict[str, object] = {}
    for key, value in sample.items():
        if isinstance(value, dict):
            for sub, val in value.items():
                flat[f"{key}.{sub}"] = val
        else:
            flat[key] = value
    return flat


def samples_to_csv(samples: List[Dict[str, object]]) -> str:
    """Render an interval series as CSV text (header + one row/sample)."""
    rows = [flatten_sample(s) for s in samples]
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.6g}"
        return "" if value is None else str(value)

    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(cell(row.get(col)) for col in columns))
    return "\n".join(lines) + "\n"


def write_samples_csv(samples: List[Dict[str, object]], path: str) -> Path:
    target = Path(path)
    target.write_text(samples_to_csv(samples))
    return target


def series(
    samples: List[Dict[str, object]], key: str
) -> List[Optional[float]]:
    """Extract one flattened column (dotted key) across all samples.

    A key absent from a sample yields ``None`` at that position —
    interval series are ragged by design (attribution can attach
    mid-run, sampled-mode window samples carry extra fields), and
    coercing "absent" to ``0.0`` would fabricate data points.  Callers
    that aggregate should filter ``None`` first.
    """
    out: List[Optional[float]] = []
    for sample in samples:
        flat = flatten_sample(sample)
        value = flat.get(key)
        out.append(None if value is None else float(value))
    return out
