"""Prometheus text-format exposition for the MetricsRegistry.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot
<repro.telemetry.metrics.MetricsRegistry.snapshot>` into the
Prometheus text exposition format (version 0.0.4): one ``# HELP`` and
``# TYPE`` comment pair per metric followed by its samples.  Dotted
registry names become underscore-separated (``serve.jobs.done`` →
``repro_serve_jobs_done_total``), counters gain the conventional
``_total`` suffix, and histograms are converted from the registry's
per-bucket counts to the cumulative ``_bucket{le="..."}`` series
(plus ``+Inf``, ``_sum`` and ``_count``) Prometheus expects.

:func:`lint_prometheus` is a self-contained regex lint of the format —
committed here so CI can assert the daemon's ``/metricsz?format=
prometheus`` output stays parseable without a Prometheus install:
``python -m repro.telemetry.prometheus FILE`` exits non-zero with the
offending lines on stderr.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Mapping, Optional, Tuple

#: characters legal in an exposition metric name.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: sample line: name, optional {labels}, value, optional timestamp.
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[^{}]*\})?"
    r" "
    r"(-?[0-9.eE+-]+|[+-]?Inf|NaN)"
    r"( [0-9]+)?$"
)
_COMMENT_RE = re.compile(
    r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$")
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"$')
_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Dotted registry name -> legal exposition metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name.replace(".", "_"))
    full = prefix + cleaned
    if not _NAME_RE.match(full):
        full = "_" + full
    return full


def escape_label_value(value: object) -> str:
    """Escape a label value per the exposition format.

    Backslash, double-quote and newline are the three characters the
    format escapes inside label values.
    """
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """Escape a HELP docstring (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _label_string(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    pairs = ", ".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in labels.items())
    return "{" + pairs + "}"


def _histogram_lines(name: str, snapshot: Mapping[str, object],
                     labels: Mapping[str, object]) -> List[str]:
    """Cumulative ``le`` buckets from the registry's per-bucket counts.

    The registry stores ``{"le_<bound>": n, ..., "overflow": n}`` with
    each ``n`` counting observations that landed *in that bucket*;
    Prometheus buckets are cumulative, so we running-sum in ascending
    bound order and top off with ``+Inf`` at the total count.
    """
    buckets = snapshot.get("buckets") or {}
    bounds: List[Tuple[float, int]] = []
    for key, count in buckets.items():  # type: ignore[union-attr]
        if key == "overflow":
            continue
        try:
            bound = float(str(key)[len("le_"):])
        except ValueError:
            continue
        bounds.append((bound, int(count)))  # type: ignore[arg-type]
    bounds.sort(key=lambda item: item[0])
    lines: List[str] = []
    cumulative = 0
    for bound, count in bounds:
        cumulative += count
        bucket_labels = dict(labels)
        bucket_labels["le"] = _format_value(bound)
        lines.append(f"{name}_bucket{_label_string(bucket_labels)} "
                     f"{cumulative}")
    total_count = int(snapshot.get("count", 0))  # type: ignore[arg-type]
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append(f"{name}_bucket{_label_string(inf_labels)} "
                 f"{total_count}")
    total = snapshot.get("total", 0.0)
    lines.append(f"{name}_sum{_label_string(labels)} "
                 f"{_format_value(total)}")
    lines.append(f"{name}_count{_label_string(labels)} {total_count}")
    return lines


def render_prometheus(
    snapshot: Mapping[str, Mapping[str, object]],
    prefix: str = "repro_",
    labels: Optional[Mapping[str, object]] = None,
    help_text: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a registry snapshot as a text exposition document.

    ``labels`` (if given) are attached to every sample — constant
    labels such as the workload/config of a ``repro metrics`` run.
    ``help_text`` maps *dotted* registry names to HELP strings; the
    default help names the source metric.
    """
    labels = dict(labels or {})
    for label_name in labels:
        if not _LABEL_NAME_RE.match(label_name):
            raise ValueError(f"invalid label name: {label_name!r}")
    lines: List[str] = []
    for dotted in sorted(snapshot):
        entry = snapshot[dotted]
        kind = str(entry.get("type", "untyped"))
        base = sanitize_metric_name(dotted, prefix=prefix)
        name = base + "_total" if kind == "counter" else base
        help_string = (help_text or {}).get(
            dotted, f"repro {kind} metric {dotted!r}")
        if kind == "histogram":
            lines.append(f"# HELP {base} {escape_help(help_string)}")
            lines.append(f"# TYPE {base} histogram")
            lines.extend(_histogram_lines(base, entry, labels))
        elif kind in ("counter", "gauge"):
            lines.append(f"# HELP {name} {escape_help(help_string)}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name}{_label_string(labels)} "
                         f"{_format_value(entry.get('value', 0))}")
        else:
            lines.append(f"# HELP {name} {escape_help(help_string)}")
            lines.append(f"# TYPE {name} untyped")
            lines.append(f"{name}{_label_string(labels)} "
                         f"{_format_value(entry.get('value', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def _sample_base(metric_name: str) -> str:
    """The family a sample belongs to (strip histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if metric_name.endswith(suffix):
            return metric_name[: -len(suffix)]
    return metric_name


def lint_prometheus(text: str) -> List[str]:
    """Regex-lint an exposition document; returns a list of problems.

    Checks line syntax (comments, samples, labels), that every sample
    belongs to a ``# TYPE``-declared family, that no family declares
    ``TYPE`` twice, and that declared types are legal.  Empty output
    (no metrics) is considered a problem — an exporter that rendered
    nothing is broken, not clean.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    sample_count = 0
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = _COMMENT_RE.match(line)
            if match is None:
                problems.append(f"line {number}: malformed comment: "
                                f"{line!r}")
                continue
            keyword, name, rest = match.groups()
            if keyword == "TYPE":
                declared = (rest or "").strip()
                if declared not in _VALID_TYPES:
                    problems.append(f"line {number}: invalid TYPE "
                                    f"{declared!r} for {name}")
                if name in typed:
                    problems.append(f"line {number}: duplicate TYPE "
                                    f"for {name}")
                typed[name] = declared
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {number}: malformed sample: {line!r}")
            continue
        sample_count += 1
        metric_name, label_block, value, _ts = match.groups()
        if label_block:
            body = label_block[1:-1].strip()
            if body:
                for pair in re.split(r",\s*", body):
                    if not _LABEL_PAIR_RE.match(pair.strip()):
                        problems.append(
                            f"line {number}: malformed label pair "
                            f"{pair!r}")
        family = _sample_base(metric_name)
        if family not in typed and metric_name not in typed:
            problems.append(f"line {number}: sample {metric_name!r} "
                            f"has no TYPE declaration")
        try:
            if value not in ("+Inf", "-Inf", "Inf", "NaN"):
                float(value)
        except ValueError:
            problems.append(f"line {number}: bad sample value "
                            f"{value!r}")
    if sample_count == 0:
        problems.append("no samples in exposition")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """Lint a file (or stdin with ``-``); the CI entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.telemetry.prometheus FILE|-",
              file=sys.stderr)
        return 2
    if argv[0] == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(argv[0], "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"prometheus-lint: cannot read {argv[0]}: {exc}",
                  file=sys.stderr)
            return 2
    problems = lint_prometheus(text)
    if problems:
        for problem in problems:
            print(f"prometheus-lint: {problem}", file=sys.stderr)
        return 1
    samples = sum(1 for line in text.splitlines()
                  if line.strip() and not line.startswith("#"))
    print(f"prometheus-lint: OK ({samples} samples)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
