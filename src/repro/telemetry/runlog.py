"""Structured JSONL campaign run-log.

The :class:`~repro.analysis.runner.ExperimentRunner` appends one JSON
object per line to the run-log as a campaign executes: task lifecycle
(``submit``/``start``/``cache_hit``/``finish``), failure handling
(``retry``/``timeout``/``quarantine``/``pool_restart``), campaign
bracketing (``campaign_start``/``campaign_end``) and periodic
``heartbeat`` progress records.  Every record carries ``event``, a
wall-clock timestamp ``t`` (epoch seconds) and ``elapsed`` (seconds
since the log was opened); event-specific required fields are listed
in :data:`EVENT_FIELDS` and enforced by :func:`validate_event`.

Lines are flushed as written, so a log tailed mid-campaign (or left by
a crashed one) is always a valid prefix; :func:`read_run_log` skips a
torn final line rather than raising.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: event name -> required event-specific fields (beyond event/t/elapsed).
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "campaign_start": ("tasks", "pending", "jobs", "mode"),
    "submit": ("key", "workload", "config", "seed", "attempt"),
    "start": ("key", "workload", "config", "seed", "attempt"),
    "cache_hit": ("key", "workload", "config", "seed"),
    "finish": ("key", "workload", "config", "seed", "attempt",
               "seconds", "worker"),
    "retry": ("key", "attempt", "kind", "error"),
    "timeout": ("key", "attempt", "timeout_s"),
    "quarantine": ("key", "kind", "error", "attempts"),
    "pool_restart": ("restarts",),
    "heartbeat": ("done", "total", "inflight", "queued",
                  "elapsed_s", "sims_per_sec", "eta_s"),
    "campaign_end": ("seconds", "simulations", "cache_hits", "retries",
                     "timeouts", "quarantined"),
    # cache health: a corrupt / unreadable / zero-byte disk-cache entry
    # was tolerated (treated as a miss) — see ExperimentRunner._load_disk
    "cache_warning": ("reason", "count"),
    # one lock-step group advanced N configs over a shared trace in a
    # single pass (see repro.core.lockstep); per-cell finish records
    # still follow, so tailers see the usual task lifecycle
    "lockstep": ("workload", "seed", "cells", "completed", "seconds"),
    # job-queue / serving lifecycle (repro.serve; see docs/serving.md).
    # The durable queue journal reuses this writer, so replay after a
    # crash goes through the same torn-tail-tolerant read_run_log.
    "job_enqueue": ("job_id", "tenant", "priority", "cells"),
    "job_dispatch": ("job_id", "priority"),
    "job_requeue": ("job_id", "reason"),
    "job_done": ("job_id", "ok", "failed_cells", "seconds"),
    "job_failed": ("job_id", "error"),
    "job_reject": ("tenant", "code", "reason"),
    "cell_repair": ("job_id", "seqs"),
    "serve_start": ("host", "port", "workers"),
    "serve_stop": ("drained", "requeued"),
    # a non-terminal job whose ordered results file was complete on disk
    # was recovered as done during journal replay (its job_done record
    # was torn off) instead of being double-run — see DurableJobQueue
    "job_recovered": ("job_id", "cells"),
    # the journal was atomically rewritten keeping only events for
    # non-terminal jobs (startup or explicit compact())
    "journal_compact": ("kept", "dropped"),
    # distributed campaigns (repro.distrib; see docs/robustness.md):
    # one shard of a sharded campaign starts/ends on this host
    "shard_start": ("shard", "of", "cells", "salt"),
    "shard_end": ("shard", "of", "completed", "failed"),
    # reconciliation lifecycle: detector diff -> repair plan -> repairs
    # executed -> re-verify, round by round until converged
    "reconcile_start": ("cells", "max_rounds"),
    "reconcile_round": ("round", "repairs", "damaged", "states"),
    "reconcile_end": ("converged", "rounds", "repaired"),
}

#: fields present on every record.
BASE_FIELDS = ("event", "t", "elapsed")

#: optional span-correlation fields any event may carry (repro.telemetry.
#: spans).  ``trace_id`` names the campaign-wide trace, ``span_id`` the
#: span this record belongs to and ``parent_id`` its parent span; the
#: runner stamps them on task-lifecycle events when tracing is enabled
#: so one campaign yields one reconstructable trace even across hosts.
TRACE_FIELDS = ("trace_id", "span_id", "parent_id")


def validate_event(record: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``record`` matches the event schema."""
    event = record.get("event")
    if event not in EVENT_FIELDS:
        raise ValueError(f"unknown run-log event: {event!r}")
    missing = [f for f in BASE_FIELDS + EVENT_FIELDS[event]
               if f not in record]
    if missing:
        raise ValueError(f"run-log {event} record missing {missing}")
    for field in TRACE_FIELDS:
        value = record.get(field)
        if value is not None and field in record \
                and not isinstance(value, str):
            raise ValueError(
                f"run-log {event} field {field!r} must be a string, "
                f"got {type(value).__name__}")


class RunLog:
    """Append-only JSONL writer for campaign events.

    Opened in append mode so successive campaigns through the same
    runner (or successive runners pointed at the same file) accumulate
    into one log.  Each :meth:`log` call writes and flushes one line.
    """

    def __init__(self, path: str):
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._opened = time.monotonic()

    def log(self, event: str, **fields: object) -> Dict[str, object]:
        record: Dict[str, object] = {
            "event": event,
            "t": round(time.time(), 3),
            "elapsed": round(time.monotonic() - self._opened, 3),
            **fields,
        }
        validate_event(record)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        return record

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: str,
               strict: bool = True) -> Tuple[List[object], int]:
    """Load a JSONL file; the one reader behind every log format here.

    ``strict=True`` mirrors the classic run-log contract: an unreadable
    file or a bad line mid-file raises, except that a torn *final* line
    (crashed writer) is silently dropped, matching the tolerance the
    result cache shows for truncated entries.  ``strict=False`` is the
    damage-tolerant mode reconciliation needs: an unreadable file is
    one skipped "line", and any undecodable or non-object line anywhere
    is skipped and counted rather than fatal.  Returns
    ``(records, skipped_lines)`` (``skipped_lines`` is always 0 in
    strict mode — a dropped torn tail is not counted).
    """
    records: List[object] = []
    skipped = 0
    try:
        lines = Path(path).read_text(
            encoding="utf-8", errors=None if strict else "replace"
        ).splitlines()
    except OSError:
        if strict:
            raise
        return [], 1
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            if strict:
                if index == len(lines) - 1:
                    break  # torn tail from an interrupted writer
                raise
            skipped += 1
            continue
        if not isinstance(record, dict) and not strict:
            skipped += 1
            continue
        records.append(record)
    return records, skipped


def read_run_log(path: str,
                 event: Optional[str] = None,
                 strict: bool = True) -> List[Dict[str, object]]:
    """Load a run-log; optionally filter to one event type.

    Thin wrapper over :func:`read_jsonl`; ``strict=False`` switches to
    the damage-tolerant parse (skipped-line count discarded — use
    :func:`read_run_log_tolerant` to keep it).
    """
    records, _ = read_jsonl(path, strict=strict)
    if event is not None:
        records = [r for r in records
                   if isinstance(r, dict) and r.get("event") == event]
    return records  # type: ignore[return-value]


def read_run_log_tolerant(
    path: str,
) -> Tuple[List[Dict[str, object]], int]:
    """Load as much of a (possibly damaged) run-log as parses.

    Unlike :func:`read_run_log` — which only forgives a torn *final*
    line — this skips any undecodable or non-object line wherever it
    sits and reports how many were dropped.  The reconciliation
    detector uses it: a run-log corrupted mid-campaign (chaos, disk
    faults) must still yield every surviving record, because the holes
    the corruption tore are exactly what reconciliation goes on to
    repair from the other two sources (expected matrix + disk cache).
    Returns ``(records, skipped_lines)``; a thin wrapper over
    :func:`read_jsonl` with ``strict=False``.
    """
    records, skipped = read_jsonl(path, strict=False)
    return records, skipped  # type: ignore[return-value]
