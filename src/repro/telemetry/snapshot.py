"""Pipeline state snapshots for post-mortem diagnosis.

When the forward-progress watchdog trips (see
:class:`~repro.core.pipeline.DeadlockError`) the raising pipeline is
still intact, so instead of a bare "no commit since cycle N" we can
capture *why* the machine is wedged: the ROB-head µop and exactly which
of its dependences are outstanding, per-IQ occupancy and head ops,
wakeup-scoreboard and LFST state, and the stall-attribution totals when
the run carried a :class:`~repro.telemetry.attribution.StallAttribution`.

The snapshot is a plain JSON-serialisable dict (so it survives pickling
across the parallel runner's process boundary) and
:func:`render_snapshot` turns it into the human-readable block the CLI
and failure reports print.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Cap on list-valued snapshot sections (LFST entries, queue heads, ...)
#: so a pathological state cannot balloon the pickled exception.
_MAX_ITEMS = 16


def _op_info(pipe, ifop) -> Dict:
    """One µop's wedge-relevant state (everything JSON-safe)."""
    waiting_on: List[int] = []
    for preg in ifop.src_pregs:
        if not pipe.ready.is_ready(preg, pipe.cycle):
            waiting_on.append(preg)
    return {
        "seq": ifop.seq,
        "pc": ifop.op.pc,
        "opcode": ifop.opcode.name,
        "klass": ifop.klass,
        "port": ifop.port,
        "issued": ifop.issued,
        "completed": ifop.completed,
        "dispatch_cycle": ifop.dispatch_cycle,
        "dest_preg": ifop.dest_preg,
        "src_pregs": list(ifop.src_pregs),
        "pregs_not_ready": waiting_on,
        "wake_pending": ifop.wake_pending,
        "mdp_waiting": ifop.mdp_waiting,
        "mdp_dep_seq": ifop.mdp_dep_seq,
    }


def _iq_details(scheduler) -> List[Dict]:
    """Best-effort per-IQ occupancy/head introspection.

    Duck-typed over the scheduler zoo: Ballerino (``siq`` + ``piqs`` of
    :class:`~repro.sched.piq.SharedPIQ`), CES (``piqs`` of deques),
    CASINO (``queues``), the FIFO/unified designs (``_queue`` /
    ``_slots``).  Unknown shapes degrade to the total occupancy only.
    """
    queues: List[Dict] = []

    def head_seqs(deq) -> List[int]:
        return [deq[0].seq] if deq else []

    siq = getattr(scheduler, "siq", None)
    if siq is not None and hasattr(siq, "__len__"):
        queues.append({"name": "siq", "occupancy": len(siq),
                       "heads": head_seqs(siq)})
    for index, piq in enumerate(getattr(scheduler, "piqs", ()) or ()):
        if hasattr(piq, "partitions"):  # Ballerino SharedPIQ
            queues.append({
                "name": f"piq{index}",
                "occupancy": piq.occupancy(),
                "sharing": piq.sharing,
                "heads": [op.seq for _, op in piq.active_heads()],
            })
        else:  # CES: plain deque
            queues.append({"name": f"piq{index}", "occupancy": len(piq),
                           "heads": head_seqs(piq)})
    for index, queue in enumerate(getattr(scheduler, "queues", ()) or ()):
        queues.append({"name": f"q{index}", "occupancy": len(queue),
                       "heads": head_seqs(queue)})
    fifo = getattr(scheduler, "_queue", None)
    if fifo is not None:
        queues.append({"name": "iq", "occupancy": len(fifo),
                       "heads": head_seqs(fifo)})
    slots = getattr(scheduler, "_slots", None)
    if slots is not None:
        resident = [op for op in slots if op is not None]
        resident.sort(key=lambda op: op.seq)
        queues.append({
            "name": "iq",
            "occupancy": len(resident),
            "heads": [op.seq for op in resident[:1]],
        })
    return queues[:_MAX_ITEMS]


def _lfst_state(mdp) -> List[Dict]:
    """Valid LFST entries (store-set serialisation / steering state)."""
    entries: List[Dict] = []
    for ssid, entry in sorted(getattr(mdp, "_lfst", {}).items()):
        if not entry.valid:
            continue
        entries.append({
            "ssid": ssid,
            "store_seq": entry.store_seq,
            "store_pc": entry.store_pc,
            "iq_index": entry.iq_index,
            "partition": entry.partition,
            "reserved": entry.reserved,
            "reserved_by": entry.reserved_by,
        })
        if len(entries) >= _MAX_ITEMS:
            break
    return entries


def capture_snapshot(pipe, reason: str = "") -> Dict:
    """Capture a wedged (or merely interesting) pipeline's state.

    Every value is a JSON-native type, so the result can ride inside a
    pickled exception or a ``FailedResult`` without dragging live
    simulator objects along.
    """
    head = pipe.rob.head
    snap: Dict = {
        "reason": reason,
        "workload": pipe.trace.name,
        "config": pipe.config.name,
        "cycle": pipe.cycle,
        "committed": pipe.commit_count,
        "fetched": pipe.stats.fetched,
        "issued": pipe.stats.issued,
        "trace_ops": len(pipe.trace),
        "fetch_index": pipe.fetch_index,
        "fetch_resume_at": pipe.fetch_resume_at,
        "pending_redirect": pipe.pending_redirect,
        "rob": {
            "occupancy": len(pipe.rob),
            "size": pipe.config.rob_size,
            "head": _op_info(pipe, head) if head is not None else None,
        },
        "decode_queue": len(pipe.decode_queue),
        "dispatch_queue": len(pipe.dispatch_queue),
        "lsq": {
            "lq": pipe.lsu.lq_occupancy, "lq_size": pipe.config.lq_size,
            "sq": pipe.lsu.sq_occupancy, "sq_size": pipe.config.sq_size,
        },
        "scheduler": {
            "kind": pipe.scheduler.kind,
            "occupancy": pipe.scheduler.occupancy(),
            "queues": _iq_details(pipe.scheduler),
        },
        "wakeup_scoreboard": {
            "pregs_with_waiters": len(pipe.wakeup._consumers),
            "mdp_waiter_stores": sorted(pipe.wakeup._mdp_waiters)[:_MAX_ITEMS],
            "broadcasts": pipe.wakeup.broadcasts,
            "wakeups": pipe.wakeup.wakeups,
        },
        "lfst": _lfst_state(pipe.mdp) if pipe.mdp is not None else [],
        "pending_events": len(pipe._events),
        # aggregate over the structure-of-arrays op table (numpy fast
        # path when available; see repro.core.optable.OpTable.summary)
        "op_table": pipe.ops.summary(),
    }
    if pipe.attribution is not None:
        snap["stall_cycles"] = pipe.attribution.totals()
    return snap


def describe_head(snapshot: Dict) -> str:
    """One line naming the stuck ROB-head µop (or the empty-ROB state)."""
    head = snapshot.get("rob", {}).get("head")
    if head is None:
        return (
            "ROB empty (front end wedged: fetch_index="
            f"{snapshot.get('fetch_index')}, "
            f"fetch_resume_at={snapshot.get('fetch_resume_at')}, "
            f"pending_redirect={snapshot.get('pending_redirect')})"
        )
    state = "completed" if head["completed"] else (
        "issued" if head["issued"] else "waiting"
    )
    detail = ""
    if not head["issued"]:
        blockers = []
        if head["pregs_not_ready"]:
            blockers.append(f"pregs {head['pregs_not_ready']} not ready")
        if head["mdp_waiting"]:
            blockers.append(f"MDP dep on store seq {head['mdp_dep_seq']}")
        detail = f" ({'; '.join(blockers)})" if blockers else " (ready, never selected)"
    return (
        f"ROB head seq={head['seq']} pc={head['pc']} "
        f"op={head['opcode']} [{state}]{detail}"
    )


def render_snapshot(snapshot: Dict) -> str:
    """Render a captured snapshot as the report block the CLI prints."""
    lines: List[str] = []
    add = lines.append
    add(f"pipeline snapshot: {snapshot['workload']}/{snapshot['config']} "
        f"@ cycle {snapshot['cycle']}")
    if snapshot.get("reason"):
        add(f"  reason: {snapshot['reason']}")
    add(f"  progress: committed {snapshot['committed']}/"
        f"{snapshot['trace_ops']}, fetched {snapshot['fetched']}, "
        f"issued {snapshot['issued']}")
    add("  " + describe_head(snapshot))
    rob = snapshot["rob"]
    lsq = snapshot["lsq"]
    add(f"  rob {rob['occupancy']}/{rob['size']}  "
        f"lq {lsq['lq']}/{lsq['lq_size']}  sq {lsq['sq']}/{lsq['sq_size']}  "
        f"decode_q {snapshot['decode_queue']}  "
        f"dispatch_q {snapshot['dispatch_queue']}")
    sched = snapshot["scheduler"]
    add(f"  scheduler[{sched['kind']}] occupancy {sched['occupancy']}")
    for queue in sched["queues"]:
        heads = ",".join(str(s) for s in queue["heads"]) or "-"
        sharing = " sharing" if queue.get("sharing") else ""
        add(f"    {queue['name']}: {queue['occupancy']} entries, "
            f"head seq {heads}{sharing}")
    scoreboard = snapshot["wakeup_scoreboard"]
    add(f"  wakeup scoreboard: {scoreboard['pregs_with_waiters']} pregs "
        f"with waiters, mdp-waiter stores "
        f"{scoreboard['mdp_waiter_stores'] or '-'}")
    if snapshot["lfst"]:
        add("  lfst:")
        for entry in snapshot["lfst"]:
            add(f"    ssid {entry['ssid']}: store seq {entry['store_seq']} "
                f"pc {entry['store_pc']} iq {entry['iq_index']} "
                f"reserved={entry['reserved']}")
    if "stall_cycles" in snapshot:
        total = sum(snapshot["stall_cycles"].values()) or 1
        parts = ", ".join(
            f"{k} {100.0 * v / total:.0f}%"
            for k, v in snapshot["stall_cycles"].items() if v
        )
        add(f"  stall attribution: {parts}")
    table = snapshot.get("op_table")
    if table:
        add(f"  op table: {table['live']}/{table['capacity']} live "
            f"({table['issued']} issued, {table['completed']} completed, "
            f"{table['waiting_sources']} waiting on sources, "
            f"{table['waiting_mdp']} on MDP)")
    add(f"  pending completion events: {snapshot['pending_events']}")
    return "\n".join(lines)
