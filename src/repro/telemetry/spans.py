"""Correlation-ID span tracing across the whole campaign stack.

A *span* is one timed unit of work — a campaign, a shard, a serve job,
one cell's simulation, or a single sampled-simulation phase — carrying
a ``trace_id`` shared by every span of one campaign, its own
``span_id`` and its ``parent_id``.  Spans stream to a JSONL file as
they finish (same torn-tail-tolerant format as the run-log), so a
crashed campaign still leaves a readable prefix, and per-shard span
files written on different hosts merge into one tree afterwards.

Two properties make the cross-host story work without coordination,
mirroring the salted-hash sharding of :mod:`repro.distrib`:

* **Deterministic ids** — :func:`derive_trace_id` /
  :func:`derive_span_id` hash stable inputs (the campaign manifest, a
  shard index, a cell cache key), so two hosts independently agree on
  the id of the same logical span and a merged trace dedupes cleanly.
* **Nullability** — like the cycle-level tracer, every instrumentation
  site holds an ``Optional[SpanRecorder]`` guarded by one ``is not
  None`` branch; tracing off (the default) costs nothing measurable on
  the hot path.

Exporters: :func:`read_spans` / :func:`merge_span_files` rebuild the
tree from JSONL, :func:`span_tree` indexes it, and
:func:`spans_to_chrome` renders the merged campaign as Chrome
trace-event JSON with collision-free pid/tid assignment across shards
(one pid per shard/job, greedy lane packing within it — the same
packing idiom as :mod:`repro.telemetry.export`).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, NamedTuple, Optional,
                    Sequence, Tuple, Union)

from .runlog import read_jsonl

#: span ids are 16 lowercase hex chars (64 bits); trace ids the same.
ID_HEX_CHARS = 16

_HEX = set("0123456789abcdef")


def _is_id(value: object) -> bool:
    return (isinstance(value, str) and 0 < len(value) <= 64
            and all(c in _HEX for c in value))


def _digest(*parts: object) -> str:
    payload = hashlib.sha256()
    for part in parts:
        payload.update(str(part).encode("utf-8"))
        payload.update(b"\x00")
    return payload.hexdigest()[:ID_HEX_CHARS]


def new_trace_id() -> str:
    """A fresh random trace id (for ad-hoc, non-derivable traces)."""
    return uuid.uuid4().hex[:ID_HEX_CHARS]


def new_span_id() -> str:
    """A fresh random span id."""
    return uuid.uuid4().hex[:ID_HEX_CHARS]


def derive_trace_id(*parts: object) -> str:
    """Deterministic trace id from stable inputs (e.g. a manifest)."""
    return _digest("trace", *parts)


def derive_span_id(trace_id: str, *parts: object) -> str:
    """Deterministic span id within ``trace_id`` from stable inputs.

    Shards on different hosts derive identical ids for the same
    logical span (``derive_span_id(tid, "cell", key)``), which is what
    lets :func:`merge_span_files` deduplicate a cross-host campaign.
    """
    return _digest("span", trace_id, *parts)


class SpanContext(NamedTuple):
    """The propagatable part of a span: ``(trace_id, span_id)``.

    This is what crosses process and host boundaries — the serve wire
    protocol's optional ``trace`` field, the runner's ``trace_ctx``,
    the shard environment — so children created elsewhere still parent
    correctly.
    """

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanContext":
        if not isinstance(payload, dict):
            raise ValueError(f"span context must be an object, "
                             f"got {type(payload).__name__}")
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not _is_id(trace_id) or not _is_id(span_id):
            raise ValueError(
                f"span context needs hex trace_id/span_id, got {payload!r}")
        return cls(str(trace_id), str(span_id))


@dataclass
class Span:
    """One timed unit of work inside a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start_t: float = 0.0
    end_t: Optional[float] = None
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> Optional[float]:
        if self.end_t is None:
            return None
        return max(0.0, self.end_t - self.start_t)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_t": round(self.start_t, 6),
            "end_t": None if self.end_t is None else round(self.end_t, 6),
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Span":
        if not _is_id(record.get("trace_id")) \
                or not _is_id(record.get("span_id")):
            raise ValueError(f"span record needs hex ids: {record!r}")
        parent = record.get("parent_id")
        if parent is not None and not _is_id(parent):
            raise ValueError(f"span parent_id must be hex: {parent!r}")
        attrs = record.get("attrs") or {}
        if not isinstance(attrs, dict):
            raise ValueError(f"span attrs must be an object: {attrs!r}")
        end_t = record.get("end_t")
        return cls(
            name=str(record.get("name", "")),
            trace_id=str(record["trace_id"]),
            span_id=str(record["span_id"]),
            parent_id=None if parent is None else str(parent),
            start_t=float(record.get("start_t", 0.0)),
            end_t=None if end_t is None else float(end_t),
            status=str(record.get("status", "ok")),
            attrs=dict(attrs),
        )


ParentLike = Union[Span, SpanContext, None]


def _parent_context(parent: ParentLike) -> Optional[SpanContext]:
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.context
    return parent


class SpanRecorder:
    """Collects finished spans, optionally streaming them to JSONL.

    Thread-safe (the serve pool finishes shards from worker threads).
    Spans are written when *finished* — :meth:`finish` or
    :meth:`record` — one sorted-keys JSON object per line, flushed, so
    tailers and crashed campaigns see a valid prefix.  In-memory
    ``spans`` keeps everything recorded through this instance for
    in-process exporters and tests.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = Path(path) if path else None
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._fh = None
        if self.path is not None:
            if self.path.parent and not self.path.parent.exists():
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")

    def start(self, name: str, parent: ParentLike = None,
              trace_id: Optional[str] = None,
              span_id: Optional[str] = None,
              **attrs: object) -> Span:
        """Open a span (clock starts now); finish it to persist it."""
        context = _parent_context(parent)
        if trace_id is None:
            trace_id = context.trace_id if context else new_trace_id()
        return Span(
            name=name, trace_id=trace_id,
            span_id=span_id or new_span_id(),
            parent_id=context.span_id if context else None,
            start_t=time.time(), attrs=dict(attrs),
        )

    def finish(self, span: Span, status: str = "ok",
               **attrs: object) -> Span:
        """Close ``span`` (clock stops now) and persist it."""
        span.end_t = time.time()
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self._write(span)
        return span

    def record(self, name: str, parent: ParentLike = None,
               start_t: float = 0.0, end_t: float = 0.0,
               status: str = "ok", trace_id: Optional[str] = None,
               span_id: Optional[str] = None, **attrs: object) -> Span:
        """Persist an already-timed span (parallel workers report
        their own wall-clock bracket; the parent process records it)."""
        context = _parent_context(parent)
        if trace_id is None:
            trace_id = context.trace_id if context else new_trace_id()
        span = Span(
            name=name, trace_id=trace_id,
            span_id=span_id or new_span_id(),
            parent_id=context.span_id if context else None,
            start_t=start_t, end_t=end_t, status=status,
            attrs=dict(attrs),
        )
        self._write(span)
        return span

    @contextmanager
    def span(self, name: str, parent: ParentLike = None,
             span_id: Optional[str] = None,
             **attrs: object) -> Iterator[Span]:
        """``with recorder.span(...) as s:`` — error status on raise."""
        open_span = self.start(name, parent=parent, span_id=span_id,
                               **attrs)
        try:
            yield open_span
        except BaseException:
            self.finish(open_span, status="error")
            raise
        self.finish(open_span)

    def _write(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)
            if self._fh is not None and not self._fh.closed:
                self._fh.write(json.dumps(span.to_dict(), sort_keys=True)
                               + "\n")
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "SpanRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_spans(path: str) -> List[Span]:
    """Load a spans-JSONL file, skipping damaged lines and records."""
    records, _ = read_jsonl(path, strict=False)
    spans: List[Span] = []
    for record in records:
        try:
            spans.append(Span.from_dict(record))  # type: ignore[arg-type]
        except (ValueError, KeyError, TypeError):
            continue
    return spans


def merge_spans(spans: Iterable[Span]) -> List[Span]:
    """Deduplicate by ``(trace_id, span_id)``, preferring finished.

    Deterministically-derived ids mean a repaired / re-run cell (or a
    shard retried on another host) shows up more than once; the later
    finished observation wins, so the merged trace holds every logical
    span exactly once.  Sorted by start time for stable output.
    """
    best: Dict[Tuple[str, str], Span] = {}
    for span in spans:
        key = (span.trace_id, span.span_id)
        current = best.get(key)
        if current is None:
            best[key] = span
            continue
        finished = span.end_t is not None
        current_finished = current.end_t is not None
        if finished and not current_finished:
            best[key] = span
        elif finished and current_finished \
                and span.end_t > current.end_t:  # type: ignore[operator]
            best[key] = span
    return sorted(best.values(),
                  key=lambda s: (s.start_t, s.span_id))


def merge_span_files(paths: Sequence[str]) -> List[Span]:
    """Merge per-shard / per-host span files into one deduped list."""
    collected: List[Span] = []
    for path in paths:
        collected.extend(read_spans(path))
    return merge_spans(collected)


def write_spans(spans: Iterable[Span], path: str) -> Path:
    """Write spans as JSONL (the merged-trace artifact)."""
    target = Path(path)
    lines = [json.dumps(span.to_dict(), sort_keys=True) for span in spans]
    target.write_text("\n".join(lines) + ("\n" if lines else ""),
                      encoding="utf-8")
    return target


def span_tree(spans: Iterable[Span]) -> Dict[Optional[str],
                                             List[Span]]:
    """Index spans as ``parent_id -> children`` (roots under ``None``).

    A span whose ``parent_id`` names a span not in the set is treated
    as a root rather than dropped — a merged trace missing one shard
    file still renders.
    """
    ordered = sorted(spans, key=lambda s: (s.start_t, s.span_id))
    known = {span.span_id for span in ordered}
    tree: Dict[Optional[str], List[Span]] = {}
    for span in ordered:
        parent = span.parent_id if span.parent_id in known else None
        tree.setdefault(parent, []).append(span)
    return tree


def _process_of(span: Span, by_id: Dict[str, Span]) -> str:
    """The pid-group anchor: the topmost non-root ancestor.

    Each child of the trace root (a shard, a serve job) becomes its
    own Chrome "process", so two shards' overlapping cells never share
    lanes; the root itself and orphans map to the root group.
    """
    current = span
    seen = set()
    while current.parent_id is not None \
            and current.parent_id in by_id \
            and current.span_id not in seen:
        seen.add(current.span_id)
        parent = by_id[current.parent_id]
        if parent.parent_id is None or parent.parent_id not in by_id:
            return current.span_id  # child of a root -> group anchor
        current = parent
    return ""  # root / orphan group


def spans_to_chrome(spans: Iterable[Span],
                    path: Optional[str] = None) -> Dict[str, object]:
    """Render a (merged) span list as Chrome trace-event JSON.

    Collision-free pid/tid across shards: every child of the trace
    root anchors one pid (named after it via "M" metadata events) and
    spans inside a pid pack greedily onto tids, reusing the lowest
    lane free at their start — the same packing as
    :func:`repro.telemetry.export.write_chrome_trace`.  One second of
    wall clock maps to one second of trace time (µs units).
    """
    merged = merge_spans(spans)
    if not merged:
        document: Dict[str, object] = {"traceEvents": [],
                                       "displayTimeUnit": "ms"}
        if path is not None:
            Path(path).write_text(json.dumps(document), encoding="utf-8")
        return document
    index = {span.span_id: span for span in merged}
    t0 = min(span.start_t for span in merged)
    horizon = max([span.start_t for span in merged]
                  + [span.end_t for span in merged
                     if span.end_t is not None])
    groups: Dict[str, int] = {}
    events: List[Dict[str, object]] = []
    lanes: Dict[int, List[float]] = {}

    def pid_of(anchor: str) -> int:
        if anchor not in groups:
            groups[anchor] = len(groups)
            label = "trace root" if not anchor else \
                f"{index[anchor].name} [{anchor}]"
            events.append({"ph": "M", "pid": groups[anchor], "tid": 0,
                           "name": "process_name",
                           "args": {"name": label}})
        return groups[anchor]

    for span in merged:
        anchor = _process_of(span, index)
        pid = pid_of(anchor)
        start = span.start_t
        end = span.end_t if span.end_t is not None else horizon
        end = max(end, start)
        busy = lanes.setdefault(pid, [])
        for tid, busy_until in enumerate(busy):
            if busy_until <= start + 1e-9:
                break
        else:
            tid = len(busy)
            busy.append(0.0)
        busy[tid] = end
        args: Dict[str, object] = {"span_id": span.span_id,
                                   "trace_id": span.trace_id,
                                   "status": span.status}
        if span.parent_id:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append({
            "name": span.name, "cat": "span", "ph": "X",
            "ts": round((start - t0) * 1e6, 3),
            "dur": round((end - start) * 1e6, 3),
            "pid": pid, "tid": tid, "args": args,
        })
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.telemetry.spans",
                      "spans": len(merged)},
    }
    if path is not None:
        Path(path).write_text(json.dumps(document), encoding="utf-8")
    return document
