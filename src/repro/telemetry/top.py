"""``repro top``: a live terminal monitor for campaigns and daemons.

Tails one or more JSONL run-logs (a local campaign, a distributed
campaign's per-shard logs) and/or polls a ``repro serve`` daemon's
``/healthz`` + ``/metricsz`` endpoints, folding everything into one
:class:`TopModel` and rendering a compact text frame: campaign
progress, sims/sec and ETA, per-worker throughput, shard health,
queue lane depths, cache health and daemon status.

The model/renderer split keeps it scriptable and testable:
:meth:`TopModel.feed_records` / :meth:`feed_health` /
:meth:`feed_metrics` consume raw inputs, :func:`render_top` is a pure
function of the model, and ``repro top --once`` prints a single frame
and exits (the CI smoke job greps it).  The live loop redraws with
plain ANSI clear codes — no curses dependency.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, TextIO, Tuple

#: run-log events that mean "one cell finished" for throughput math.
_FINISH_EVENTS = ("finish",)


class LogTail:
    """Incremental reader for a growing JSONL file.

    Remembers its byte offset between polls, returns only complete new
    lines (a torn tail stays buffered until the writer finishes it)
    and tolerates damaged lines and vanished/truncated files — a
    monitor must never crash the thing it is watching.
    """

    def __init__(self, path: str):
        self.path = Path(path)
        self._offset = 0

    def poll(self) -> List[Dict[str, object]]:
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self._offset:  # truncated/rotated: start over
            self._offset = 0
        try:
            with open(self.path, "r", encoding="utf-8",
                      errors="replace") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return []
        if not chunk:
            return []
        complete, _, partial = chunk.rpartition("\n")
        if not complete and partial:
            return []  # one incomplete line so far
        self._offset += len(chunk.encode("utf-8")) \
            - len(partial.encode("utf-8"))
        records: List[Dict[str, object]] = []
        for line in complete.split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(record, dict):
                records.append(record)
        return records


class TopModel:
    """Folds run-log records and daemon polls into displayable state."""

    def __init__(self, window_s: float = 60.0):
        self.window_s = window_s
        self.total_cells: Optional[int] = None
        self.heartbeat: Optional[Dict[str, object]] = None
        self.finished = 0
        self.cache_hits = 0
        self.quarantined = 0
        self.retries = 0
        self.timeouts = 0
        self.cache_warnings = 0
        self.campaign_done: Optional[Dict[str, object]] = None
        self.workers: Dict[str, Dict[str, float]] = {}
        self.shards: Dict[Tuple[int, int], Dict[str, object]] = {}
        self.reconcile: Optional[Dict[str, object]] = None
        self.finish_times: Deque[float] = deque()
        self.health: Optional[Dict[str, object]] = None
        self.metrics: Optional[Dict[str, Dict[str, object]]] = None
        self.server_error: Optional[str] = None
        self.last_event_t: Optional[float] = None

    # ----------------------------------------------------------------
    # inputs

    def feed_records(self, records: Sequence[Dict[str, object]]) -> None:
        for record in records:
            event = record.get("event")
            t = record.get("t")
            if isinstance(t, (int, float)):
                self.last_event_t = max(self.last_event_t or 0.0,
                                        float(t))
            if event == "campaign_start":
                tasks = record.get("tasks")
                if isinstance(tasks, int):
                    self.total_cells = max(self.total_cells or 0, tasks)
            elif event == "heartbeat":
                self.heartbeat = dict(record)
            elif event == "finish":
                self.finished += 1
                worker = str(record.get("worker", "?"))
                stats = self.workers.setdefault(
                    worker, {"finished": 0.0, "seconds": 0.0})
                stats["finished"] += 1
                seconds = record.get("seconds")
                if isinstance(seconds, (int, float)):
                    stats["seconds"] += float(seconds)
                if isinstance(t, (int, float)):
                    self.finish_times.append(float(t))
            elif event == "cache_hit":
                self.cache_hits += 1
            elif event == "quarantine":
                self.quarantined += 1
            elif event == "retry":
                self.retries += 1
            elif event == "timeout":
                self.timeouts += 1
            elif event == "cache_warning":
                count = record.get("count")
                self.cache_warnings = max(
                    self.cache_warnings,
                    count if isinstance(count, int) else
                    self.cache_warnings + 1)
            elif event == "campaign_end":
                self.campaign_done = dict(record)
            elif event == "shard_start":
                key = (int(record.get("shard", 0)),   # type: ignore
                       int(record.get("of", 0)))      # type: ignore
                self.shards[key] = {
                    "state": "running",
                    "cells": record.get("cells", 0),
                    "completed": 0, "failed": 0,
                }
            elif event == "shard_end":
                key = (int(record.get("shard", 0)),   # type: ignore
                       int(record.get("of", 0)))      # type: ignore
                shard = self.shards.setdefault(
                    key, {"cells": record.get("completed", 0)})
                shard["state"] = "done"
                shard["completed"] = record.get("completed", 0)
                shard["failed"] = record.get("failed", 0)
            elif event in ("reconcile_start", "reconcile_round",
                           "reconcile_end"):
                current = self.reconcile or {}
                current.update({k: v for k, v in record.items()
                                if k not in ("t", "elapsed")})
                self.reconcile = current
        while len(self.finish_times) > 1 and \
                self.finish_times[-1] - self.finish_times[0] \
                > self.window_s:
            self.finish_times.popleft()

    def feed_health(self, health: Optional[Dict[str, object]],
                    error: Optional[str] = None) -> None:
        self.health = health
        self.server_error = error

    def feed_metrics(
            self,
            snapshot: Optional[Dict[str, Dict[str, object]]]) -> None:
        self.metrics = snapshot

    # ----------------------------------------------------------------
    # derived

    def done(self) -> int:
        heartbeat = self.heartbeat
        if heartbeat and isinstance(heartbeat.get("done"), int):
            return max(int(heartbeat["done"]),   # type: ignore[arg-type]
                       self.finished + self.cache_hits)
        return self.finished + self.cache_hits

    def total(self) -> Optional[int]:
        # Shard events know the full split; campaign_start/heartbeat in
        # a shard's log only describe that shard's slice, so when
        # watching several shard logs the per-shard cell counts are the
        # only source that sums to the real matrix size.
        if self.shards:
            cells = 0
            for info in self.shards.values():
                count = info.get("cells") or info.get("completed") or 0
                cells += count if isinstance(count, int) else 0
            if cells:
                return cells
        heartbeat = self.heartbeat
        if heartbeat and isinstance(heartbeat.get("total"), int):
            return int(heartbeat["total"])  # type: ignore[arg-type]
        return self.total_cells

    def sims_per_sec(self) -> Optional[float]:
        heartbeat = self.heartbeat
        if heartbeat and isinstance(heartbeat.get("sims_per_sec"),
                                    (int, float)):
            return float(heartbeat["sims_per_sec"])  # type: ignore
        if len(self.finish_times) >= 2:
            elapsed = self.finish_times[-1] - self.finish_times[0]
            if elapsed > 0:
                return (len(self.finish_times) - 1) / elapsed
        return None

    def eta_s(self) -> Optional[float]:
        heartbeat = self.heartbeat
        if heartbeat and isinstance(heartbeat.get("eta_s"),
                                    (int, float)):
            return float(heartbeat["eta_s"])  # type: ignore[arg-type]
        total = self.total()
        rate = self.sims_per_sec()
        if total is None or rate is None or rate <= 0:
            return None
        return max(0.0, (total - self.done()) / rate)

    def queue_depths(self) -> Dict[str, float]:
        depths: Dict[str, float] = {}
        for name, entry in (self.metrics or {}).items():
            prefix = "serve.queue.depth."
            if name.startswith(prefix):
                value = entry.get("value", 0)
                if isinstance(value, (int, float)):
                    depths[name[len(prefix):]] = float(value)
        return depths

    def _metric_value(self, name: str) -> Optional[float]:
        entry = (self.metrics or {}).get(name)
        if entry is None:
            return None
        value = entry.get("value")
        return float(value) if isinstance(value, (int, float)) else None


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def _progress_bar(done: int, total: Optional[int],
                  width: int = 24) -> str:
    if not total:
        return "[" + "?" * width + "]"
    filled = min(width, int(round(width * done / total)))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_top(model: TopModel, now: Optional[float] = None,
               clock: Optional[str] = None) -> str:
    """One text frame of the monitor; pure function of the model."""
    now = time.time() if now is None else now
    clock = clock if clock is not None else \
        time.strftime("%H:%M:%S", time.localtime(now))
    lines: List[str] = [f"repro top · {clock}"]

    done = model.done()
    total = model.total()
    total_text = "?" if total is None else str(total)
    rate = model.sims_per_sec()
    rate_text = "--" if rate is None else f"{rate:.2f} sims/s"
    heartbeat = model.heartbeat or {}
    inflight = heartbeat.get("inflight", 0)
    queued = heartbeat.get("queued", 0)
    status = "done" if model.campaign_done else (
        "running" if (model.heartbeat or model.finished
                      or model.cache_hits) else "idle")
    lines.append(
        f"campaign  {_progress_bar(done, total)} {done}/{total_text} "
        f"· {status} · {inflight} in flight · {queued} queued")
    lines.append(
        f"rate      {rate_text} · ETA {_fmt_eta(model.eta_s())}")
    lines.append(
        f"cache     {model.cache_hits} hits · "
        f"{model.cache_warnings} warnings · "
        f"retries {model.retries} · timeouts {model.timeouts} · "
        f"quarantined {model.quarantined}")

    if model.workers:
        parts = []
        for worker in sorted(model.workers)[:6]:
            stats = model.workers[worker]
            count = int(stats["finished"])
            average = stats["seconds"] / count if count else 0.0
            parts.append(f"{worker}: {count} done ({average:.2f}s avg)")
        extra = len(model.workers) - 6
        if extra > 0:
            parts.append(f"+{extra} more")
        lines.append("workers   " + " · ".join(parts))

    if model.shards:
        parts = []
        for (shard, of) in sorted(model.shards):
            info = model.shards[(shard, of)]
            state = info.get("state", "?")
            if state == "done":
                parts.append(
                    f"{shard}/{of} done "
                    f"({info.get('completed', 0)} ok, "
                    f"{info.get('failed', 0)} failed)")
            else:
                parts.append(f"{shard}/{of} {state} "
                             f"({info.get('cells', '?')} cells)")
        lines.append("shards    " + " · ".join(parts))

    if model.reconcile is not None:
        info = model.reconcile
        converged = info.get("converged")
        state = ("converged" if converged else
                 "NOT converged" if converged is not None else
                 f"round {info.get('round', '?')}")
        lines.append(
            f"reconcile {state} · repairs {info.get('repairs', 0)} "
            f"· damaged {info.get('damaged', info.get('repaired', 0))}")

    if model.server_error is not None:
        lines.append(f"server    UNREACHABLE ({model.server_error})")
    elif model.health is not None:
        health = model.health
        jobs = health.get("jobs", {})
        if not isinstance(jobs, dict):
            jobs = {}
        lines.append(
            f"server    {health.get('status', '?')} · "
            f"uptime {_fmt_eta(health.get('uptime_s'))} "  # type: ignore
            f"· workers {health.get('workers', '?')} · jobs "
            f"{jobs.get('running', 0)} running / "
            f"{jobs.get('queued', 0)} queued / "
            f"{jobs.get('done', 0)} done / "
            f"{jobs.get('failed', 0)} failed")
        cells = model._metric_value("serve.cells.completed")
        repairs = model._metric_value("serve.pool.repairs")
        if cells is not None or repairs is not None:
            lines.append(
                f"pool      {int(cells or 0)} cells executed · "
                f"{int(repairs or 0)} shard repairs")
    if model.metrics is not None:
        depths = model.queue_depths()
        if depths:
            parts = [f"{lane}: {int(depth)}"
                     for lane, depth in sorted(depths.items())]
            rejected = sum(
                model._metric_value(name) or 0
                for name in ("serve.queue.rejected.rate_limited",
                             "serve.queue.rejected.queue_full"))
            lines.append("queue     " + " · ".join(parts)
                         + f" · rejected {int(rejected)}")

    if model.last_event_t is not None:
        age = max(0.0, now - model.last_event_t)
        lines.append(f"last event {age:.0f}s ago")
    return "\n".join(lines) + "\n"


def run_top(run_logs: Sequence[str],
            server: Optional[str] = None,
            interval: float = 2.0,
            once: bool = False,
            iterations: Optional[int] = None,
            window_s: float = 60.0,
            out: Optional[TextIO] = None) -> int:
    """Drive the monitor loop; returns a process exit code.

    ``once`` renders a single frame (scripting / CI).  ``iterations``
    bounds the live loop for tests; ``None`` runs until interrupted.
    """
    import sys
    out = out if out is not None else sys.stdout
    model = TopModel(window_s=window_s)
    tails = [LogTail(path) for path in run_logs]
    client = None
    if server is not None:
        from ..serve.client import ServeClient
        client = ServeClient(server)
    remaining = 1 if once else iterations
    try:
        while True:
            for tail in tails:
                model.feed_records(tail.poll())
            if client is not None:
                try:
                    model.feed_health(client.health())
                    model.feed_metrics(client.metrics())
                except Exception as error:  # daemon down ≠ monitor down
                    model.feed_health(None, error=str(error))
                    model.feed_metrics(None)
            frame = render_top(model)
            if once or iterations is not None:
                out.write(frame)
            else:
                out.write("\x1b[2J\x1b[H" + frame)
            out.flush()
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
