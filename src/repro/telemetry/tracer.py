"""Cycle-level pipeline event bus.

The pipeline, the schedulers, and the load/store unit publish per-µop
lifecycle events here.  Every publisher holds a *nullable* tracer
reference and guards each emission with ``if tracer is not None``, so the
instrumentation costs one attribute load and a branch when tracing is off
— measured well under the 3% budget.

Event taxonomy
--------------

Lifecycle stages (each µop visits them in this order, cycle-stamped):

=============  ========================================================
``fetch``      fetched into the front end (decode/alloc queue)
``rename``     renamed; physical registers assigned
``dispatch``   entered the ROB and the scheduling window
``steer``      moved between queues inside the scheduler (cause tells
               where and why; may occur zero or more times)
``issue``      selected for execution; issue port granted
``execute``    began executing (AGU access for memory ops; the cause
               carries the servicing cache level or forwarding source)
``writeback``  result produced; destination register marked ready
``commit``     retired in order from the ROB head
=============  ========================================================

Auxiliary events:

=============  ========================================================
``wakeup``     a destination physical register became ready (cause
               ``p<preg>``)
``forward``    store-to-load forwarding hit in the SQ (emitted by the
               load/store unit; cause ``from:<store seq>``)
``violation``  memory-order violation detected (emitted by the LSU;
               cause names the offending load)
``squash``     the µop was squashed from the window (cause tags the
               trigger, e.g. ``mem_order``)
=============  ========================================================

A squashed-and-refetched µop re-emits its lifecycle under the same
sequence number; exporters split attempts at each ``fetch`` event.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Tuple

#: Canonical per-µop lifecycle order (used by exporters and tests).
LIFECYCLE = (
    "fetch", "rename", "dispatch", "issue", "execute", "writeback", "commit",
)

#: Events that annotate rather than advance the lifecycle.
AUX_STAGES = ("steer", "wakeup", "forward", "violation", "squash")

#: Rank of each lifecycle stage, for ordering checks.
LIFECYCLE_RANK: Dict[str, int] = {name: i for i, name in enumerate(LIFECYCLE)}


class TraceEvent(NamedTuple):
    """One cycle-stamped pipeline event for one µop."""

    cycle: int
    seq: int
    stage: str
    cause: str = ""


class OpInfo(NamedTuple):
    """Static facts about a traced µop, captured at first fetch."""

    seq: int
    pc: int
    opcode: str


class Tracer:
    """Append-only event log plus a µop fact table.

    Publishers call :meth:`emit`; the pipeline additionally calls
    :meth:`note_op` once per fetch so exporters can label rows.  Events
    arrive in simulation order (cycle-major, pipeline-phase minor).
    """

    __slots__ = ("events", "ops")

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.ops: Dict[int, OpInfo] = {}

    # -- publishing ----------------------------------------------------
    def note_op(self, seq: int, pc: int, opcode: str) -> None:
        self.ops[seq] = OpInfo(seq, pc, opcode)

    def emit(self, cycle: int, seq: int, stage: str, cause: str = "") -> None:
        self.events.append(TraceEvent(cycle, seq, stage, cause))

    # -- querying ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def seqs(self) -> List[int]:
        """Sequence numbers seen, ascending."""
        return sorted({event.seq for event in self.events})

    def events_for(self, seq: int) -> List[TraceEvent]:
        """All events for one µop, in emission (time) order."""
        return [event for event in self.events if event.seq == seq]

    def stage_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.stage] = counts.get(event.stage, 0) + 1
        return counts

    def attempts_for(self, seq: int) -> List[List[TraceEvent]]:
        """Events for one µop split into fetch attempts.

        A squashed-and-refetched µop re-enters at ``fetch``; each sublist
        is one attempt (the last one is the attempt that committed, if
        the µop committed at all).
        """
        attempts: List[List[TraceEvent]] = []
        for event in self.events_for(seq):
            if event.stage == "fetch" or not attempts:
                attempts.append([])
            attempts[-1].append(event)
        return attempts
