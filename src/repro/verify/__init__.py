"""Correctness tooling: differential fuzzing and invariant checking.

The subsystem has five parts (see docs/correctness.md):

* :mod:`repro.verify.genprog` — seeded random micro-op program generator;
* :mod:`repro.verify.oracle` — differential oracle comparing every
  scheduler config against the functional executor;
* :mod:`repro.verify.invariants` — per-cycle microarchitectural
  invariant checks (enabled with ``CoreConfig.check_invariants``);
* :mod:`repro.verify.shrink` — ddmin-style failure minimiser;
* :mod:`repro.verify.chaos` — fault-injection harness for the
  fault-tolerant campaign runner (see docs/robustness.md).

``python -m repro fuzz`` drives the first four; ``python -m repro
chaos`` drives the last.
"""

from .invariants import InvariantViolation, check_pipeline

__all__ = ["InvariantViolation", "check_pipeline"]

# NOTE: repro.verify.chaos is imported lazily (``from repro.verify
# import chaos``) by the runner worker hook; importing it here would
# drag the pipeline into every verify import.
