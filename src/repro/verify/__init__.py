"""Correctness tooling: differential fuzzing and invariant checking.

The subsystem has four parts (see docs/correctness.md):

* :mod:`repro.verify.genprog` — seeded random micro-op program generator;
* :mod:`repro.verify.oracle` — differential oracle comparing every
  scheduler config against the functional executor;
* :mod:`repro.verify.invariants` — per-cycle microarchitectural
  invariant checks (enabled with ``CoreConfig.check_invariants``);
* :mod:`repro.verify.shrink` — ddmin-style failure minimiser.

``python -m repro fuzz`` drives all of them.
"""

from .invariants import InvariantViolation, check_pipeline

__all__ = ["InvariantViolation", "check_pipeline"]
