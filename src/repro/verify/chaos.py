"""Chaos harness: fault injection for the fault-tolerant campaign runner.

Long design-space campaigns only work when the harness survives the
failure of individual cells: a worker OOM-killed mid-simulation, a
scheduler bug that wedges the pipeline forever, a cache entry truncated
by a dying writer.  This module injects exactly those faults — on
purpose, deterministically — and checks that the
:class:`~repro.analysis.runner.ExperimentRunner` recovers:

* the campaign *completes* (no fault sinks the batch);
* only persistently-failing cells (``poison`` faults and ``wedge``-forced
  deadlocks, which are deterministic and therefore not retried) are
  quarantined;
* every non-quarantined result is **byte-identical** to a clean serial
  run.

Fault kinds
-----------

==========  ==========================================================
``kill``    the worker process exits hard mid-task (``os._exit``),
            breaking the pool (``BrokenProcessPool`` recovery path)
``hang``    the worker sleeps past the runner's wall-clock timeout
            (pool-kill + requeue path)
``error``   the worker raises (plain retry path)
``wedge``   the cell simulates with a scheduler that never issues, so
            the pipeline's forward-progress watchdog raises a real
            :class:`~repro.core.pipeline.DeadlockError` (quarantined
            with its pipeline snapshot; deterministic, never retried)
``poison``  the worker raises on *every* attempt (quarantine path)
==========  ==========================================================

``kill``/``hang``/``error`` fire only on a cell's first attempt, so the
retry machinery is what makes the campaign green.  Faults are selected
by a salted hash of the cell key — the same spec always poisons the
same cells — and the spec travels to pool workers through the
``REPRO_CHAOS`` environment variable, hooked in
``repro.analysis.runner._run_task``.

``python -m repro chaos`` drives :func:`run_campaign`; the CI
``chaos-smoke`` job runs it with a fixed seed on every push.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import CoreConfig, config_for
from ..core.pipeline import Pipeline
from ..workloads.suite import SMOKE_NAMES, SUITE_NAMES, get_trace

#: Environment variable carrying the encoded :class:`ChaosSpec`.
ENV_VAR = "REPRO_CHAOS"

#: Fault kinds that are *meant* to end in quarantine (deterministic).
PERSISTENT_FAULTS = ("poison", "wedge")

#: All injectable fault kinds, in cumulative-band order.
FAULT_KINDS = ("kill", "hang", "error", "wedge", "poison")


class ChaosError(RuntimeError):
    """An injected (non-fatal) worker failure."""


@dataclass(frozen=True)
class ChaosSpec:
    """Which faults to inject, with what probability, keyed how.

    Probabilities are per-cell bands of a single salted hash draw, so a
    cell receives at most one fault kind and the assignment is a pure
    function of (salt, cell key) — reproducible across processes and
    runs.  ``kill``/``hang``/``error`` fire only while ``attempt <
    attempts`` (default: first attempt only); ``wedge`` and ``poison``
    model deterministic failures and fire on every attempt (a wedge
    whose first attempt is lost to a pool break must still wedge the
    retry, or the "deterministic deadlock" would vanish on requeue).
    """

    kill: float = 0.0
    hang: float = 0.0
    error: float = 0.0
    wedge: float = 0.0
    poison: float = 0.0
    salt: int = 0
    #: seconds a ``hang`` fault sleeps (should dwarf the runner timeout)
    hang_seconds: float = 600.0
    #: transient faults fire while ``attempt < attempts``
    attempts: int = 1

    def encode(self) -> str:
        """Serialise for the ``REPRO_CHAOS`` environment variable."""
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def decode(cls, text: str) -> "ChaosSpec":
        return cls(**json.loads(text))

    @classmethod
    def from_env(cls) -> Optional["ChaosSpec"]:
        text = os.environ.get(ENV_VAR, "")
        return cls.decode(text) if text else None

    # ------------------------------------------------------------------
    def draw(self, key: str) -> float:
        """Deterministic uniform draw in [0, 1) for one cell key."""
        digest = hashlib.sha256(f"{self.salt}:{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def fault_for(self, key: str, attempt: int) -> Optional[str]:
        """The fault this cell suffers on this attempt, if any."""
        draw = self.draw(key)
        edge = 0.0
        for kind in FAULT_KINDS:
            edge += getattr(self, kind)
            if draw < edge:
                if kind in PERSISTENT_FAULTS or attempt < self.attempts:
                    return kind
                return None
        return None


# ---------------------------------------------------------------------------
# worker-side injection (hooked from repro.analysis.runner._run_task)
# ---------------------------------------------------------------------------


class WedgedScheduler:
    """Wraps a real scheduler but never selects anything for issue.

    Models the exact bug class PR 3's fuzzer hunts — a window that loses
    track of its ready ops — so the forward-progress watchdog, not the
    harness, is what turns the wedge into a structured failure.
    """

    def __init__(self, inner):
        self.inner = inner
        self.kind = f"wedged-{inner.kind}"

    def select(self, cycle: int):
        return []

    def __getattr__(self, name):
        return getattr(self.inner, name)


def run_wedged(workload: str, config: CoreConfig, seed: int,
               target_ops: int):
    """Simulate the cell with a wedged scheduler: guaranteed deadlock.

    The watchdog window is clamped so the fault costs thousands of
    cycles, not the production 100k default.
    """
    from ..sched import create_scheduler

    trace = get_trace(workload, target_ops, seed)
    cfg = dataclasses.replace(
        config,
        deadlock_cycles=min(config.deadlock_cycles or 5_000, 5_000),
    )
    pipe = Pipeline(
        trace, cfg,
        scheduler_factory=lambda core: WedgedScheduler(create_scheduler(core)),
    )
    return pipe.run()  # raises DeadlockError long before returning


def worker_fault(workload: str, config: CoreConfig, seed: int,
                 target_ops: int, key: str, attempt: int):
    """Inject this cell's fault, if the env-configured spec names one.

    Returns ``None`` when the task should simulate normally (no spec, no
    fault for this cell, or the fault — a ``hang`` outlived by nobody —
    let the task proceed).
    """
    spec = ChaosSpec.from_env()
    if spec is None:
        return None
    fault = spec.fault_for(key, attempt)
    if fault is None:
        return None
    if fault == "kill":
        os._exit(137)  # simulates the OOM killer: no cleanup, no goodbye
    if fault == "hang":
        time.sleep(spec.hang_seconds)
        return None  # only reached when no timeout killed us: harmless
    if fault == "error":
        raise ChaosError(f"injected transient error (attempt {attempt})")
    if fault == "poison":
        raise ChaosError(f"injected persistent error (attempt {attempt})")
    if fault == "wedge":
        return run_wedged(workload, config, seed, target_ops)
    raise AssertionError(f"unknown fault kind: {fault}")


# ---------------------------------------------------------------------------
# cache corruption
# ---------------------------------------------------------------------------

#: Corruption styles applied round-robin to victim files.
_CORRUPTIONS: Tuple[str, ...] = ("truncate", "garbage", "empty")


def corrupt_files(paths: Sequence[Path]) -> int:
    """Damage ``paths`` in place (truncation, garbage bytes, zero-byte)."""
    for index, path in enumerate(paths):
        style = _CORRUPTIONS[index % len(_CORRUPTIONS)]
        if style == "truncate":
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 3)])
        elif style == "garbage":
            path.write_bytes(b"\x00ChAoS{not json, not a trace}\xff\xfe")
        else:
            path.write_bytes(b"")
    return len(paths)


# ---------------------------------------------------------------------------
# the campaign
# ---------------------------------------------------------------------------


@dataclass
class ChaosReport:
    """Outcome of one chaos campaign (see :func:`run_campaign`)."""

    cells: int
    expected_faults: Dict[str, int]
    corrupted_results: int
    corrupted_traces: int
    quarantined: List[str] = field(default_factory=list)
    unexpected_quarantines: List[str] = field(default_factory=list)
    missing_quarantines: List[str] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    cache_warnings: int = 0
    snapshots_missing: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.unexpected_quarantines or self.missing_quarantines
                    or self.mismatches or self.snapshots_missing)

    def summary(self) -> str:
        faults = ", ".join(
            f"{kind}={count}" for kind, count in self.expected_faults.items()
            if count
        ) or "none"
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"chaos campaign {verdict}: {self.cells} cells, "
            f"faults injected [{faults}], "
            f"{self.corrupted_results} result entries + "
            f"{self.corrupted_traces} trace entries corrupted; "
            f"{len(self.quarantined)} quarantined, "
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{self.pool_restarts} pool restarts, "
            f"{self.cache_warnings} cache warnings, "
            f"{len(self.mismatches)} result mismatches"
        )

    def full_report(self) -> str:
        lines = [self.summary()]
        for title, items in (
            ("quarantined", self.quarantined),
            ("UNEXPECTED quarantines", self.unexpected_quarantines),
            ("MISSING quarantines (fault did not stick)",
             self.missing_quarantines),
            ("result MISMATCHES vs clean serial run", self.mismatches),
            ("deadlock quarantines MISSING a snapshot",
             self.snapshots_missing),
        ):
            if items:
                lines.append(f"{title}:")
                lines += [f"  - {item}" for item in items]
        return "\n".join(lines)


def default_spec(seed: int = 7) -> ChaosSpec:
    """The standard campaign mix: every fault kind, ~55% of cells hit."""
    return ChaosSpec(kill=0.12, hang=0.10, error=0.12, wedge=0.10,
                     poison=0.10, salt=seed)


def run_campaign(
    arches: Sequence[str] = ("inorder", "ooo", "ballerino"),
    workloads: Sequence[str] = SUITE_NAMES,
    target_ops: int = 2_000,
    seed: int = 7,
    jobs: int = 4,
    spec: Optional[ChaosSpec] = None,
    timeout: float = 30.0,
    retries: int = 4,
    work_dir: Optional[str] = None,
    smoke: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run the full kill/hang/corrupt/deadlock recovery drill.

    1. a clean **serial** baseline of every (workload, arch) cell;
    2. pre-seed the chaos result cache with a few baseline entries and
       corrupt them (truncated / garbage / zero-byte), corrupt a few
       trace-cache files too;
    3. the **chaos** run: parallel ``run_many`` with the fault spec
       exported to the workers;
    4. verdict: campaign completed, quarantine set == the deterministic
       persistent faults, all other cells byte-identical to baseline,
       every deadlock quarantine carries its pipeline snapshot.

    ``retries`` is deliberately above the fault spec's single faulted
    attempt: pool breakage charges an attempt to every in-flight cell
    (the dying worker cannot be attributed), so innocent bystanders need
    headroom before the verdict calls them unexpected quarantines.
    """
    say = progress if progress is not None else (lambda _msg: None)
    if smoke:
        workloads = tuple(w for w in SMOKE_NAMES if w in workloads) or SMOKE_NAMES
    spec = spec if spec is not None else default_spec(seed)
    if spec.hang and spec.hang_seconds <= timeout:
        spec = dataclasses.replace(spec, hang_seconds=max(600.0, timeout * 10))

    from ..analysis.runner import ExperimentRunner  # circular-free at call time

    owned_dir = work_dir is None
    root = Path(work_dir) if work_dir else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    saved_env = {name: os.environ.get(name) for name in (ENV_VAR, "REPRO_TRACE_CACHE")}
    try:
        # isolate the trace cache so corruption cannot touch the real one
        os.environ["REPRO_TRACE_CACHE"] = str(root / "traces")
        os.environ.pop(ENV_VAR, None)
        get_trace.cache_clear()

        tasks = [(w, config_for(arch)) for arch in arches for w in workloads]
        say(f"chaos: baseline — {len(tasks)} cells, serial")
        baseline = ExperimentRunner(
            target_ops=target_ops, seed=seed, cache_dir=str(root / "baseline"),
            jobs=1,
        )
        baseline_results = baseline.run_many(tasks, jobs=1)
        expected = {
            baseline._key(w, c, seed): json.dumps(r.to_dict(), sort_keys=True)
            for (w, c), r in zip(tasks, baseline_results)
        }

        # pre-seed + corrupt some chaos-cache entries and trace files
        chaos_cache = root / "chaos"
        chaos_cache.mkdir(parents=True, exist_ok=True)
        victims = sorted(Path(root / "baseline").glob("*.json"))[:6]
        for victim in victims:
            shutil.copy(victim, chaos_cache / victim.name)
        corrupted_results = corrupt_files(
            [chaos_cache / victim.name for victim in victims]
        )
        trace_victims = sorted((root / "traces").glob("*.trace"))[:4]
        corrupted_traces = corrupt_files(trace_victims)
        # drop in-process trace memoisation so forked workers (and this
        # process) must re-read — and repair — the corrupted files
        get_trace.cache_clear()

        say(f"chaos: fault run — spec {spec.encode()}")
        os.environ[ENV_VAR] = spec.encode()
        runner = ExperimentRunner(
            target_ops=target_ops, seed=seed, cache_dir=str(chaos_cache),
            jobs=jobs, task_timeout=timeout, retries=retries,
        )
        results = runner.run_many(tasks, jobs=jobs)
        os.environ.pop(ENV_VAR, None)

        # ---------------- verdict ----------------
        keys = [runner._key(w, c, seed) for w, c in tasks]
        fault_of = {key: spec.fault_for(key, 0) for key in keys}
        expected_faults: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        for fault in fault_of.values():
            if fault:
                expected_faults[fault] += 1
        persistent = {
            key for key, fault in fault_of.items()
            if fault in PERSISTENT_FAULTS
        }
        report = ChaosReport(
            cells=len(tasks),
            expected_faults=expected_faults,
            corrupted_results=corrupted_results,
            corrupted_traces=corrupted_traces,
            retries=runner.retries_performed,
            timeouts=runner.timeouts,
            pool_restarts=runner.pool_restarts,
            cache_warnings=runner.cache_warnings,
        )
        for (workload, config), key, result in zip(tasks, keys, results):
            cell = f"{workload}/{config.name}"
            if not result.ok:
                report.quarantined.append(result.describe())
                if key not in persistent:
                    report.unexpected_quarantines.append(result.describe())
                if fault_of[key] == "wedge" and (
                    result.kind != "deadlock" or not result.snapshot
                ):
                    report.snapshots_missing.append(result.describe())
                continue
            if key in persistent:
                report.missing_quarantines.append(
                    f"{cell}: {fault_of[key]} fault did not quarantine")
            if json.dumps(result.to_dict(), sort_keys=True) != expected[key]:
                report.mismatches.append(
                    f"{cell}: differs from clean serial run")
        say("chaos: " + report.summary())
        return report
    finally:
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        get_trace.cache_clear()
        if owned_dir:
            shutil.rmtree(root, ignore_errors=True)


# ---------------------------------------------------------------------------
# distributed campaigns: shard-level chaos + reconciliation closure
# ---------------------------------------------------------------------------


@dataclass
class DistribChaosReport:
    """Outcome of one distributed chaos drill (:func:`run_distributed`).

    The drill's contract is *closure*: every hole it tears — a shard
    killed before it starts, run-log lines shredded mid-campaign,
    quarantines, cache entries corrupted or rewritten with a stale
    schema — must be (1) detected by the reconciliation detector and
    (2) healed by the repair loop, leaving a campaign byte-identical
    to a clean serial run.
    """

    cells: int
    shards: int
    killed_shard: int
    poisoned: List[str] = field(default_factory=list)
    corrupted_entries: int = 0
    stale_entries: int = 0
    shredded_lines: int = 0
    initial_states: Dict[str, int] = field(default_factory=dict)
    final_states: Dict[str, int] = field(default_factory=dict)
    rounds: int = 0
    converged: bool = False
    undetected: List[str] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    merged_complete: bool = False

    @property
    def ok(self) -> bool:
        return (self.converged and self.merged_complete
                and not self.undetected and not self.mismatches)

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        damaged = sum(count for state, count in self.initial_states.items()
                      if state != "ok")
        return (
            f"distributed chaos {verdict}: {self.cells} cells over "
            f"{self.shards} shards; shard {self.killed_shard} killed, "
            f"{len(self.poisoned)} poisoned, {self.corrupted_entries} "
            f"cache entries corrupted, {self.stale_entries} stale-schema, "
            f"{self.shredded_lines} run-log lines shredded; detector saw "
            f"{damaged} damaged, reconcile converged={self.converged} in "
            f"{self.rounds} round(s), {len(self.undetected)} undetected, "
            f"{len(self.mismatches)} mismatches vs clean serial run"
        )

    def full_report(self) -> str:
        lines = [self.summary(),
                 f"initial states: {self.initial_states}",
                 f"final states:   {self.final_states}"]
        for title, items in (
            ("injected holes the detector MISSED", self.undetected),
            ("result MISMATCHES vs clean serial run", self.mismatches),
        ):
            if items:
                lines.append(f"{title}:")
                lines += [f"  - {item}" for item in items]
        return "\n".join(lines)


def shred_log(path: Path, every: int = 3) -> int:
    """Corrupt every ``every``-th line of a run-log in place.

    Models a disk fault / dying writer mid-campaign — exactly the
    damage :func:`~repro.telemetry.runlog.read_run_log_tolerant` must
    survive and reconciliation must account for.
    """
    lines = path.read_text(encoding="utf-8").splitlines()
    shredded = 0
    for index in range(0, len(lines), every):
        lines[index] = '\x00{"torn":' + lines[index][: max(4, len(lines[index]) // 2)]
        shredded += 1
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return shredded


def run_distributed(
    arches: Sequence[str] = ("inorder", "ooo"),
    workloads: Sequence[str] = SMOKE_NAMES,
    widths: Sequence[int] = (4, 8),
    target_ops: int = 1_500,
    seed: int = 7,
    n_shards: int = 3,
    jobs: int = 2,
    poison: float = 0.18,
    timeout: float = 30.0,
    work_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> DistribChaosReport:
    """Chaos-drill the distributed campaign + reconciliation path.

    1. a clean **serial** baseline of the whole matrix (the oracle);
    2. shard the matrix ``n_shards`` ways; run every shard but one —
       the victim shard is "killed before it starts" (its cells must
       surface as ``missing``) — with a ``poison`` fault spec exported
       so some surviving cells quarantine;
    3. post-hoc damage: shred run-log lines mid-file, corrupt a cache
       entry, rewrite another with a stale (field-stripped) schema;
    4. ``merge_shards`` must report the campaign incomplete, naming
       the holes as gaps;
    5. ``reconcile_campaign`` (chaos spec cleared — the faults were
       transient to the campaign, not the cells) must detect **every**
       injected hole, converge, and leave the merged campaign complete
       and byte-identical to the baseline.
    """
    say = progress if progress is not None else (lambda _msg: None)
    from ..distrib import (CampaignSpec, Detector, merge_shards,
                           reconcile_campaign, run_shard, shard_cells)

    if n_shards < 2:
        raise ValueError("distributed drill needs n_shards >= 2 "
                         "(one shard is the kill victim)")
    owned_dir = work_dir is None
    root = Path(work_dir) if work_dir else Path(
        tempfile.mkdtemp(prefix="repro-distrib-chaos-"))
    saved_env = {name: os.environ.get(name)
                 for name in (ENV_VAR, "REPRO_TRACE_CACHE")}
    try:
        os.environ["REPRO_TRACE_CACHE"] = str(root / "traces")
        os.environ.pop(ENV_VAR, None)
        get_trace.cache_clear()

        spec = CampaignSpec(
            workloads=tuple(workloads), arches=tuple(arches),
            widths=tuple(widths), ops=target_ops, seed=seed,
            n_shards=n_shards, salt=seed,
        )
        cells = spec.cells()
        camp = root / "campaign"
        cache = root / "cache"

        # 1. oracle: clean serial run into its own cache
        say(f"distrib chaos: baseline — {len(cells)} cells, serial")
        from ..analysis.runner import ExperimentRunner

        baseline = ExperimentRunner(
            target_ops=target_ops, seed=seed,
            cache_dir=str(root / "baseline"), jobs=1)
        tasks = [cell.task(seed) for cell in cells]
        baseline_results = baseline.run_many(tasks, jobs=1)
        expected = {
            baseline._key(w, c, s): json.dumps(r.to_dict(), sort_keys=True)
            for (w, c, s), r in zip(tasks, baseline_results)
        }

        # 2. sharded chaos run: kill one shard, poison some cells
        shards = shard_cells(cells, n_shards, spec.salt)
        killed = max(range(n_shards), key=lambda k: len(shards[k]))
        fault_spec = ChaosSpec(poison=poison, salt=seed)
        os.environ[ENV_VAR] = fault_spec.encode()
        say(f"distrib chaos: running {n_shards} shards, killing shard "
            f"{killed} ({len(shards[killed])} cells), poison={poison}")
        for shard in range(n_shards):
            if shard == killed:
                continue  # the shard dies before its first cell
            # spans on: the drill doubles as coverage that tracing
            # survives chaos (torn logs never tear the span files)
            run_shard(spec, shard, camp, cache_dir=str(cache), jobs=jobs,
                      task_timeout=timeout, spans=True)
        os.environ.pop(ENV_VAR, None)

        detector = Detector(spec, cache_dir=str(cache))
        expected_cells = detector.expected()
        killed_keys = set()
        for seq, cell in shards[killed]:
            workload, config, cell_seed = cell.task(seed)
            killed_keys.add(detector._runner.key_for(workload, config,
                                                     cell_seed))
        poisoned_keys = {
            key for _seq, _cell, key in expected_cells
            if key not in killed_keys
            and fault_spec.fault_for(key, 0) == "poison"
        }

        # 3a. shred run-log lines mid-file (a dying writer / disk fault)
        shredded = 0
        logs = sorted(camp.glob("shard-*.jsonl"))
        if logs:
            shredded = shred_log(logs[0])

        # 4. the merge must name the holes
        merged = merge_shards(spec, camp, cache_dir=str(cache), write=True)
        say(f"distrib chaos: merged — complete={merged.complete}, "
            f"gaps={len(merged.gaps)}, skipped_lines={merged.skipped_lines}")

        # 3b. cache damage lands *after* the merge (whose cache reads,
        # like the runner's, delete corrupt entries on contact) so the
        # detector — strictly read-only — is what classifies it
        healthy = [
            (seq, cell, key) for seq, cell, key in expected_cells
            if key not in killed_keys and key not in poisoned_keys
        ]
        corrupted_keys, stale_keys = set(), set()
        if len(healthy) >= 1:
            _, _, victim = healthy[0]
            corrupt_files([cache / f"{victim}.json"])
            corrupted_keys.add(victim)
        if len(healthy) >= 2:
            _, _, victim = healthy[1]
            path = cache / f"{victim}.json"
            payload = json.loads(path.read_text())
            for name in ("sampling", "memory_stats", "interval_samples"):
                payload.pop(name, None)
            path.write_text(json.dumps(payload))  # pre-schema-v4 shape
            stale_keys.add(victim)

        # 5. detect + repair to byte-identical convergence
        diff = detector.diff(camp)
        injected = killed_keys | poisoned_keys | corrupted_keys | stale_keys
        damaged_keys = {status.key for status in diff.damaged}
        label_of = {key: f"{cell.workload}/{cell.arch}@{cell.width}"
                    for _seq, cell, key in expected_cells}
        report = DistribChaosReport(
            cells=len(cells), shards=n_shards, killed_shard=killed,
            poisoned=sorted(label_of[k] for k in poisoned_keys),
            corrupted_entries=len(corrupted_keys),
            stale_entries=len(stale_keys),
            shredded_lines=shredded,
            initial_states=diff.by_state(),
        )
        report.undetected = sorted(
            f"{label_of[key]} [{key[:8]}]"
            for key in injected if key not in damaged_keys
        )
        say("distrib chaos: " + diff.summary())
        outcome = reconcile_campaign(
            camp, spec=spec, cache_dir=str(cache),
            max_rounds=4, cell_budget=3, jobs=jobs, progress=say,
            spans=True)
        report.final_states = outcome.final
        report.rounds = len(outcome.rounds)
        report.converged = outcome.converged

        # closure: repaired campaign == clean serial run, byte for byte
        final_merge = merge_shards(spec, camp, cache_dir=str(cache),
                                   write=True)
        report.merged_complete = final_merge.complete
        for envelope in final_merge.envelopes:
            if envelope is None:
                continue
            cell = envelope["cell"]
            label = f"{cell['workload']}/{cell['arch']}@{cell['width']}"
            if not envelope["ok"]:
                report.mismatches.append(
                    f"{label}: still failed after reconcile "
                    f"({envelope['result'].get('kind')})")
                continue
            seq = envelope["seq"]
            workload, config, cell_seed = cells[seq].task(seed)
            key = baseline._key(workload, config, cell_seed)
            got = json.dumps(envelope["result"], sort_keys=True)
            if got != expected[key]:
                report.mismatches.append(
                    f"{label}: differs from clean serial run")
        say("distrib chaos: " + report.summary())
        return report
    finally:
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        get_trace.cache_clear()
        if owned_dir:
            shutil.rmtree(root, ignore_errors=True)
