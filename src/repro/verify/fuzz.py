"""Fuzzing orchestrator: generate, differential-check, shrink, report.

One fuzz *campaign* runs ``programs`` seeded random programs (profile
rotates per seed — see :data:`repro.verify.genprog.PROFILES`) through the
differential oracle across a set of scheduler configs.  Every failure is
minimised with ddmin and rendered as a paste-able repro: the shrunken
``ProgramBuilder`` source plus the failing config and failure detail.

Entry point: ``python -m repro fuzz`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.config import FIG11_ARCHES
from ..workloads.executor import ExecutionLimitExceeded
from .genprog import SpecItem, generate_spec, render_source
from .oracle import DEFAULT_MAX_OPS, Failure, check_arch, run_reference, run_spec
from .shrink import ddmin


@dataclass
class FuzzFinding:
    """One failing program: the original, its failure, and the shrink."""

    seed: int
    failure: Failure
    spec: List[SpecItem]
    shrunken: List[SpecItem]

    def report(self) -> str:
        lines = [
            f"seed {self.seed}: {self.failure}",
            f"original {len(self.spec)} spec items, "
            f"shrunken to {len(self.shrunken)}",
            "",
            "# --- minimized repro " + "-" * 40,
            render_source(self.shrunken, name=f"fuzz_seed{self.seed}"),
            "# repro: run `program` through "
            f"repro.verify.oracle.check_arch(..., arch='{self.failure.arch}')",
        ]
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Campaign summary."""

    programs: int = 0
    arches: Sequence[str] = FIG11_ARCHES
    findings: List[FuzzFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        cells = self.programs * len(self.arches)
        if self.ok:
            return (
                f"fuzz: {self.programs} programs x {len(self.arches)} "
                f"configs = {cells} cells, all clean"
            )
        return (
            f"fuzz: {len(self.findings)} failing program(s) out of "
            f"{self.programs} ({cells} cells checked)"
        )

    def full_report(self) -> str:
        parts = [self.summary()]
        for finding in self.findings:
            parts.append("")
            parts.append(finding.report())
        return "\n".join(parts)


def _shrink_failure(
    spec: List[SpecItem],
    failure: Failure,
    width: int,
    check_invariants: bool,
    max_ops: int,
) -> List[SpecItem]:
    """ddmin ``spec`` preserving the same (arch, kind) failure."""

    def predicate(candidate: List[SpecItem]) -> bool:
        try:
            program, trace, regs, mem = run_reference(
                candidate, max_ops=max_ops
            )
        except Exception:
            # a broken variant — non-halting (ExecutionLimitExceeded) or
            # otherwise unassemblable — is not a repro
            return False
        result = check_arch(
            program, trace, regs, mem, failure.arch,
            width=width, check_invariants=check_invariants,
        )
        return result is not None and result.kind == failure.kind

    return ddmin(spec, predicate)


def run_fuzz(
    programs: int = 200,
    seed: int = 0,
    arches: Sequence[str] = FIG11_ARCHES,
    width: int = 8,
    check_invariants: bool = True,
    shrink: bool = True,
    max_ops: int = DEFAULT_MAX_OPS,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run one fuzz campaign; returns the (possibly failing) report."""
    report = FuzzReport(programs=programs, arches=tuple(arches))
    for index in range(programs):
        program_seed = seed * 1_000_003 + index
        spec = generate_spec(program_seed)
        try:
            failures = run_spec(
                spec, arches=arches, width=width,
                check_invariants=check_invariants, max_ops=max_ops,
            )
        except ExecutionLimitExceeded as exc:
            # the generator's termination-by-construction contract broke
            # (or the --ops cap is too small for this profile)
            failures = [Failure(arch="-", kind="nonhalting",
                                detail=str(exc))]
        if failures:
            failure = failures[0]
            shrunken = (
                _shrink_failure(
                    spec, failure, width, check_invariants, max_ops
                )
                if shrink and failure.kind != "nonhalting"
                else list(spec)
            )
            report.findings.append(
                FuzzFinding(
                    seed=program_seed, failure=failure,
                    spec=list(spec), shrunken=shrunken,
                )
            )
            if progress is not None:
                progress(
                    f"  FAIL seed {program_seed}: {failure} "
                    f"(shrunk {len(spec)} -> {len(shrunken)} items)"
                )
        if progress is not None and (index + 1) % 25 == 0:
            progress(
                f"  {index + 1}/{programs} programs, "
                f"{len(report.findings)} failure(s)"
            )
    return report
