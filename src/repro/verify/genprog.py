"""Seeded random micro-op program generator for the differential fuzzer.

Programs are built as a flat *spec* — a list of items, each either

* ``("label", name)`` — a branch target, or
* ``("instr", op, dest, srcs, imm, target)`` — one instruction in the
  :class:`~repro.workloads.program.ProgramBuilder` encoding.

The spec form (rather than an assembled :class:`Program`) is what the
ddmin shrinker operates on: items can be deleted and the remainder
re-assembled.  :func:`assemble` appends the terminating ``halt`` and
resolves labels; :func:`render_source` prints a paste-able
``ProgramBuilder`` reconstruction for bug reports.

Termination is guaranteed by construction:

* every backward branch is a *counted loop* — a reserved counter
  register (``r24`` .. ``r31``, one per nesting level, never touched by
  random body code) is loaded with the trip count, decremented once per
  iteration, and tested with ``bne``;
* every other branch is a forward skip over a bounded block.

Memory traffic aims at a small window of "hot" word slots above a fixed
base (``r23 = 4096``) so loads and stores alias frequently.  A tunable
fraction of memory ops compute their address dynamically
(``rem``/``shl``/``add`` from a live value) — those addresses are
unknown until execute, which is what provokes memory-order violations,
squashes, and MDP training, the paths the fuzzer most wants to stress.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..isa.registers import F, R
from ..workloads.program import Program, ProgramBuilder

#: One spec item: ("label", name) | ("instr", op, dest, srcs, imm, target).
SpecItem = Tuple

#: Word size of the micro-op ISA (8-byte aligned accesses).
WORD = 8

#: Base address of the hot memory window.
BASE_ADDR = 4096

#: r23 holds BASE_ADDR; r22 holds the hot-slot count (for dynamic
#: addressing); r21 holds a fixed modulus that every ``mul`` result is
#: reduced by (a mul chain inside a loop would otherwise square its
#: value each iteration — unbounded Python ints grind the functional
#: executor to a halt); r24..r31 are loop counters.  Random body code
#: only ever reads/writes r1..r20 and f0..f15.
BASE_REG = R[23]
MOD_REG = R[22]
NORM_REG = R[21]
NORM_MODULUS = 12289
COUNTER_REGS = tuple(R[i] for i in range(24, 32))
INT_POOL = tuple(R[i] for i in range(1, 21))
FP_POOL = tuple(F[i] for i in range(0, 16))

_ALU_OPS = ("add", "sub", "and", "or", "xor", "slt", "mul", "rem")
_FP_OPS = ("fadd", "fsub", "fmul")
_BRANCH_OPS = ("beq", "bne", "blt", "bge")


@dataclass(frozen=True)
class GenParams:
    """Tunable shape knobs for one generated program."""

    #: Approximate static instruction budget (bodies; preamble excluded).
    size: int = 60
    #: Fraction of body slots that become loads / stores.
    load_frac: float = 0.20
    store_frac: float = 0.15
    #: Fraction of body slots that become forward conditional skips.
    branch_frac: float = 0.08
    #: Fraction of ALU slots using the FP pipeline.
    fp_frac: float = 0.10
    #: Counted-loop nesting depth (0 = straight line).
    loop_depth: int = 2
    #: Max trip count per loop level.
    max_trip: int = 5
    #: Number of aliased hot word slots.
    hot_slots: int = 4
    #: Fraction of memory ops with a dynamically computed address.
    dyn_addr_frac: float = 0.35
    #: Bias toward chaining: probability a source is the latest write.
    chain_bias: float = 0.5


#: Profiles the fuzzer rotates through (per the issue: tunable load/store
#: density, branch depth, and dependence-chain shape).
PROFILES: Tuple[Tuple[str, GenParams], ...] = (
    ("mem_heavy", GenParams(load_frac=0.30, store_frac=0.25,
                            dyn_addr_frac=0.55, hot_slots=3)),
    ("branchy", GenParams(branch_frac=0.20, loop_depth=3, max_trip=4)),
    ("long_chains", GenParams(chain_bias=0.9, load_frac=0.15,
                              store_frac=0.10)),
    ("wide_dag", GenParams(chain_bias=0.1, fp_frac=0.25)),
    ("default", GenParams()),
)


class ProgramGen:
    """Generates one program spec from a seed and a :class:`GenParams`."""

    def __init__(self, seed: int, params: GenParams):
        self.rng = random.Random(seed)
        self.params = params
        self.spec: List[SpecItem] = []
        self._label_counter = 0
        #: registers known to hold a value (sources are drawn from here)
        self._live_int: List[int] = []
        self._live_fp: List[int] = []
        self._last_int: Optional[int] = None
        self._last_fp: Optional[int] = None

    # ------------------------------------------------------------------
    def _emit(self, op: str, dest=None, srcs: Sequence[int] = (),
              imm: int = 0, target: Optional[str] = None) -> None:
        self.spec.append(("instr", op, dest, tuple(srcs), imm, target))

    def _label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}{self._label_counter}"

    def _write_int(self, reg: int) -> None:
        if reg not in self._live_int:
            self._live_int.append(reg)
        self._last_int = reg

    def _write_fp(self, reg: int) -> None:
        if reg not in self._live_fp:
            self._live_fp.append(reg)
        self._last_fp = reg

    def _src_int(self) -> int:
        if self._last_int is not None and self.rng.random() < self.params.chain_bias:
            return self._last_int
        return self.rng.choice(self._live_int)

    def _src_fp(self) -> int:
        if self._last_fp is not None and self.rng.random() < self.params.chain_bias:
            return self._last_fp
        return self.rng.choice(self._live_fp)

    def _dest_int(self) -> int:
        return self.rng.choice(INT_POOL)

    def _dest_fp(self) -> int:
        return self.rng.choice(FP_POOL)

    # ------------------------------------------------------------------
    def _preamble(self) -> None:
        self._emit("li", BASE_REG, imm=BASE_ADDR)
        self._emit("li", MOD_REG, imm=self.params.hot_slots)
        self._emit("li", NORM_REG, imm=NORM_MODULUS)
        for reg in INT_POOL[:6]:
            self._emit("li", reg, imm=self.rng.randint(1, 64))
            self._write_int(reg)
        for reg in FP_POOL[:3]:
            self._emit("li", reg, imm=self.rng.randint(1, 16))
            self._write_fp(reg)
        # seed the hot window so early loads read defined values
        for slot in range(self.params.hot_slots):
            self._emit("store", None, (self._src_int(), BASE_REG),
                       imm=slot * WORD)

    def _hot_offset(self) -> int:
        return self.rng.randrange(self.params.hot_slots) * WORD

    def _addr_reg(self) -> int:
        """Emit address arithmetic; returns the register holding the
        (dynamic, execute-time-only) address of a hot slot."""
        tmp = self._dest_int()
        self._emit("rem", tmp, (self._src_int(), MOD_REG))
        self._emit("shl", tmp, (tmp,), imm=3)
        self._emit("add", tmp, (tmp, BASE_REG))
        self._write_int(tmp)
        return tmp

    def _gen_load(self) -> None:
        dest = self._dest_int()
        if self.rng.random() < self.params.dyn_addr_frac:
            self._emit("load", dest, (self._addr_reg(),), imm=0)
        else:
            self._emit("load", dest, (BASE_REG,), imm=self._hot_offset())
        self._write_int(dest)

    def _gen_store(self) -> None:
        value = self._src_int()
        if self.rng.random() < self.params.dyn_addr_frac:
            self._emit("store", None, (value, self._addr_reg()), imm=0)
        else:
            self._emit("store", None, (value, BASE_REG),
                       imm=self._hot_offset())

    def _gen_alu(self) -> None:
        if self._live_fp and self.rng.random() < self.params.fp_frac:
            dest = self._dest_fp()
            self._emit(self.rng.choice(_FP_OPS), dest,
                       (self._src_fp(), self._src_fp()))
            self._write_fp(dest)
            return
        dest = self._dest_int()
        if self.rng.random() < 0.3:
            self._emit("addi", dest, (self._src_int(),),
                       imm=self.rng.randint(-8, 8))
        else:
            op = self.rng.choice(_ALU_OPS)
            self._emit(op, dest, (self._src_int(), self._src_int()))
            if op == "mul":
                # keep products bounded across loop iterations
                self._emit("rem", dest, (dest, NORM_REG))
        self._write_int(dest)

    def _gen_skip(self, budget: int) -> int:
        """A forward conditional branch over 1..3 body ops; returns the
        number of budget slots consumed."""
        label = self._label("skip")
        self._emit(self.rng.choice(_BRANCH_OPS), None,
                   (self._src_int(), self._src_int()), target=label)
        inner = min(budget, self.rng.randint(1, 3))
        for _ in range(inner):
            self._gen_body_op(0)
        self.spec.append(("label", label))
        return inner + 1

    def _gen_body_op(self, branch_budget: int) -> int:
        roll = self.rng.random()
        p = self.params
        if roll < p.load_frac:
            self._gen_load()
            return 1
        if roll < p.load_frac + p.store_frac:
            self._gen_store()
            return 1
        if branch_budget > 0 and roll < p.load_frac + p.store_frac + p.branch_frac:
            return self._gen_skip(branch_budget)
        self._gen_alu()
        return 1

    def _gen_block(self, budget: int, depth: int) -> None:
        """Emit ~``budget`` body instructions, possibly as a loop nest."""
        if depth > 0 and budget >= 8:
            # split: straight prefix, a counted loop, straight suffix
            prefix = self.rng.randint(0, budget // 4)
            suffix = self.rng.randint(0, budget // 4)
            self._gen_straight(prefix)
            counter = COUNTER_REGS[depth - 1]
            trip = self.rng.randint(2, self.params.max_trip)
            label = self._label("loop")
            self._emit("li", counter, imm=trip)
            self.spec.append(("label", label))
            self._gen_block(budget - prefix - suffix - 2, depth - 1)
            self._emit("addi", counter, (counter,), imm=-1)
            self._emit("bne", None, (counter, R[0]), target=label)
            self._gen_straight(suffix)
        else:
            self._gen_straight(budget)

    def _gen_straight(self, budget: int) -> None:
        while budget > 0:
            budget -= self._gen_body_op(budget - 1)

    # ------------------------------------------------------------------
    def generate(self) -> List[SpecItem]:
        self._preamble()
        self._gen_block(self.params.size, self.params.loop_depth)
        return self.spec


# ----------------------------------------------------------------------
# spec -> Program / source text
# ----------------------------------------------------------------------
def assemble(spec: Sequence[SpecItem], name: str = "fuzz") -> Program:
    """Assemble a spec (labels resolved, ``halt`` appended).

    Branches whose label was removed by the shrinker fall back to a
    label planted at the very end (before ``halt``), keeping every
    shrunken variant well-formed.
    """
    builder = ProgramBuilder(name)
    present = {item[1] for item in spec if item[0] == "label"}
    used_labels = set()
    for item in spec:
        if item[0] == "label":
            builder.label(item[1])
        else:
            _, op, dest, srcs, imm, target = item
            if target is not None and target not in present:
                target = "__end"
            if target is not None:
                used_labels.add(target)
            builder._emit(op, dest, srcs, imm=imm, target=target)
    if "__end" in used_labels:
        builder.label("__end")
    builder.halt()
    return builder.build()


def render_source(spec: Sequence[SpecItem], name: str = "repro") -> str:
    """Render a paste-able ``ProgramBuilder`` reconstruction of a spec."""
    from ..isa.registers import NUM_INT_REGS, reg_name

    def fmt_reg(reg: int) -> str:
        if reg < NUM_INT_REGS:
            return f"R[{reg}]"
        return f"F[{reg - NUM_INT_REGS}]"

    lines = [
        "from repro.isa.registers import F, R",
        "from repro.workloads.program import ProgramBuilder",
        "",
        f"b = ProgramBuilder({name!r})",
    ]
    present = {item[1] for item in spec if item[0] == "label"}
    needs_end = False
    for item in spec:
        if item[0] == "label":
            lines.append(f"b.label({item[1]!r})")
            continue
        _, op, dest, srcs, imm, target = item
        if target is not None:
            if target not in present:
                target = "__end"
                needs_end = True
            if op == "jmp":
                lines.append(f"b.jmp({target!r})")
            else:
                lines.append(
                    f"b.{op}({fmt_reg(srcs[0])}, {fmt_reg(srcs[1])}, "
                    f"{target!r})"
                )
        elif op == "li":
            lines.append(f"b.li({fmt_reg(dest)}, {imm})")
        elif op in ("load", "fload"):
            lines.append(
                f"b.{op}({fmt_reg(dest)}, {fmt_reg(srcs[0])}, {imm})"
            )
        elif op in ("store", "fstore"):
            lines.append(
                f"b.{op}({fmt_reg(srcs[0])}, {fmt_reg(srcs[1])}, {imm})"
            )
        elif op in ("addi", "shl", "shr"):
            lines.append(
                f"b.{op}({fmt_reg(dest)}, {fmt_reg(srcs[0])}, {imm})"
            )
        elif op in ("mov", "fmov"):
            lines.append(f"b.{op}({fmt_reg(dest)}, {fmt_reg(srcs[0])})")
        elif op == "nop":
            lines.append("b.nop()")
        else:  # three-operand ALU (and/or are and_/or_ in the builder)
            method = {"and": "and_", "or": "or_"}.get(op, op)
            lines.append(
                f"b.{method}({fmt_reg(dest)}, {fmt_reg(srcs[0])}, "
                f"{fmt_reg(srcs[1])})"
            )
    if needs_end:
        lines.append("b.label('__end')")
    lines.append("b.halt()")
    lines.append("program = b.build()")
    return "\n".join(lines)


def generate_spec(seed: int, params: Optional[GenParams] = None
                  ) -> List[SpecItem]:
    """Generate one program spec; profile rotates with the seed."""
    if params is None:
        params = PROFILES[seed % len(PROFILES)][1]
        # vary the size a little so window pressure differs per seed
        params = replace(
            params, size=params.size + (seed * 7) % 40
        )
    return ProgramGen(seed, params).generate()
