"""Cross-structure microarchitectural invariants (per-cycle checks).

:func:`check_pipeline` is called once per simulated cycle by
:meth:`Pipeline._assert_invariants` when the pipeline runs with
``check_invariants`` enabled (ctor flag or ``CoreConfig.check_invariants``).
It layers *cross*-structure checks on top of the per-structure
``check_invariants`` / ``debug_check`` hooks:

* the scheduler window's own shape (FIFO order, capacities, location
  bookkeeping) via ``scheduler.check_invariants()``;
* steering-scoreboard liveness — every P-SCB entry must point at a live,
  un-issued producer that really sits in the recorded P-IQ/partition
  (catches the stale-partition family of bugs around P-IQ collapse);
* LFST liveness via ``StoreSetPredictor.debug_check`` plus, for
  partitioned windows, hint-partition validity;
* LSQ/ROB agreement via ``LoadStoreUnit.debug_check``;
* in-flight accounting: the in-flight map is exactly the union of the
  decode queue, dispatch queue, and ROB;
* stall attribution conservation: category counts sum to the sampled
  cycle count, one sample per simulated cycle.

Failures raise :class:`InvariantViolation` (an ``AssertionError``
subclass) tagged with the cycle and config so the fuzzer can report and
shrink them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pipeline import Pipeline


class InvariantViolation(AssertionError):
    """A per-cycle microarchitectural invariant failed."""


def check_pipeline(pipe: "Pipeline") -> None:
    """Run every cross-structure invariant; raise on the first failure."""
    try:
        _check(pipe)
    except InvariantViolation:
        raise
    except AssertionError as exc:
        raise InvariantViolation(
            f"[{pipe.config.name}] cycle {pipe.cycle}: {exc}"
        ) from exc


def _check(pipe: "Pipeline") -> None:
    sched = pipe.scheduler
    sched.check_invariants()

    # -- in-flight accounting ------------------------------------------
    tracked = (
        len(pipe.rob) + len(pipe.decode_queue) + len(pipe.dispatch_queue)
    )
    assert len(pipe.inflight) == tracked, (
        f"in-flight map leak: {len(pipe.inflight)} tracked ops but "
        f"rob+decode+dispatch hold {tracked}"
    )

    # -- LSQ / ROB agreement -------------------------------------------
    rob_loads = {op.seq for op in pipe.rob._entries if op.is_load}
    rob_stores = {op.seq for op in pipe.rob._entries if op.is_store}
    pipe.lsu.debug_check(rob_loads, rob_stores)

    # -- steering-scoreboard liveness ----------------------------------
    steer = getattr(sched, "steer", None)
    if steer is not None:
        piqs = getattr(sched, "piqs", None)
        for preg, info in steer.items():
            owner = pipe.inflight.get(info.owner_seq)
            assert owner is not None, (
                f"P-SCB[{preg}]: owner seq {info.owner_seq} not in flight"
            )
            assert not owner.issued, (
                f"P-SCB[{preg}]: owner seq {info.owner_seq} already issued"
            )
            assert owner.dest_preg == preg, (
                f"P-SCB[{preg}]: owner seq {info.owner_seq} writes "
                f"p{owner.dest_preg}"
            )
            assert owner.iq_index == info.iq, (
                f"P-SCB[{preg}]: records P-IQ {info.iq}, owner seq "
                f"{info.owner_seq} lives in {owner.iq_index}"
            )
            if piqs is not None and hasattr(piqs[info.iq], "partitions"):
                piq = piqs[info.iq]
                assert info.partition < len(piq.partitions), (
                    f"P-SCB[{preg}]: stale partition {info.partition} on "
                    f"P-IQ {info.iq} ({len(piq.partitions)} partitions) — "
                    f"collapse remap was not propagated"
                )
                assert owner.iq_partition == info.partition, (
                    f"P-SCB[{preg}]: records partition {info.partition}, "
                    f"owner seq {info.owner_seq} lives in "
                    f"{owner.iq_partition}"
                )

    # -- LFST liveness + hint-partition validity -----------------------
    if pipe.mdp is not None:
        pipe.mdp.debug_check(pipe.inflight)
        piqs = getattr(sched, "piqs", None)
        if piqs is not None:
            for ssid, entry in pipe.mdp._lfst.items():
                if not (entry.valid and entry.iq_index is not None):
                    continue
                assert entry.iq_index < len(piqs), (
                    f"LFST[{ssid}]: P-IQ index {entry.iq_index} out of range"
                )
                piq = piqs[entry.iq_index]
                if hasattr(piq, "partitions"):
                    assert entry.partition < len(piq.partitions), (
                        f"LFST[{ssid}]: stale partition {entry.partition} "
                        f"on P-IQ {entry.iq_index} "
                        f"({len(piq.partitions)} partitions) — collapse "
                        f"remap was not propagated"
                    )

    # -- stall-attribution conservation --------------------------------
    attribution = pipe.attribution
    if attribution is not None:
        total = sum(attribution.cycles.values())
        assert total == attribution.samples, (
            f"attribution categories sum to {total}, sampled "
            f"{attribution.samples} cycles"
        )
        assert attribution.samples == pipe.cycle + 1, (
            f"attribution sampled {attribution.samples} cycles at "
            f"cycle {pipe.cycle}"
        )
