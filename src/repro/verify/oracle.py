"""Differential oracle: every scheduler must commit the same execution.

The timing simulators are trace-driven — they replay the functional
executor's dynamic micro-op stream — so architectural equivalence
reduces to two checks per scheduler config:

1. **Commit-stream identity**: the committed sequence numbers must be
   exactly ``0 .. len(trace)-1`` in order.  Any scheduler bug that
   drops, duplicates, or reorders retirement shows up here.
2. **Independent replay**: the committed ``(pc)`` stream is re-executed
   by a second, deliberately separate interpreter in this module, which
   cross-checks each committed op's recorded memory address, branch
   outcome, and control-flow continuity, then compares the final
   architectural register file and memory image against the functional
   executor's.  This catches trace-generation and replay-consistency
   bugs that commit-stream identity alone would mask.

On top of the differential checks, each timing run executes with the
per-cycle invariant checker enabled (see
:mod:`repro.verify.invariants`) and a stall-attribution engine attached,
so bookkeeping violations surface even when the architectural results
happen to match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import FIG11_ARCHES, config_for
from ..core.pipeline import Pipeline, SimulationDeadlock
from ..isa.instruction import DynOp
from ..isa.registers import NUM_ARCH_REGS, ZERO, reg_name
from ..telemetry.attribution import StallAttribution
from ..workloads.executor import (
    ExecutionLimitExceeded,
    FunctionalExecutor,
    _ALU_BINOPS,
    _BRANCH_CONDS,
)
from ..workloads.program import Program
from .genprog import SpecItem, assemble
from .invariants import InvariantViolation

#: Dynamic micro-op budget per generated program (a shrunken variant
#: that loses its loop-counter init must be rejected, not simulated).
DEFAULT_MAX_OPS = 50_000


@dataclass
class Failure:
    """One oracle failure for one (program, arch) cell."""

    arch: str
    kind: str  # commit_stream | arch_state | invariant | deadlock | crash
    detail: str

    def __str__(self) -> str:
        return f"[{self.arch}] {self.kind}: {self.detail}"


class ReplayMismatch(AssertionError):
    """The independent replay disagreed with a committed op's record."""


# ----------------------------------------------------------------------
# independent replay of a committed op stream
# ----------------------------------------------------------------------
def replay_commits(
    program: Program, commits: Sequence[DynOp]
) -> Tuple[List[float], Dict[int, float]]:
    """Re-execute ``commits`` against ``program``; return (regs, memory).

    Raises :class:`ReplayMismatch` if a committed op's recorded memory
    address or branch outcome disagrees with the replayed semantics, or
    if the committed pc stream is not a connected control-flow path.
    """
    regs: List[float] = [0] * NUM_ARCH_REGS
    memory: Dict[int, float] = {}
    code = program.instructions
    expected_pc = 0

    def read(reg: int) -> float:
        return 0 if reg == ZERO else regs[reg]

    for op in commits:
        if op.pc != expected_pc:
            raise ReplayMismatch(
                f"seq {op.seq}: committed pc {op.pc}, control flow "
                f"expected pc {expected_pc}"
            )
        inst = code[op.pc]
        name = inst.opcode.name
        next_pc = op.pc + 1
        if name == "halt":
            break
        if name in _ALU_BINOPS:
            value = _ALU_BINOPS[name](read(inst.srcs[0]), read(inst.srcs[1]))
            if inst.dest is not None and inst.dest != ZERO:
                regs[inst.dest] = value
        elif name == "addi":
            regs[inst.dest] = int(read(inst.srcs[0])) + inst.imm
        elif name == "shl":
            regs[inst.dest] = int(read(inst.srcs[0])) << inst.imm
        elif name == "shr":
            regs[inst.dest] = int(read(inst.srcs[0])) >> inst.imm
        elif name in ("mov", "fmov"):
            regs[inst.dest] = read(inst.srcs[0])
        elif name == "li":
            regs[inst.dest] = inst.imm
        elif name in ("load", "fload"):
            addr = int(read(inst.srcs[-1])) + inst.imm
            if op.mem_addr != addr:
                raise ReplayMismatch(
                    f"seq {op.seq} (pc {op.pc}): recorded address "
                    f"{op.mem_addr}, replay computes {addr}"
                )
            regs[inst.dest] = memory.get(addr, 0)
        elif name in ("store", "fstore"):
            addr = int(read(inst.srcs[-1])) + inst.imm
            if op.mem_addr != addr:
                raise ReplayMismatch(
                    f"seq {op.seq} (pc {op.pc}): recorded address "
                    f"{op.mem_addr}, replay computes {addr}"
                )
            memory[addr] = read(inst.srcs[0])
        elif inst.opcode.is_branch:
            if name == "jmp":
                taken = True
            else:
                taken = _BRANCH_CONDS[name](
                    read(inst.srcs[0]), read(inst.srcs[1])
                )
            if bool(op.taken) != taken:
                raise ReplayMismatch(
                    f"seq {op.seq} (pc {op.pc}): recorded "
                    f"taken={op.taken}, replay computes {taken}"
                )
            if taken:
                next_pc = op.target_pc
        elif name == "nop":
            pass
        else:  # pragma: no cover - closed opcode table
            raise ReplayMismatch(f"unhandled opcode in replay: {name}")
        expected_pc = next_pc
    return regs, memory


def _same_value(a: float, b: float) -> bool:
    """Equality that treats NaN as equal to NaN.

    FP chains can reach NaN (``inf - inf`` after an fmul blow-up); both
    replays compute the identical op sequence, so a shared NaN is
    agreement, not a divergence.
    """
    if a != a and b != b:
        return True
    return a == b


def _diff_state(
    ref_regs: Sequence[float], ref_mem: Dict[int, float],
    got_regs: Sequence[float], got_mem: Dict[int, float],
) -> Optional[str]:
    """First architectural-state difference, or None when identical."""
    for reg in range(NUM_ARCH_REGS):
        if not _same_value(ref_regs[reg], got_regs[reg]):
            return (
                f"{reg_name(reg)}: reference {ref_regs[reg]!r}, "
                f"committed replay {got_regs[reg]!r}"
            )
    for addr in sorted(set(ref_mem) | set(got_mem)):
        if not _same_value(ref_mem.get(addr, 0), got_mem.get(addr, 0)):
            return (
                f"mem[{addr}]: reference {ref_mem.get(addr, 0)!r}, "
                f"committed replay {got_mem.get(addr, 0)!r}"
            )
    return None


# ----------------------------------------------------------------------
# the differential run
# ----------------------------------------------------------------------
def run_reference(
    spec: Sequence[SpecItem], max_ops: int = DEFAULT_MAX_OPS
):
    """Assemble + functionally execute a spec.

    Returns ``(program, trace, final_regs, final_mem)``.  Propagates
    :class:`ExecutionLimitExceeded` for non-halting variants (the
    shrinker uses this to reject them).
    """
    program = assemble(spec)
    executor = FunctionalExecutor(program)
    trace = executor.run(max_ops=max_ops)
    return program, trace, list(executor.registers), dict(executor.memory)


def check_arch(
    program: Program,
    trace,
    ref_regs: Sequence[float],
    ref_mem: Dict[int, float],
    arch: str,
    width: int = 8,
    check_invariants: bool = True,
    max_cycles: int = 5_000_000,
) -> Optional[Failure]:
    """Run one scheduler config against the reference; None when clean."""
    pipe = Pipeline(
        trace,
        config_for(arch, width),
        check_invariants=check_invariants,
        record_commits=True,
        attribution=StallAttribution(),
    )
    try:
        result = pipe.run(max_cycles=max_cycles)
    except InvariantViolation as exc:
        return Failure(arch=arch, kind="invariant", detail=str(exc))
    except SimulationDeadlock as exc:
        return Failure(arch=arch, kind="deadlock", detail=str(exc))
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return Failure(
            arch=arch, kind="crash",
            detail=f"{type(exc).__name__}: {exc}",
        )
    seqs = [op.seq for op in pipe.commit_log]
    if seqs != list(range(len(trace))):
        return Failure(
            arch=arch, kind="commit_stream",
            detail=_describe_stream_diff(seqs, len(trace)),
        )
    if result.stats.committed != len(trace):
        return Failure(
            arch=arch, kind="commit_stream",
            detail=(
                f"stats.committed={result.stats.committed}, "
                f"trace has {len(trace)} ops"
            ),
        )
    try:
        got_regs, got_mem = replay_commits(program, pipe.commit_log)
    except ReplayMismatch as exc:
        return Failure(arch=arch, kind="arch_state", detail=str(exc))
    diff = _diff_state(ref_regs, ref_mem, got_regs, got_mem)
    if diff is not None:
        return Failure(arch=arch, kind="arch_state", detail=diff)
    return None


def _describe_stream_diff(seqs: List[int], expected_len: int) -> str:
    expected = list(range(expected_len))
    if len(seqs) != expected_len:
        return f"committed {len(seqs)} ops, trace has {expected_len}"
    for index, (got, want) in enumerate(zip(seqs, expected)):
        if got != want:
            return (
                f"commit stream diverges at position {index}: "
                f"committed seq {got}, expected {want}"
            )
    return "commit stream mismatch"


def run_spec(
    spec: Sequence[SpecItem],
    arches: Sequence[str] = FIG11_ARCHES,
    width: int = 8,
    check_invariants: bool = True,
    max_ops: int = DEFAULT_MAX_OPS,
    stop_at_first: bool = False,
) -> List[Failure]:
    """Run one program spec through every config; return all failures."""
    program, trace, ref_regs, ref_mem = run_reference(spec, max_ops=max_ops)
    failures: List[Failure] = []
    for arch in arches:
        failure = check_arch(
            program, trace, ref_regs, ref_mem, arch,
            width=width, check_invariants=check_invariants,
        )
        if failure is not None:
            failures.append(failure)
            if stop_at_first:
                break
    return failures
