"""Delta-debugging shrinker for failing fuzz programs.

Classic ddmin over the program *spec* (the item list produced by
:mod:`repro.verify.genprog`): repeatedly delete chunks of items, keeping
any deletion after which the predicate still reports the same failure.
The caller's predicate re-assembles and re-runs the candidate — a
variant that no longer halts (e.g. a loop whose counter init was
deleted) simply fails the predicate and is rejected, so the shrinker
needs no structural knowledge of loops or labels
(:func:`~repro.verify.genprog.assemble` already repairs dangling branch
targets).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .genprog import SpecItem

#: Bound on predicate evaluations per shrink (each one is a full
#: differential run; keep repro turnaround sane).
DEFAULT_MAX_EVALS = 400


def ddmin(
    spec: Sequence[SpecItem],
    predicate: Callable[[List[SpecItem]], bool],
    max_evals: int = DEFAULT_MAX_EVALS,
) -> List[SpecItem]:
    """Minimise ``spec`` while ``predicate`` keeps returning True.

    ``predicate`` must be True for ``spec`` itself (the caller verifies
    this; ddmin assumes it).  Returns a 1-minimal-ish sublist: no single
    remaining chunk at the final granularity can be removed.
    """
    items = list(spec)
    evals = 0
    granularity = 2
    while len(items) >= 2 and evals < max_evals:
        chunk = max(1, len(items) // granularity)
        removed_any = False
        start = 0
        while start < len(items) and evals < max_evals:
            candidate = items[:start] + items[start + chunk:]
            evals += 1
            if candidate and predicate(candidate):
                items = candidate
                removed_any = True
                # items shifted left into `start`; retry the same window
            else:
                start += chunk
        if removed_any:
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break  # 1-minimal at single-item granularity
        else:
            granularity = min(len(items), granularity * 2)
    return items
