"""Workloads: program DSL, functional executor, traces, kernel suite."""

from .executor import ExecutionLimitExceeded, FunctionalExecutor, execute
from .kernels import KERNELS, KernelSpec, build_trace
from .program import Program, ProgramBuilder
from .serialization import TraceFormatError, load_trace, save_trace
from .suite import SMOKE_NAMES, SUITE_NAMES, default_suite, get_trace
from .trace import Trace

__all__ = [
    "TraceFormatError",
    "load_trace",
    "save_trace",
    "ExecutionLimitExceeded",
    "FunctionalExecutor",
    "execute",
    "KERNELS",
    "KernelSpec",
    "build_trace",
    "Program",
    "ProgramBuilder",
    "SMOKE_NAMES",
    "SUITE_NAMES",
    "default_suite",
    "get_trace",
    "Trace",
]
