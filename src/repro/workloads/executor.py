"""Functional executor: runs a program and emits its dynamic micro-op trace.

The executor interprets the ISA semantics with an architectural register file
and a sparse word-addressed memory, producing one immutable
:class:`~repro.isa.instruction.DynOp` per executed instruction.  The timing
simulators then *replay* the trace — they never need functional semantics,
only resolved memory addresses and branch outcomes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..isa.instruction import DynOp, Instruction
from ..isa.registers import NUM_ARCH_REGS, ZERO
from .program import Program
from .trace import Trace


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program does not halt within ``max_ops`` micro-ops."""


class FunctionalExecutor:
    """Interprets a :class:`~repro.workloads.program.Program`.

    Args:
        program: The assembled program.
        memory: Optional initial memory image (byte address -> 64-bit value;
            addresses are treated as 8-byte aligned words).
        registers: Optional initial register values (arch reg id -> value).
    """

    def __init__(
        self,
        program: Program,
        memory: Optional[Dict[int, float]] = None,
        registers: Optional[Dict[int, float]] = None,
    ):
        self.program = program
        self.memory: Dict[int, float] = dict(memory or {})
        self.registers: List[float] = [0] * NUM_ARCH_REGS
        for reg, value in (registers or {}).items():
            self.registers[reg] = value
        self.registers[ZERO] = 0

    # ------------------------------------------------------------------
    def _read(self, reg: int) -> float:
        return 0 if reg == ZERO else self.registers[reg]

    def _write(self, reg: Optional[int], value: float) -> None:
        if reg is not None and reg != ZERO:
            self.registers[reg] = value

    def _mem_addr(self, inst: Instruction) -> int:
        base = inst.srcs[-1]  # address base is the last source operand
        return int(self._read(base)) + inst.imm

    def run(self, max_ops: int = 2_000_000) -> Trace:
        """Execute until ``halt`` and return the dynamic trace.

        Raises:
            ExecutionLimitExceeded: If ``max_ops`` is reached before ``halt``.
        """
        ops: List[DynOp] = []
        pc = 0
        code = self.program.instructions
        labels = self.program.labels
        while len(ops) < max_ops:
            if not 0 <= pc < len(code):
                raise IndexError(f"pc out of range: {pc}")
            inst = code[pc]
            name = inst.opcode.name
            next_pc = pc + 1
            mem_addr: Optional[int] = None
            taken: Optional[bool] = None
            target_pc: Optional[int] = None

            if name == "halt":
                ops.append(
                    DynOp(
                        seq=len(ops),
                        pc=pc,
                        opcode=inst.opcode,
                        dest=None,
                        srcs=(),
                        fallthrough_pc=pc + 1,
                    )
                )
                break

            if name in _ALU_BINOPS:
                a, b = self._read(inst.srcs[0]), self._read(inst.srcs[1])
                self._write(inst.dest, _ALU_BINOPS[name](a, b))
            elif name == "addi":
                self._write(inst.dest, int(self._read(inst.srcs[0])) + inst.imm)
            elif name == "shl":
                self._write(inst.dest, int(self._read(inst.srcs[0])) << inst.imm)
            elif name == "shr":
                self._write(inst.dest, int(self._read(inst.srcs[0])) >> inst.imm)
            elif name in ("mov", "fmov"):
                self._write(inst.dest, self._read(inst.srcs[0]))
            elif name == "li":
                self._write(inst.dest, inst.imm)
            elif name in ("load", "fload"):
                mem_addr = self._mem_addr(inst)
                self._write(inst.dest, self.memory.get(mem_addr, 0))
            elif name in ("store", "fstore"):
                mem_addr = self._mem_addr(inst)
                self.memory[mem_addr] = self._read(inst.srcs[0])
            elif inst.opcode.is_branch:
                target_pc = labels[inst.target] if inst.target else pc + 1
                if name == "jmp":
                    taken = True
                else:
                    a, b = self._read(inst.srcs[0]), self._read(inst.srcs[1])
                    taken = _BRANCH_CONDS[name](a, b)
                if taken:
                    next_pc = target_pc
            elif name == "nop":
                pass
            else:  # pragma: no cover - the opcode table is closed
                raise NotImplementedError(f"unhandled opcode: {name}")

            ops.append(
                DynOp(
                    seq=len(ops),
                    pc=pc,
                    opcode=inst.opcode,
                    dest=inst.dest,
                    srcs=inst.srcs,
                    mem_addr=mem_addr,
                    taken=taken,
                    target_pc=target_pc,
                    fallthrough_pc=pc + 1,
                )
            )
            pc = next_pc
        else:
            raise ExecutionLimitExceeded(
                f"{self.program.name}: no halt within {max_ops} micro-ops"
            )
        return Trace(name=self.program.name, ops=tuple(ops))


def _int_div(a: float, b: float) -> int:
    bi = int(b)
    return 0 if bi == 0 else int(a) // bi


def _int_rem(a: float, b: float) -> int:
    bi = int(b)
    return 0 if bi == 0 else int(a) % bi


_ALU_BINOPS = {
    "add": lambda a, b: int(a) + int(b),
    "sub": lambda a, b: int(a) - int(b),
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "slt": lambda a, b: 1 if a < b else 0,
    "mul": lambda a, b: int(a) * int(b),
    "div": _int_div,
    "rem": _int_rem,
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b if b else 0.0,
}

_BRANCH_CONDS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
}


def execute(
    program: Program,
    memory: Optional[Dict[int, float]] = None,
    registers: Optional[Dict[int, float]] = None,
    max_ops: int = 2_000_000,
) -> Trace:
    """Convenience wrapper: run ``program`` and return its :class:`Trace`."""
    return FunctionalExecutor(program, memory=memory, registers=registers).run(
        max_ops=max_ops
    )
