"""Workload kernel suite.

The paper evaluates on SPEC CPU2006/2017 SimPoints, which are not available
offline.  This module substitutes a suite of small kernels chosen to span the
behaviours that differentiate the schedulers under study:

=================  =============================================================
Kernel             Behaviour exercised
=================  =============================================================
stream_triad       streaming FP, high MLP, prefetcher-friendly (lbm/bwaves-like)
pointer_chase      serial dependent loads, latency bound (mcf-like)
hash_probe         independent random loads, raw MLP (omnetpp/xalanc-like)
matmul_tile        compute-dense FP ILP, cache resident (cactus-like)
stencil3           mixed locality, moderate reuse
reduce_chain       one long serial FP dependence chain, minimal ILP
histogram          store->load aliasing, exercises MDP and MDA steering
branchy_count      data-dependent branches, mispredict heavy (leela-like)
dag_wide           many short independent chains (P-IQ sharing stressor)
mixed_int_fp       heterogeneous port pressure, int and FP chains interleaved
gather_stride      large-stride gathers, prefetch-defeating
spill_fill         stack-like store-then-load traffic, store forwarding
mdep_chain         M-dependent load behind a slow store (MDA steering target)
=================  =============================================================

Three extra kernels (``binary_search``, ``transpose_blocks``, ``crc_chain``)
are registered with ``in_suite=False``: available to users and benchmarks
without being part of the default figure suite.

Each kernel builder returns a fully assembled :class:`Program` plus its
initial memory image; :func:`build_trace` runs the functional executor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..isa.registers import F, R
from .executor import execute
from .program import Program, ProgramBuilder
from .trace import Trace

#: Base addresses of the data regions used by kernels (64-byte aligned,
#: far apart so regions never alias).
REGION_A = 0x0010_0000
REGION_B = 0x0080_0000
REGION_C = 0x0100_0000
REGION_TABLE = 0x0200_0000
WORD = 8


@dataclass(frozen=True)
class KernelSpec:
    """A named kernel: builder plus documentation."""

    name: str
    description: str
    build: Callable[[int, int], Tuple[Program, Dict[int, float]]]
    #: Rough micro-ops emitted per iteration (used to pick iteration counts).
    ops_per_iter: int
    #: Whether the kernel belongs to the default evaluation suite; extras
    #: are available to users/benchmarks without affecting the figures.
    in_suite: bool = True


# ----------------------------------------------------------------------
# kernel builders; each returns (program, initial_memory)
# ----------------------------------------------------------------------


def _stream_triad(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """a[i] = b[i] + s * c[i] over arrays larger than the L3."""
    b = ProgramBuilder("stream_triad")
    b.li(R[16], REGION_A)
    b.li(R[17], REGION_B)
    b.li(R[18], REGION_C)
    b.li(R[19], 0)
    b.li(R[20], n)
    b.li(F[10], 3)  # scalar s
    b.label("loop")
    b.fload(F[1], R[17], 0)
    b.fload(F[2], R[18], 0)
    b.fmul(F[3], F[2], F[10])
    b.fadd(F[4], F[1], F[3])
    b.fstore(F[4], R[16], 0)
    b.addi(R[16], R[16], WORD)
    b.addi(R[17], R[17], WORD)
    b.addi(R[18], R[18], WORD)
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    rng = random.Random(seed)
    memory = {}
    for i in range(n):
        memory[REGION_B + i * WORD] = rng.uniform(-1, 1)
        memory[REGION_C + i * WORD] = rng.uniform(-1, 1)
    return b.build(), memory


def _pointer_chase(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """Traverse a randomly permuted linked list spanning ~4 MiB."""
    nodes = max(1024, min(4 * n, 1 << 16))
    rng = random.Random(seed)
    order = list(range(nodes))
    rng.shuffle(order)
    memory: Dict[int, float] = {}
    for i in range(nodes):
        addr = REGION_TABLE + order[i] * 64  # one node per cache line
        nxt = REGION_TABLE + order[(i + 1) % nodes] * 64
        memory[addr] = nxt
    head = REGION_TABLE + order[0] * 64

    b = ProgramBuilder("pointer_chase")
    b.li(R[16], head)
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.load(R[16], R[16], 0)  # serial: next = *node
    b.addi(R[21], R[21], 1)  # independent work alongside the chase
    b.add(R[22], R[22], R[21])
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), memory


def _hash_probe(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """LCG-indexed probes of a large table: independent misses, raw MLP."""
    table_words = 1 << 16  # 512 KiB of words spread across lines
    b = ProgramBuilder("hash_probe")
    b.li(R[16], REGION_TABLE)
    b.li(R[17], 12345 + seed)
    b.li(R[18], 1103515245)
    b.li(R[23], table_words - 1)
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.mul(R[17], R[17], R[18])  # LCG step (serial, but cheap)
    b.addi(R[17], R[17], 12345)
    b.and_(R[21], R[17], R[23])  # index = state & mask
    b.shl(R[21], R[21], 3)
    b.add(R[21], R[21], R[16])
    b.load(R[22], R[21], 0)  # independent of previous loads
    b.add(R[24], R[24], R[22])
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), {}


def _matmul_tile(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """Register-blocked 4-wide dot products over a cache-resident tile."""
    k_len = 64  # inner dimension; 4 KiB footprint -> L1 resident
    rng = random.Random(seed)
    memory: Dict[int, float] = {}
    for i in range(4 * k_len):
        memory[REGION_A + i * WORD] = rng.uniform(-1, 1)
    for i in range(k_len):
        memory[REGION_B + i * WORD] = rng.uniform(-1, 1)

    b = ProgramBuilder("matmul_tile")
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("outer")
    b.li(R[16], REGION_A)
    b.li(R[17], REGION_B)
    b.li(R[21], 0)
    b.li(R[22], k_len)
    b.label("inner")
    b.fload(F[1], R[17], 0)  # b[k]
    b.fload(F[2], R[16], 0)  # a0[k]
    b.fload(F[3], R[16], k_len * WORD)  # a1[k]
    b.fload(F[4], R[16], 2 * k_len * WORD)  # a2[k]
    b.fload(F[5], R[16], 3 * k_len * WORD)  # a3[k]
    b.fmul(F[2], F[2], F[1])
    b.fmul(F[3], F[3], F[1])
    b.fmul(F[4], F[4], F[1])
    b.fmul(F[5], F[5], F[1])
    b.fadd(F[6], F[6], F[2])  # four parallel accumulator chains
    b.fadd(F[7], F[7], F[3])
    b.fadd(F[8], F[8], F[4])
    b.fadd(F[9], F[9], F[5])
    b.addi(R[16], R[16], WORD)
    b.addi(R[17], R[17], WORD)
    b.addi(R[21], R[21], 1)
    b.blt(R[21], R[22], "inner")
    b.fstore(F[6], R[16], 0)
    b.fstore(F[7], R[16], WORD)
    b.fstore(F[8], R[16], 2 * WORD)
    b.fstore(F[9], R[16], 3 * WORD)
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "outer")
    b.halt()
    return b.build(), memory


def _stencil3(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """out[i] = (in[i-1] + in[i] + in[i+1]) / 3 over an L2-sized array."""
    rng = random.Random(seed)
    memory = {REGION_A + i * WORD: rng.uniform(0, 10) for i in range(n + 2)}
    b = ProgramBuilder("stencil3")
    b.li(R[16], REGION_A)
    b.li(R[17], REGION_B)
    b.li(F[10], 3)
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.fload(F[1], R[16], 0)
    b.fload(F[2], R[16], WORD)
    b.fload(F[3], R[16], 2 * WORD)
    b.fadd(F[4], F[1], F[2])
    b.fadd(F[4], F[4], F[3])
    b.fdiv(F[5], F[4], F[10])
    b.fstore(F[5], R[17], 0)
    b.addi(R[16], R[16], WORD)
    b.addi(R[17], R[17], WORD)
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), memory


def _reduce_chain(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """sum += a[i]: a single serial FP add chain (minimal ILP)."""
    rng = random.Random(seed)
    memory = {REGION_A + i * WORD: rng.uniform(-1, 1) for i in range(n)}
    b = ProgramBuilder("reduce_chain")
    b.li(R[16], REGION_A)
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.fload(F[1], R[16], 0)
    b.fadd(F[2], F[2], F[1])  # serial accumulator
    b.addi(R[16], R[16], WORD)
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), memory


def _dotprod(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """sum += a[i] * b[i]: two streams feeding a serial FP accumulator.

    The textbook tracing demo: plenty of load-level parallelism up front,
    one serial add chain at the back — both phases are obvious in a
    pipeline-viewer timeline.
    """
    rng = random.Random(seed)
    memory = {REGION_A + i * WORD: rng.uniform(-1, 1) for i in range(n)}
    memory.update(
        {REGION_B + i * WORD: rng.uniform(-1, 1) for i in range(n)}
    )
    b = ProgramBuilder("dotprod")
    b.li(R[16], REGION_A)
    b.li(R[17], REGION_B)
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.fload(F[1], R[16], 0)
    b.fload(F[2], R[17], 0)
    b.fmul(F[3], F[1], F[2])
    b.fadd(F[4], F[4], F[3])  # serial accumulator
    b.addi(R[16], R[16], WORD)
    b.addi(R[17], R[17], WORD)
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), memory


def _histogram(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """bins[a[i] & 63] += 1: frequent store->load aliasing (MDP stressor)."""
    rng = random.Random(seed)
    memory = {REGION_A + i * WORD: rng.randrange(1 << 30) for i in range(n)}
    b = ProgramBuilder("histogram")
    b.li(R[16], REGION_A)
    b.li(R[17], REGION_B)  # bins
    b.li(R[23], 63)
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.load(R[21], R[16], 0)  # value
    b.and_(R[21], R[21], R[23])  # bucket
    b.shl(R[21], R[21], 3)
    b.add(R[21], R[21], R[17])
    b.load(R[22], R[21], 0)  # bins[bucket]  (often aliases a recent store)
    b.addi(R[22], R[22], 1)
    b.store(R[22], R[21], 0)
    b.addi(R[16], R[16], WORD)
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), memory


def _branchy_count(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """Count elements above a threshold: data-dependent, poorly predictable."""
    rng = random.Random(seed)
    memory = {REGION_A + i * WORD: rng.randrange(100) for i in range(n)}
    b = ProgramBuilder("branchy_count")
    b.li(R[16], REGION_A)
    b.li(R[23], 50)  # threshold
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.load(R[21], R[16], 0)
    b.blt(R[21], R[23], "skip")
    b.addi(R[24], R[24], 1)  # taken ~half the time, data dependent
    b.add(R[25], R[25], R[21])
    b.label("skip")
    b.addi(R[16], R[16], WORD)
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), memory


def _dag_wide(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """Six short independent chains per iteration, all fed by loads.

    This is the shape that motivates P-IQ sharing: many short-length
    dependence chains outnumber the physical P-IQs.
    """
    rng = random.Random(seed)
    memory = {REGION_A + i * WORD: rng.randrange(1 << 20) for i in range(6 * n + 8)}
    b = ProgramBuilder("dag_wide")
    b.li(R[16], REGION_A)
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    # six independent two-op chains, each rooted at its own load
    for lane in range(6):
        val = R[21 + lane]
        b.load(val, R[16], lane * WORD)
        b.addi(val, val, lane + 1)
        b.add(R[27], R[27], val)
    b.addi(R[16], R[16], 6 * WORD)
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), memory


def _mixed_int_fp(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """Interleaved integer and FP chains with mul/div port pressure."""
    rng = random.Random(seed)
    memory = {REGION_A + i * WORD: rng.uniform(1, 2) for i in range(n + 4)}
    b = ProgramBuilder("mixed_int_fp")
    b.li(R[16], REGION_A)
    b.li(R[21], 7)
    b.li(R[22], 3)
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.fload(F[1], R[16], 0)
    b.fmul(F[2], F[1], F[1])
    b.fadd(F[3], F[3], F[2])
    b.mul(R[23], R[21], R[22])
    b.add(R[24], R[24], R[23])
    b.xor(R[21], R[21], R[24])
    b.addi(R[16], R[16], WORD)
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), memory


def _gather_stride(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """Gather with a 1 KiB stride: defeats the stride prefetcher's reach."""
    b = ProgramBuilder("gather_stride")
    b.li(R[16], REGION_TABLE)
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.load(R[21], R[16], 0)
    b.add(R[22], R[22], R[21])
    b.load(R[23], R[16], 512)
    b.add(R[24], R[24], R[23])
    b.addi(R[16], R[16], 1024)
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), {}


def _spill_fill(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """Store a small frame then immediately reload it (forwarding traffic)."""
    b = ProgramBuilder("spill_fill")
    b.li(R[16], REGION_C)  # frame pointer
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.addi(R[21], R[21], 3)
    b.addi(R[22], R[22], 5)
    b.store(R[21], R[16], 0)
    b.store(R[22], R[16], WORD)
    b.load(R[23], R[16], 0)  # fills hit the just-written frame
    b.load(R[24], R[16], WORD)
    b.add(R[25], R[23], R[24])
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), {}


def _mdep_chain(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """Store-to-load dependence behind a cache-missing producer chain.

    Each iteration stores a value that depends on a slow (pointer-chase)
    load into a mailbox slot, then immediately reloads it and consumes it,
    while four independent ALU chains keep the P-IQs under pressure.  The
    same static store/load pc pair aliases every iteration, so the MDP
    trains once and then every load carries an M-dependence on an
    in-flight store — the exact pattern M-dependence-aware steering
    targets (paper SIII-B).
    """
    nodes = 1 << 14
    rng = random.Random(seed)
    order = list(range(nodes))
    rng.shuffle(order)
    memory: Dict[int, float] = {}
    for i in range(nodes):
        addr = REGION_TABLE + order[i] * 64
        memory[addr] = REGION_TABLE + order[(i + 1) % nodes] * 64

    b = ProgramBuilder("mdep_chain")
    b.li(R[16], REGION_TABLE + order[0] * 64)  # chase pointer
    b.li(R[17], REGION_C)  # mailbox
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.load(R[16], R[16], 0)       # long-latency producer (chase)
    b.store(R[16], R[17], 0)      # store waits on the slow load
    b.load(R[21], R[17], 0)       # M-dependent load (same word)
    b.addi(R[22], R[21], 1)       # its consumers
    b.add(R[23], R[23], R[22])
    # independent chains that keep the clustered P-IQs busy
    b.addi(R[24], R[24], 1)
    b.addi(R[25], R[25], 3)
    b.xor(R[26], R[26], R[24])
    b.add(R[27], R[27], R[25])
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), memory


def _binary_search(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """Repeated binary searches: dependent loads + unpredictable branches."""
    table_words = 1 << 12
    memory = {REGION_TABLE + i * WORD: i * 3 for i in range(table_words)}
    b = ProgramBuilder("binary_search")
    b.li(R[20], n)
    b.li(R[21], 123 + seed)
    b.label("lookup")
    b.li(R[22], 1103515245)
    b.mul(R[21], R[21], R[22])
    b.addi(R[21], R[21], 12345)
    b.li(R[23], 3 * table_words - 1)
    b.and_(R[1], R[21], R[23])  # key
    b.li(R[2], 0)  # lo
    b.li(R[3], table_words)  # hi
    b.label("bsearch")
    b.sub(R[4], R[3], R[2])
    b.li(R[5], 1)
    b.blt(R[4], R[5], "done")
    b.add(R[6], R[2], R[3])
    b.shr(R[6], R[6], 1)
    b.shl(R[7], R[6], 3)
    b.li(R[8], REGION_TABLE)
    b.add(R[7], R[7], R[8])
    b.load(R[9], R[7], 0)
    b.blt(R[9], R[1], "go_right")
    b.mov(R[3], R[6])
    b.jmp("bsearch")
    b.label("go_right")
    b.addi(R[2], R[6], 1)
    b.jmp("bsearch")
    b.label("done")
    b.add(R[10], R[10], R[2])
    b.addi(R[20], R[20], -1)
    b.bne(R[20], R[0], "lookup")
    b.halt()
    return b.build(), memory


def _transpose_blocks(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """Row-read / column-write transpose: conflict-prone strided stores."""
    dim = 64  # 64x64 words = 32 KiB source
    rng = random.Random(seed)
    memory = {
        REGION_A + i * WORD: rng.uniform(-1, 1) for i in range(dim * dim)
    }
    b = ProgramBuilder("transpose_blocks")
    b.li(R[19], 0)
    b.li(R[20], n)  # rows processed (wraps over the matrix)
    b.li(R[23], dim - 1)
    b.label("row")
    b.and_(R[21], R[19], R[23])  # row index (mod dim)
    b.shl(R[16], R[21], 9)  # row base offset = row * dim * 8
    b.li(R[24], REGION_A)
    b.add(R[16], R[16], R[24])
    b.shl(R[17], R[21], 3)  # column base offset = row * 8
    b.li(R[24], REGION_B)
    b.add(R[17], R[17], R[24])
    for j in range(4):  # unrolled partial row
        b.fload(F[1], R[16], j * WORD)
        b.fstore(F[1], R[17], j * dim * WORD)  # column stride
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "row")
    b.halt()
    return b.build(), memory


def _crc_chain(n: int, seed: int) -> Tuple[Program, Dict[int, float]]:
    """CRC-like serial shift/xor chain: ILP ~ 1 by construction."""
    rng = random.Random(seed)
    memory = {REGION_A + i * WORD: rng.randrange(1 << 30) for i in range(n)}
    b = ProgramBuilder("crc_chain")
    b.li(R[16], REGION_A)
    b.li(R[21], 0xEDB)  # "polynomial"
    b.li(R[19], 0)
    b.li(R[20], n)
    b.label("loop")
    b.load(R[22], R[16], 0)
    b.xor(R[23], R[23], R[22])  # serial chain through r23
    b.shr(R[24], R[23], 1)
    b.and_(R[25], R[23], R[21])
    b.xor(R[23], R[24], R[25])
    b.addi(R[16], R[16], WORD)
    b.addi(R[19], R[19], 1)
    b.blt(R[19], R[20], "loop")
    b.halt()
    return b.build(), memory


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

KERNELS: Dict[str, KernelSpec] = {
    spec.name: spec
    for spec in [
        KernelSpec("stream_triad", "streaming FP triad, high MLP", _stream_triad, 10),
        KernelSpec("pointer_chase", "serial dependent loads", _pointer_chase, 5),
        KernelSpec("hash_probe", "independent random loads", _hash_probe, 9),
        KernelSpec("matmul_tile", "compute-dense FP ILP", _matmul_tile, 1100),
        KernelSpec("stencil3", "3-point stencil", _stencil3, 11),
        KernelSpec("reduce_chain", "serial FP reduction", _reduce_chain, 5),
        KernelSpec("histogram", "store->load aliasing", _histogram, 10),
        KernelSpec("branchy_count", "data-dependent branches", _branchy_count, 7),
        KernelSpec("dag_wide", "many short chains", _dag_wide, 21),
        KernelSpec("mixed_int_fp", "int+FP port pressure", _mixed_int_fp, 9),
        KernelSpec("gather_stride", "prefetch-defeating gathers", _gather_stride, 7),
        KernelSpec("spill_fill", "store-to-load forwarding", _spill_fill, 9),
        KernelSpec("mdep_chain", "M-dependent load behind a slow store",
                   _mdep_chain, 11),
        # extra kernels, outside the default evaluation suite
        KernelSpec("dotprod", "two streams into a serial FP accumulator",
                   _dotprod, 9, in_suite=False),
        KernelSpec("binary_search", "dependent loads + hard branches",
                   _binary_search, 80, in_suite=False),
        KernelSpec("transpose_blocks", "strided column stores",
                   _transpose_blocks, 16, in_suite=False),
        KernelSpec("crc_chain", "serial shift/xor chain (ILP ~ 1)",
                   _crc_chain, 8, in_suite=False),
    ]
}


def build_trace(
    name: str, target_ops: int = 20_000, seed: int = 7, max_ops: Optional[int] = None
) -> Trace:
    """Build kernel ``name`` sized to roughly ``target_ops`` dynamic micro-ops.

    Args:
        name: A key of :data:`KERNELS`.
        target_ops: Desired dynamic trace length (approximate).
        seed: Seed for data generation (traces are deterministic given it).
        max_ops: Hard cap for the functional executor.

    Returns:
        The executed :class:`~repro.workloads.trace.Trace`.
    """
    spec = KERNELS[name]
    iters = max(1, target_ops // spec.ops_per_iter)
    program, memory = spec.build(iters, seed)
    limit = max_ops if max_ops is not None else max(4 * target_ops, 100_000)
    trace = execute(program, memory=memory, max_ops=limit)
    return trace.truncated(max(target_ops, 64))
