"""Program construction DSL.

Workload kernels are written against :class:`ProgramBuilder`, a tiny
assembler: one method per opcode plus labels for control flow.  ``build()``
resolves labels and returns an immutable :class:`Program` that the functional
executor (:mod:`repro.workloads.executor`) can run.

Example::

    b = ProgramBuilder("count")
    b.li(R[1], 10)
    b.label("loop")
    b.addi(R[1], R[1], -1)
    b.bne(R[1], R[0], "loop")
    b.halt()
    program = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import opcode


@dataclass(frozen=True)
class Program:
    """An assembled program: instructions with resolved branch targets.

    Attributes:
        name: Workload name used in reports.
        instructions: Static instructions; ``instructions[i].pc == i``.
        labels: Label -> pc map (useful for tests and disassembly).
    """

    name: str
    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int]

    def __len__(self) -> int:
        return len(self.instructions)

    def target_pc(self, label: str) -> int:
        return self.labels[label]

    def disassemble(self) -> str:
        """Return a printable listing of the program."""
        pc_labels: Dict[int, List[str]] = {}
        for label, pc in self.labels.items():
            pc_labels.setdefault(pc, []).append(label)
        lines = []
        for inst in self.instructions:
            for label in pc_labels.get(inst.pc, ()):
                lines.append(f"{label}:")
            lines.append(f"  {inst.pc:4d}: {inst}")
        return "\n".join(lines)


class ProgramBuilder:
    """Incrementally builds a :class:`Program`.

    Three-operand ops take ``(dest, src1, src2)``; immediates come last.
    Memory ops use base-register + immediate-offset addressing.
    """

    def __init__(self, name: str = "program"):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def label(self, name: str) -> None:
        """Attach ``name`` to the pc of the next emitted instruction."""
        if name in self._labels:
            raise ValueError(f"duplicate label: {name}")
        self._labels[name] = len(self._instructions)

    def _emit(
        self,
        op: str,
        dest: Optional[int] = None,
        srcs: Sequence[int] = (),
        imm: int = 0,
        target: Optional[str] = None,
    ) -> None:
        self._instructions.append(
            Instruction(
                opcode=opcode(op),
                dest=dest,
                srcs=tuple(srcs),
                imm=imm,
                target=target,
                pc=len(self._instructions),
            )
        )

    # ------------------------------------------------------------------
    # integer ALU
    # ------------------------------------------------------------------
    def add(self, rd: int, rs1: int, rs2: int) -> None:
        self._emit("add", rd, (rs1, rs2))

    def addi(self, rd: int, rs1: int, imm: int) -> None:
        self._emit("addi", rd, (rs1,), imm=imm)

    def sub(self, rd: int, rs1: int, rs2: int) -> None:
        self._emit("sub", rd, (rs1, rs2))

    def and_(self, rd: int, rs1: int, rs2: int) -> None:
        self._emit("and", rd, (rs1, rs2))

    def or_(self, rd: int, rs1: int, rs2: int) -> None:
        self._emit("or", rd, (rs1, rs2))

    def xor(self, rd: int, rs1: int, rs2: int) -> None:
        self._emit("xor", rd, (rs1, rs2))

    def shl(self, rd: int, rs1: int, imm: int) -> None:
        self._emit("shl", rd, (rs1,), imm=imm)

    def shr(self, rd: int, rs1: int, imm: int) -> None:
        self._emit("shr", rd, (rs1,), imm=imm)

    def slt(self, rd: int, rs1: int, rs2: int) -> None:
        self._emit("slt", rd, (rs1, rs2))

    def mov(self, rd: int, rs: int) -> None:
        self._emit("mov", rd, (rs,))

    def li(self, rd: int, imm: int) -> None:
        self._emit("li", rd, imm=imm)

    def mul(self, rd: int, rs1: int, rs2: int) -> None:
        self._emit("mul", rd, (rs1, rs2))

    def div(self, rd: int, rs1: int, rs2: int) -> None:
        self._emit("div", rd, (rs1, rs2))

    def rem(self, rd: int, rs1: int, rs2: int) -> None:
        self._emit("rem", rd, (rs1, rs2))

    # ------------------------------------------------------------------
    # floating point
    # ------------------------------------------------------------------
    def fadd(self, fd: int, fs1: int, fs2: int) -> None:
        self._emit("fadd", fd, (fs1, fs2))

    def fsub(self, fd: int, fs1: int, fs2: int) -> None:
        self._emit("fsub", fd, (fs1, fs2))

    def fmul(self, fd: int, fs1: int, fs2: int) -> None:
        self._emit("fmul", fd, (fs1, fs2))

    def fdiv(self, fd: int, fs1: int, fs2: int) -> None:
        self._emit("fdiv", fd, (fs1, fs2))

    def fmov(self, fd: int, fs: int) -> None:
        self._emit("fmov", fd, (fs,))

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def load(self, rd: int, base: int, offset: int = 0) -> None:
        """``rd <- mem[base + offset]`` (integer load)."""
        self._emit("load", rd, (base,), imm=offset)

    def fload(self, fd: int, base: int, offset: int = 0) -> None:
        """``fd <- mem[base + offset]`` (floating-point load)."""
        self._emit("fload", fd, (base,), imm=offset)

    def store(self, rs: int, base: int, offset: int = 0) -> None:
        """``mem[base + offset] <- rs`` (integer store)."""
        self._emit("store", None, (rs, base), imm=offset)

    def fstore(self, fs: int, base: int, offset: int = 0) -> None:
        """``mem[base + offset] <- fs`` (floating-point store)."""
        self._emit("fstore", None, (fs, base), imm=offset)

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    def beq(self, rs1: int, rs2: int, target: str) -> None:
        self._emit("beq", None, (rs1, rs2), target=target)

    def bne(self, rs1: int, rs2: int, target: str) -> None:
        self._emit("bne", None, (rs1, rs2), target=target)

    def blt(self, rs1: int, rs2: int, target: str) -> None:
        self._emit("blt", None, (rs1, rs2), target=target)

    def bge(self, rs1: int, rs2: int, target: str) -> None:
        self._emit("bge", None, (rs1, rs2), target=target)

    def jmp(self, target: str) -> None:
        self._emit("jmp", target=target)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def nop(self) -> None:
        self._emit("nop")

    def halt(self) -> None:
        self._emit("halt")

    def build(self) -> Program:
        """Resolve labels and return the immutable :class:`Program`."""
        for inst in self._instructions:
            if inst.target is not None and inst.target not in self._labels:
                raise ValueError(f"undefined label: {inst.target}")
        return Program(
            name=self.name,
            instructions=tuple(self._instructions),
            labels=dict(self._labels),
        )
