"""Trace serialization: save/load dynamic traces.

Traces are expensive to produce for long workloads (a full functional
execution), so they can be persisted and replayed later or shared between
machines.  The format is a small JSON header line followed by one compact
JSON array per micro-op:

    {"format": "repro-trace", "version": 1, "name": ..., "ops": N}
    [seq, pc, "opcode", dest, [srcs...], mem_addr, taken, target_pc, fall]

``None`` fields are stored as JSON ``null``; booleans as 0/1.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..isa.instruction import DynOp
from ..isa.opcodes import opcode
from .trace import Trace

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """The file is not a valid trace of a supported version."""


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (overwrites)."""
    path = Path(path)
    with path.open("w") as handle:
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": trace.name,
            "ops": len(trace),
        }
        handle.write(json.dumps(header) + "\n")
        for op in trace:
            record = [
                op.seq,
                op.pc,
                op.opcode.name,
                op.dest,
                list(op.srcs),
                op.mem_addr,
                None if op.taken is None else int(op.taken),
                op.target_pc,
                op.fallthrough_pc,
            ]
            handle.write(json.dumps(record) + "\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises:
        TraceFormatError: On a bad header, version, or op count mismatch.
    """
    path = Path(path)
    with path.open() as handle:
        try:
            header = json.loads(handle.readline())
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path}: unreadable header") from exc
        if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
            raise TraceFormatError(f"{path}: not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise TraceFormatError(
                f"{path}: unsupported version {header.get('version')}"
            )
        ops: List[DynOp] = []
        for line in handle:
            seq, pc, name, dest, srcs, mem_addr, taken, target, fall = (
                json.loads(line)
            )
            ops.append(
                DynOp(
                    seq=seq,
                    pc=pc,
                    opcode=opcode(name),
                    dest=dest,
                    srcs=tuple(srcs),
                    mem_addr=mem_addr,
                    taken=None if taken is None else bool(taken),
                    target_pc=target,
                    fallthrough_pc=fall,
                )
            )
    if len(ops) != header["ops"]:
        raise TraceFormatError(
            f"{path}: truncated ({len(ops)} of {header['ops']} ops)"
        )
    return Trace(name=header["name"], ops=tuple(ops))
