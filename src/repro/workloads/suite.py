"""The default evaluation suite.

The paper averages over SPEC CPU2006/2017; here the suite is the thirteen
kernels in :mod:`repro.workloads.kernels`.  Traces are cached per
``(name, target_ops, seed)`` because building a trace requires a functional
execution, and every benchmark replays the same traces across many
scheduler configurations.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from .kernels import KERNELS, build_trace
from .trace import Trace

#: Kernels in the default suite, in report order.
SUITE_NAMES: Tuple[str, ...] = tuple(
    name for name, spec in KERNELS.items() if spec.in_suite
)

#: A fast subset used by unit/integration tests.
SMOKE_NAMES: Tuple[str, ...] = (
    "stream_triad",
    "pointer_chase",
    "matmul_tile",
    "histogram",
)


@lru_cache(maxsize=128)
def get_trace(name: str, target_ops: int = 20_000, seed: int = 7) -> Trace:
    """Build (or fetch the cached) trace for one suite kernel."""
    return build_trace(name, target_ops=target_ops, seed=seed)


def default_suite(
    target_ops: int = 20_000,
    seed: int = 7,
    names: Sequence[str] = SUITE_NAMES,
) -> List[Trace]:
    """Return traces for every kernel in ``names`` (default: full suite)."""
    return [get_trace(name, target_ops, seed) for name in names]


def suite_summaries(target_ops: int = 20_000, seed: int = 7) -> Dict[str, Dict]:
    """Per-kernel trace summaries — handy for workload characterisation."""
    return {
        trace.name: trace.summary() for trace in default_suite(target_ops, seed)
    }
