"""The default evaluation suite.

The paper averages over SPEC CPU2006/2017; here the suite is the thirteen
kernels in :mod:`repro.workloads.kernels`.  Traces are cached per
``(name, target_ops, seed)`` because building a trace requires a functional
execution, and every benchmark replays the same traces across many
scheduler configurations.

Two cache layers back :func:`get_trace`: an in-process ``lru_cache`` and
an on-disk store under ``<repo>/.bench_cache/traces/`` (override with
``REPRO_TRACE_CACHE``; set it to "" to disable).  The disk layer means a
fresh process — in particular each worker of the parallel experiment
runner — deserialises a trace instead of re-running the functional
execution.  Entries are written atomically and a corrupt file is
silently rebuilt.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .kernels import KERNELS, build_trace
from .serialization import (
    FORMAT_VERSION,
    TraceFormatError,
    load_trace,
    save_trace,
)
from .trace import Trace

#: Kernels in the default suite, in report order.
SUITE_NAMES: Tuple[str, ...] = tuple(
    name for name, spec in KERNELS.items() if spec.in_suite
)

#: A fast subset used by unit/integration tests.
SMOKE_NAMES: Tuple[str, ...] = (
    "stream_triad",
    "pointer_chase",
    "matmul_tile",
    "histogram",
)


def _trace_cache_dir() -> Optional[Path]:
    """Directory for serialized traces, or ``None`` when disabled."""
    root = os.environ.get(
        "REPRO_TRACE_CACHE",
        str(Path(__file__).resolve().parents[3] / ".bench_cache" / "traces"),
    )
    return Path(root) if root else None


def _trace_cache_path(name: str, target_ops: int, seed: int) -> Optional[Path]:
    cache_dir = _trace_cache_dir()
    if cache_dir is None:
        return None
    return cache_dir / f"{name}-{target_ops}-{seed}-v{FORMAT_VERSION}.trace"


@lru_cache(maxsize=128)
def get_trace(name: str, target_ops: int = 20_000, seed: int = 7) -> Trace:
    """Build (or fetch the cached) trace for one suite kernel.

    Consults the in-process cache, then the disk cache, then runs the
    functional execution (publishing the result to both layers).
    """
    path = _trace_cache_path(name, target_ops, seed)
    if path is not None and path.exists():
        try:
            return load_trace(path)
        except (TraceFormatError, ValueError, OSError):
            # truncated / corrupt / unreadable: rebuild from scratch
            try:
                path.unlink()
            except OSError:
                pass
    trace = build_trace(name, target_ops=target_ops, seed=seed)
    if path is not None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            save_trace(trace, tmp)
            os.replace(tmp, path)
        except OSError:
            pass  # a read-only cache dir must not break simulation
    return trace


def default_suite(
    target_ops: int = 20_000,
    seed: int = 7,
    names: Sequence[str] = SUITE_NAMES,
) -> List[Trace]:
    """Return traces for every kernel in ``names`` (default: full suite)."""
    return [get_trace(name, target_ops, seed) for name in names]


def suite_summaries(target_ops: int = 20_000, seed: int = 7) -> Dict[str, Dict]:
    """Per-kernel trace summaries — handy for workload characterisation."""
    return {
        trace.name: trace.summary() for trace in default_suite(target_ops, seed)
    }
