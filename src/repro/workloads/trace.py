"""Dynamic traces and trace-level statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from ..isa.instruction import DynOp
from ..isa.opcodes import OpClass


@dataclass(frozen=True)
class Trace:
    """A dynamic micro-op stream produced by the functional executor.

    Traces are immutable so that one functional execution can be replayed by
    many timing configurations (every scheduler sees the identical stream).
    """

    name: str
    ops: Tuple[DynOp, ...]

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[DynOp]:
        return iter(self.ops)

    def __getitem__(self, index):
        return self.ops[index]

    # ------------------------------------------------------------------
    # summary statistics (useful for workload characterisation tests)
    # ------------------------------------------------------------------
    def class_mix(self) -> Dict[OpClass, int]:
        """Count of micro-ops per :class:`~repro.isa.opcodes.OpClass`."""
        counts: Counter = Counter(op.opcode.op_class for op in self.ops)
        return dict(counts)

    @property
    def num_loads(self) -> int:
        return sum(1 for op in self.ops if op.is_load)

    @property
    def num_stores(self) -> int:
        return sum(1 for op in self.ops if op.is_store)

    @property
    def num_branches(self) -> int:
        return sum(1 for op in self.ops if op.is_branch)

    @property
    def load_fraction(self) -> float:
        return self.num_loads / len(self.ops) if self.ops else 0.0

    def memory_footprint(self) -> int:
        """Number of distinct 64-byte cache lines touched."""
        lines = {op.mem_addr // 64 for op in self.ops if op.mem_addr is not None}
        return len(lines)

    def truncated(self, max_ops: int) -> "Trace":
        """Return a prefix of the trace with at most ``max_ops`` micro-ops."""
        if max_ops >= len(self.ops):
            return self
        return Trace(name=self.name, ops=self.ops[:max_ops])

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports and sanity tests."""
        return {
            "ops": len(self.ops),
            "loads": self.num_loads,
            "stores": self.num_stores,
            "branches": self.num_branches,
            "load_fraction": round(self.load_fraction, 4),
            "lines_touched": self.memory_footprint(),
        }
