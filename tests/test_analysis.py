"""Tests for the experiment runner, caching, and report helpers."""

import pytest

from repro.analysis import ExperimentRunner, format_table, geomean, normalise
from repro.core import config_for
from repro.core.stats import SimResult


class TestRunner:
    def _runner(self, tmp_path):
        return ExperimentRunner(target_ops=1500, cache_dir=str(tmp_path))

    def test_memory_cache(self, tmp_path):
        runner = self._runner(tmp_path)
        a = runner.run_arch("histogram", "ooo")
        b = runner.run_arch("histogram", "ooo")
        assert runner.simulations_run == 1
        assert runner.cache_hits == 1
        assert a.cycles == b.cycles

    def test_disk_cache_roundtrip(self, tmp_path):
        first = self._runner(tmp_path)
        a = first.run_arch("histogram", "ballerino")
        second = self._runner(tmp_path)
        b = second.run_arch("histogram", "ballerino")
        assert second.simulations_run == 0
        assert b.cycles == a.cycles
        assert b.stats.energy_events == a.stats.energy_events
        assert b.stats.breakdown.averages() == a.stats.breakdown.averages()

    def test_distinct_configs_not_conflated(self, tmp_path):
        runner = self._runner(tmp_path)
        runner.run_arch("histogram", "ooo")
        runner.run_arch("histogram", "inorder")
        assert runner.simulations_run == 2

    def test_piq_override_changes_key(self, tmp_path):
        runner = self._runner(tmp_path)
        runner.run_arch("histogram", "ballerino")
        runner.run_arch("histogram", "ballerino", num_piqs=11)
        assert runner.simulations_run == 2

    def test_speedups_over(self, tmp_path):
        runner = self._runner(tmp_path)
        speedups = runner.speedups_over(
            config_for("ooo"), config_for("inorder"), workloads=["hash_probe"]
        )
        assert speedups["hash_probe"] > 1.0

    def test_disabled_disk_cache(self):
        runner = ExperimentRunner(target_ops=1000, cache_dir="")
        assert runner.cache_dir is None
        runner.run_arch("histogram", "inorder")


class TestHelpers:
    def test_geomean(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([5]) == pytest.approx(5.0)
        assert geomean([]) == 0.0

    def test_normalise(self):
        out = normalise({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}
        with pytest.raises(ValueError):
            normalise({"a": 0.0, "b": 1.0}, "a")

    def test_format_table(self):
        text = format_table(
            ["name", "value"], [["x", 1.5], ["longer", 2.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.500" in text and "2.250" in text

    def test_format_table_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text
