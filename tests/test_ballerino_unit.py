"""Isolated unit tests of Ballerino's steering logic using a fake core.

The scheduler tests in ``test_schedulers.py`` exercise full simulations;
these pin down the *decision table* of §IV-C directly: given a crafted
scheduler state, which P-IQ/partition does one op steer to, and why.
"""

from collections import Counter
from types import SimpleNamespace

import pytest

from repro.core.ifop import InFlightOp
from repro.isa import R, opcode
from repro.isa.instruction import DynOp
from repro.lsq.mdp import StoreSetPredictor
from repro.sched.ballerino import BallerinoScheduler
from repro.sched.steering import SteerInfo


class FakeCore:
    """Just enough of the Pipeline surface for steering decisions."""

    def __init__(self, mdp=None):
        self.energy = Counter()
        self.cycle = 0
        self.mdp = mdp
        self._ready_pregs = set()
        self.config = SimpleNamespace(issue_width=8, decode_width=4)

    def set_ready(self, *pregs):
        self._ready_pregs.update(pregs)

    def srcs_ready(self, ifop, cycle):
        return all(p in self._ready_pregs for p in ifop.src_pregs)

    def mdp_dep_satisfied(self, ifop):
        return ifop.mdp_dep_seq is None

    def op_ready(self, ifop, cycle):
        return self.srcs_ready(ifop, cycle) and self.mdp_dep_satisfied(ifop)

    def try_grant(self, ifop, cycle):
        return True


def make_op(seq, name="add", dest_preg=100, src_pregs=(1, 2), pc=None):
    dyn = DynOp(
        seq=seq, pc=pc if pc is not None else seq,
        opcode=opcode(name),
        dest=R[1] if dest_preg is not None else None,
        srcs=tuple(R[1] for _ in src_pregs),
        mem_addr=0x100 if opcode(name).op_class.is_memory else None,
    )
    ifop = InFlightOp(seq=seq, op=dyn, decode_cycle=0)
    ifop.dest_preg = dest_preg
    ifop.src_pregs = tuple(src_pregs)
    return ifop


@pytest.fixture()
def sched():
    core = FakeCore()
    return BallerinoScheduler(core, num_piqs=3, piq_size=4)


class TestSteeringDecisions:
    def test_no_producer_allocates_empty_piq(self, sched):
        decision = sched._decide(make_op(0), ready=False)
        assert decision.outcome == "alloc"
        assert decision.target == 0

    def test_follows_producer_at_tail(self, sched):
        producer = make_op(0, dest_preg=50)
        sched._apply_steer(producer, sched._decide(producer, ready=False))
        consumer = make_op(1, dest_preg=51, src_pregs=(50,))
        decision = sched._decide(consumer, ready=False)
        assert decision.outcome == "dc"
        assert decision.target == producer.iq_index
        assert decision.followed_preg == 50

    def test_ready_op_never_follows_chain(self, sched):
        """Paper case 3: a ready op becomes a new dependence head."""
        producer = make_op(0, dest_preg=50)
        sched._apply_steer(producer, sched._decide(producer, ready=False))
        consumer = make_op(1, dest_preg=51, src_pregs=(50,))
        decision = sched._decide(consumer, ready=True)
        assert decision.outcome == "alloc"

    def test_chain_split_allocates_new_queue(self, sched):
        producer = make_op(0, dest_preg=50)
        sched._apply_steer(producer, sched._decide(producer, ready=False))
        first = make_op(1, dest_preg=51, src_pregs=(50,))
        sched._apply_steer(first, sched._decide(first, ready=False))
        # the second consumer of preg 50 sees Reserved and splits
        second = make_op(2, dest_preg=52, src_pregs=(50,))
        decision = sched._decide(second, ready=False)
        assert decision.outcome == "alloc"
        assert decision.target != producer.iq_index

    def test_full_queue_allocates_new(self, sched):
        ops = [make_op(0, dest_preg=50)]
        sched._apply_steer(ops[0], sched._decide(ops[0], ready=False))
        for i in range(1, 4):  # fill queue 0 (size 4) along the chain
            op = make_op(i, dest_preg=50 + i, src_pregs=(50 + i - 1,))
            sched._apply_steer(op, sched._decide(op, ready=False))
        overflow = make_op(9, dest_preg=60, src_pregs=(53,))
        decision = sched._decide(overflow, ready=False)
        assert decision.outcome in ("alloc", "share")
        assert decision.target != 0 or decision.partition == 1

    def test_sharing_when_no_empty_queue(self, sched):
        # occupy all three queues with one op each (all <= half full)
        for i in range(3):
            op = make_op(i, dest_preg=50 + i)
            sched._apply_steer(op, sched._decide(op, ready=False))
        op = make_op(5, dest_preg=60)
        decision = sched._decide(op, ready=False)
        assert decision.outcome == "share"
        assert decision.partition == 1
        sched._apply_steer(op, decision)
        assert sched.piqs[decision.target].sharing

    def test_stall_when_nothing_shareable(self):
        core = FakeCore()
        sched = BallerinoScheduler(core, num_piqs=1, piq_size=4,
                                   piq_sharing=True)
        # fill queue 0 beyond half: not shareable, not empty
        root = make_op(0, dest_preg=50)
        sched._apply_steer(root, sched._decide(root, ready=False))
        for i in range(1, 3):
            op = make_op(i, dest_preg=50 + i, src_pregs=(50 + i - 1,))
            sched._apply_steer(op, sched._decide(op, ready=False))
        stranger = make_op(9, dest_preg=70)
        decision = sched._decide(stranger, ready=False)
        assert decision.outcome == "stall"
        assert decision.target is None

    def test_sharing_disabled_stalls_instead(self):
        core = FakeCore()
        sched = BallerinoScheduler(core, num_piqs=1, piq_size=8,
                                   piq_sharing=False)
        root = make_op(0, dest_preg=50)
        sched._apply_steer(root, sched._decide(root, ready=False))
        stranger = make_op(1, dest_preg=51)
        assert sched._decide(stranger, ready=False).outcome == "stall"


class TestMDASteering:
    def _with_mdp(self):
        mdp = StoreSetPredictor()
        mdp.train_violation(load_pc=7, store_pc=3)
        core = FakeCore(mdp=mdp)
        return BallerinoScheduler(core, num_piqs=3, piq_size=4), mdp

    def test_load_follows_store_set_hint(self):
        sched, mdp = self._with_mdp()
        store = make_op(0, name="store", dest_preg=None, src_pregs=(1, 2), pc=3)
        mdp.store_dispatched(pc=3, seq=0)
        sched._apply_steer(store, sched._decide(store, ready=False))
        load = make_op(1, name="load", dest_preg=60, src_pregs=(9,), pc=7)
        decision = sched._decide(load, ready=False)
        assert decision.outcome == "mda"
        assert decision.target == store.iq_index

    def test_second_load_cannot_reuse_hint(self):
        sched, mdp = self._with_mdp()
        store = make_op(0, name="store", dest_preg=None, src_pregs=(1, 2), pc=3)
        mdp.store_dispatched(pc=3, seq=0)
        sched._apply_steer(store, sched._decide(store, ready=False))
        first = make_op(1, name="load", dest_preg=60, src_pregs=(9,), pc=7)
        sched._apply_steer(first, sched._decide(first, ready=False))
        second = make_op(2, name="load", dest_preg=61, src_pregs=(9,), pc=7)
        assert sched._decide(second, ready=False).outcome != "mda"

    def test_mda_disabled_ignores_hint(self):
        mdp = StoreSetPredictor()
        mdp.train_violation(load_pc=7, store_pc=3)
        core = FakeCore(mdp=mdp)
        sched = BallerinoScheduler(core, num_piqs=3, piq_size=4,
                                   mda_steering=False)
        store = make_op(0, name="store", dest_preg=None, src_pregs=(1, 2), pc=3)
        mdp.store_dispatched(pc=3, seq=0)
        sched._apply_steer(store, sched._decide(store, ready=False))
        load = make_op(1, name="load", dest_preg=60, src_pregs=(9,), pc=7)
        assert sched._decide(load, ready=False).outcome != "mda"


class TestIssueClearsSteering:
    def test_issued_head_clears_scoreboard(self, sched):
        core = sched.core
        producer = make_op(0, dest_preg=50, src_pregs=(1,))
        sched._apply_steer(producer, sched._decide(producer, ready=False))
        assert sched.steer.get(50) is not None
        core.set_ready(1)
        issued = sched.select(cycle=1)
        assert producer in issued
        assert sched.steer.get(50) is None
        # a later consumer must now allocate a fresh queue
        consumer = make_op(1, dest_preg=51, src_pregs=(50,))
        assert sched._decide(consumer, ready=False).outcome == "alloc"
