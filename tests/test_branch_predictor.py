"""Tests for TAGE, bimodal, BTB, and the combined front end."""

import random

import pytest

from repro.frontend import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchTargetBuffer,
    FrontEnd,
    TagePredictor,
)


class TestBimodal:
    def test_learns_bias(self):
        predictor = BimodalPredictor(256)
        for _ in range(4):
            predictor.update(pc=12, taken=True)
        assert predictor.predict(12) is True
        for _ in range(4):
            predictor.update(pc=12, taken=False)
        assert predictor.predict(12) is False

    def test_hysteresis(self):
        predictor = BimodalPredictor(256)
        for _ in range(4):
            predictor.update(12, True)
        predictor.update(12, False)  # one blip must not flip a saturated entry
        assert predictor.predict(12) is True

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)


class TestTage:
    def _train(self, predictor, outcomes, pc=40):
        correct = 0
        for taken in outcomes:
            if predictor.predict(pc) == taken:
                correct += 1
            predictor.update(pc, taken)
        return correct / len(outcomes)

    def test_learns_loop_exit_pattern(self):
        """A (T,T,T,NT) loop pattern needs history: TAGE should beat bimodal."""
        pattern = ([True] * 3 + [False]) * 120
        tage_acc = self._train(TagePredictor(), pattern)
        bimodal = BimodalPredictor()
        bi_correct = 0
        for taken in pattern:
            if bimodal.predict(40) == taken:
                bi_correct += 1
            bimodal.update(40, taken)
        assert tage_acc > bi_correct / len(pattern)
        assert tage_acc > 0.9

    def test_learns_alternating_pattern(self):
        pattern = [True, False] * 200
        assert self._train(TagePredictor(), pattern) > 0.9

    def test_strong_bias(self):
        assert self._train(TagePredictor(), [True] * 200) > 0.95

    def test_random_is_hard(self):
        rng = random.Random(3)
        pattern = [rng.random() < 0.5 for _ in range(400)]
        assert self._train(TagePredictor(), pattern) < 0.75

    def test_history_lengths_geometric_and_capped(self):
        predictor = TagePredictor(num_tables=4, history_bits=17)
        lengths = predictor.history_lengths
        assert lengths == sorted(lengths)
        assert lengths[-1] == 17

    def test_update_without_predict_is_safe(self):
        predictor = TagePredictor()
        predictor.update(pc=99, taken=True)  # e.g. state lost after a flush


class TestBTB:
    def test_install_and_lookup(self):
        btb = BranchTargetBuffer(sets=8, ways=2)
        assert btb.lookup(100) is None
        btb.install(100, 7)
        assert btb.lookup(100) == 7

    def test_update_existing_entry(self):
        btb = BranchTargetBuffer(sets=8, ways=2)
        btb.install(100, 7)
        btb.install(100, 9)
        assert btb.lookup(100) == 9

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(sets=4, ways=2)
        # pcs 4, 8, 12 (set = pc & 3): use pcs that collide in set 0
        btb.install(0, 1)
        btb.install(4, 2)
        btb.lookup(0)       # refresh pc 0
        btb.install(8, 3)   # evicts pc 4
        assert btb.lookup(0) == 1
        assert btb.lookup(4) is None
        assert btb.lookup(8) == 3

    def test_rejects_bad_sets(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=100)


class TestFrontEnd:
    def test_loop_branch_converges(self):
        fe = FrontEnd()
        mispredicts = 0
        for i in range(300):
            taken = (i % 10) != 9  # loop of 10
            pred = fe.predict_branch(pc=20, unconditional=False)
            if fe.resolve(20, pred, taken, 3 if taken else None, False):
                mispredicts += 1
        assert fe.mispredict_rate < 0.3

    def test_unconditional_jump_after_btb_warm(self):
        fe = FrontEnd()
        pred = fe.predict_branch(pc=8, unconditional=True)
        assert pred.taken
        assert fe.resolve(8, pred, True, 42, True)  # first time: BTB miss
        pred = fe.predict_branch(pc=8, unconditional=True)
        assert pred.target == 42
        assert not fe.resolve(8, pred, True, 42, True)

    def test_always_taken_baseline(self):
        predictor = AlwaysTakenPredictor()
        assert predictor.predict(0) is True
        predictor.update(0, False)
        assert predictor.predict(0) is True
