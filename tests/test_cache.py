"""Unit tests for the set-associative cache model."""

import pytest

from repro.memory import Cache


def make_cache(size=1024, assoc=2, latency=4):
    return Cache("test", size, assoc, latency)


class TestLookup:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(5) is None
        cache.fill(5, fill_time=10)
        assert cache.lookup(5) == 10
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_probe_does_not_touch_stats(self):
        cache = make_cache()
        cache.fill(5, 0)
        assert cache.probe(5) == 0
        assert cache.probe(6) is None
        assert cache.stats.accesses == 0

    def test_distinct_sets_do_not_interfere(self):
        cache = make_cache(size=1024, assoc=2)  # 8 sets
        cache.fill(0, 0)
        cache.fill(1, 0)
        assert cache.lookup(0) is not None
        assert cache.lookup(1) is not None


class TestReplacement:
    def test_lru_eviction(self):
        cache = make_cache(size=1024, assoc=2)  # 8 sets: lines 0,8,16 collide
        cache.fill(0, 0)
        cache.fill(8, 0)
        cache.lookup(0)  # make line 0 most-recently used
        cache.fill(16, 0)  # evicts line 8
        assert cache.probe(0) is not None
        assert cache.probe(8) is None
        assert cache.probe(16) is not None
        assert cache.stats.evictions == 1

    def test_refill_existing_line_keeps_earlier_time(self):
        cache = make_cache()
        cache.fill(3, 100)
        cache.fill(3, 50)
        assert cache.probe(3) == 50
        cache.fill(3, 200)  # later fill must not delay an in-flight line
        assert cache.probe(3) == 50

    def test_capacity(self):
        cache = make_cache(size=1024, assoc=2)
        for line in range(64):
            cache.fill(line, 0)
        assert cache.resident_lines() == 16  # 8 sets x 2 ways

    def test_invalidate(self):
        cache = make_cache()
        cache.fill(7, 0)
        cache.invalidate(7)
        assert cache.probe(7) is None
        cache.invalidate(7)  # idempotent


class TestConstruction:
    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            Cache("bad", 96 * 64, 1, 1)

    def test_miss_rate(self):
        cache = make_cache()
        cache.lookup(1)
        cache.fill(1, 0)
        cache.lookup(1)
        assert cache.stats.miss_rate == 0.5

    def test_prefetch_fill_counted(self):
        cache = make_cache()
        cache.fill(9, 0, prefetch=True)
        assert cache.stats.prefetch_fills == 1
