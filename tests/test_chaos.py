"""Fault-injection: the campaign runner must survive killed, hung,
erroring and deadlocking workers, quarantine only persistent failures,
and still produce results byte-identical to a clean serial run."""

import json

import pytest

from repro.analysis.runner import ExperimentRunner, FailedResult
from repro.core.config import config_for
from repro.verify.chaos import ENV_VAR, ChaosSpec, run_campaign
from repro.workloads.suite import get_trace

OPS = 500


@pytest.fixture
def trace_cache(tmp_path, monkeypatch):
    """Isolate the trace disk cache (pool workers inherit the env)."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    get_trace.cache_clear()
    yield
    get_trace.cache_clear()


def _runner(tmp_path, sub, **kw):
    kw.setdefault("retries", 3)
    return ExperimentRunner(
        target_ops=OPS, cache_dir=str(tmp_path / sub), **kw
    )


def _dumps(result):
    return json.dumps(result.to_dict(), sort_keys=True)


def _tasks(*arches):
    return [(w, config_for(a))
            for a in arches
            for w in ("stream_triad", "histogram", "pointer_chase")]


def _spec_hitting(runner, tasks, fault, index, **spec_kw):
    """A spec whose ``fault`` hits exactly ``tasks[index]`` on attempt 0."""
    keys = [runner._key(w, c, runner.seed) for w, c in tasks]
    for salt in range(5_000):
        spec = ChaosSpec(salt=salt, **spec_kw)
        got = [spec.fault_for(key, 0) for key in keys]
        if got[index] == fault and all(
            g is None for i, g in enumerate(got) if i != index
        ):
            return spec
    raise AssertionError(f"no salt puts a lone {fault!r} on cell {index}")


# ---------------------------------------------------------------------------
# spec semantics


def test_spec_roundtrip_and_determinism():
    spec = ChaosSpec(kill=0.2, poison=0.1, salt=42, hang_seconds=9.0)
    assert ChaosSpec.decode(spec.encode()) == spec
    faults = [spec.fault_for(f"key{i}", 0) for i in range(64)]
    assert faults == [spec.fault_for(f"key{i}", 0) for i in range(64)]
    assert any(faults)  # the bands actually select cells


def test_transient_faults_are_attempt_gated():
    spec = ChaosSpec(kill=0.2, hang=0.2, error=0.2, wedge=0.15,
                     poison=0.15, salt=1)
    for i in range(128):
        first = spec.fault_for(f"key{i}", 0)
        retry = spec.fault_for(f"key{i}", 1)
        if first in ("poison", "wedge"):
            assert retry == first  # deterministic: fires every attempt
        else:
            assert retry is None  # transient: retry runs clean


# ---------------------------------------------------------------------------
# run_many under injected faults (env inherited by forked pool workers)


def _run_with_fault(tmp_path, monkeypatch, fault, **runner_kw):
    tasks = _tasks("ooo")
    clean = _runner(tmp_path, "clean").run_many(tasks, jobs=1)
    chaotic = _runner(tmp_path, "chaotic", **runner_kw)
    spec = _spec_hitting(chaotic, tasks, fault, index=1, **{fault: 0.4})
    monkeypatch.setenv(ENV_VAR, spec.encode())
    results = chaotic.run_many(tasks, jobs=2)
    monkeypatch.delenv(ENV_VAR)
    return clean, chaotic, results


def test_transient_error_is_retried_to_identical_results(
        tmp_path, monkeypatch, trace_cache):
    clean, runner, results = _run_with_fault(tmp_path, monkeypatch, "error")
    assert [_dumps(r) for r in results] == [_dumps(r) for r in clean]
    assert runner.retries_performed >= 1
    assert not runner.failures


def test_killed_worker_pool_is_respawned(tmp_path, monkeypatch, trace_cache):
    clean, runner, results = _run_with_fault(tmp_path, monkeypatch, "kill")
    assert [_dumps(r) for r in results] == [_dumps(r) for r in clean]
    assert runner.pool_restarts >= 1
    assert not runner.failures


def test_hung_worker_is_timed_out_and_requeued(
        tmp_path, monkeypatch, trace_cache):
    clean, runner, results = _run_with_fault(
        tmp_path, monkeypatch, "hang", task_timeout=4.0)
    assert [_dumps(r) for r in results] == [_dumps(r) for r in clean]
    assert runner.timeouts >= 1
    assert not runner.failures


def test_poisoned_cell_is_quarantined(tmp_path, monkeypatch, trace_cache):
    tasks = _tasks("ooo")
    runner = _runner(tmp_path, "poison", retries=2)
    spec = _spec_hitting(runner, tasks, "poison", index=1, poison=0.4)
    monkeypatch.setenv(ENV_VAR, spec.encode())
    results = runner.run_many(tasks, jobs=2)

    failed = results[1]
    assert isinstance(failed, FailedResult)
    assert not failed.ok
    assert failed.kind == "error"
    assert failed.attempts == 3  # 1 + retries, then gave up
    assert failed.workload == tasks[1][0]
    assert all(r.ok for i, r in enumerate(results) if i != 1)
    assert "quarantined" in runner.failure_summary()
    assert failed.describe() in runner.failure_summary()

    # the quarantine record is served without re-running the cell
    before = runner.simulations_run
    again = runner.run_many(tasks, jobs=1)
    assert again[1] is failed
    assert runner.simulations_run == before


def test_forced_deadlock_quarantines_with_snapshot(
        tmp_path, monkeypatch, trace_cache):
    tasks = _tasks("ballerino")
    runner = _runner(tmp_path, "wedge")
    spec = _spec_hitting(runner, tasks, "wedge", index=0, wedge=0.4)
    monkeypatch.setenv(ENV_VAR, spec.encode())
    results = runner.run_many(tasks, jobs=2)

    failed = results[0]
    assert not failed.ok
    assert failed.kind == "deadlock"
    assert failed.attempts == 1  # deterministic: never retried
    assert failed.snapshot["rob"]["head"]["seq"] == 0
    assert "ROB head seq=0" in failed.error


def test_failed_result_roundtrips_to_dict(tmp_path, monkeypatch, trace_cache):
    tasks = _tasks("ooo")
    runner = _runner(tmp_path, "dict", retries=0)
    spec = _spec_hitting(runner, tasks, "poison", index=2, poison=0.4)
    monkeypatch.setenv(ENV_VAR, spec.encode())
    failed = runner.run_many(tasks, jobs=2)[2]
    record = json.loads(json.dumps(failed.to_dict()))
    assert record["ok"] is False
    assert record["kind"] == "error"
    assert record["workload"] == tasks[2][0]


# ---------------------------------------------------------------------------
# the full drill


def test_campaign_smoke(tmp_path):
    report = run_campaign(
        arches=("ooo", "ballerino"),
        workloads=("stream_triad", "histogram"),
        target_ops=OPS,
        seed=3,
        jobs=2,
        spec=ChaosSpec(kill=0.2, error=0.2, wedge=0.2, poison=0.15, salt=3),
        timeout=20.0,
        retries=4,
        work_dir=str(tmp_path / "campaign"),
    )
    assert report.ok, report.full_report()
    assert report.cells == 4
    assert report.corrupted_results > 0
    assert report.corrupted_traces > 0
    assert not report.mismatches


def test_distributed_drill_closes_every_hole(tmp_path):
    """Shard death, poison, shredded logs and cache damage must all be
    detected by reconciliation and repaired to byte-identity."""
    from repro.verify.chaos import run_distributed

    report = run_distributed(
        arches=("inorder", "ooo"),
        workloads=("stream_triad", "histogram"),
        widths=(4,),
        target_ops=OPS,
        seed=3,
        n_shards=2,
        jobs=2,
        poison=0.3,
        work_dir=str(tmp_path / "distrib"),
    )
    assert report.ok, report.full_report()
    assert report.converged
    assert report.merged_complete
    assert not report.undetected
    assert not report.mismatches
    # the drill actually injected distribution-level damage
    assert report.initial_states["missing"] > 0  # the killed shard
    assert report.shredded_lines > 0


def test_distributed_drill_needs_two_shards():
    from repro.verify.chaos import run_distributed

    with pytest.raises(ValueError):
        run_distributed(n_shards=1)


def test_shred_log_damages_middle_lines(tmp_path):
    from repro.verify.chaos import shred_log

    path = tmp_path / "log.jsonl"
    path.write_text("\n".join(json.dumps({"n": n}) for n in range(9)) + "\n")
    shredded = shred_log(path, every=3)
    assert shredded == 3
    from repro.telemetry.runlog import read_run_log_tolerant

    records, skipped = read_run_log_tolerant(str(path))
    assert skipped == 3
    assert [r["n"] for r in records] == [1, 2, 4, 5, 7, 8]
