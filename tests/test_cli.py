"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def cli(tmp_path, monkeypatch):
    """Run the CLI with a temp cache and small traces; capture via capsys."""
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))

    def run(*argv):
        return main(["--ops", "1200", *argv])

    return run


class TestInformational:
    def test_workloads_lists_suite(self, cli, capsys):
        assert cli("workloads") == 0
        out = capsys.readouterr().out
        assert "stream_triad" in out
        assert "pointer_chase" in out

    def test_configs_lists_presets(self, cli, capsys):
        assert cli("configs") == 0
        out = capsys.readouterr().out
        assert "ballerino" in out and "casino" in out and "dnb" in out

    def test_configs_honours_width(self, cli, capsys):
        assert cli("--width", "4", "configs") == 0
        assert "2.5 GHz" in capsys.readouterr().out


class TestSimulate:
    def test_simulate_prints_summary(self, cli, capsys):
        assert cli("simulate", "histogram", "ballerino") == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "decode-to-issue breakdown" in out
        assert "ballerino-8w" in out

    def test_simulate_rejects_unknown_workload(self, cli):
        with pytest.raises(SystemExit):
            cli("simulate", "nosuch", "ooo")

    def test_simulate_rejects_unknown_arch(self, cli):
        with pytest.raises(SystemExit):
            cli("simulate", "histogram", "nosuch")


class TestTrace:
    def test_trace_prints_stall_attribution(self, cli, capsys):
        assert cli("trace", "dotprod", "ballerino") == 0
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "TOTAL" in out and "100.0" in out
        assert "events traced" in out

    def test_trace_writes_chrome_json(self, cli, capsys, tmp_path):
        from repro.telemetry import read_chrome_trace

        path = tmp_path / "trace.json"
        assert cli("trace", "dotprod", "ooo", "--trace-out", str(path)) == 0
        document = read_chrome_trace(str(path))
        assert document["traceEvents"]
        assert str(path) in capsys.readouterr().out

    def test_trace_konata_inferred_from_extension(self, cli, tmp_path):
        path = tmp_path / "trace.kanata"
        assert cli("trace", "dotprod", "inorder", "--trace-out", str(path)) == 0
        assert path.read_text().startswith("Kanata\t0004")

    def test_trace_format_flag_overrides_extension(self, cli, tmp_path):
        path = tmp_path / "trace.json"
        assert cli("trace", "dotprod", "ooo", "--trace-out", str(path),
                   "--trace-format", "konata") == 0
        assert path.read_text().startswith("Kanata\t0004")

    def test_trace_rejects_unknown_arch(self, cli):
        with pytest.raises(SystemExit):
            cli("trace", "dotprod", "nosuch")

    def test_simulate_accepts_trace_out(self, cli, capsys, tmp_path):
        path = tmp_path / "sim.json"
        assert cli("simulate", "dotprod", "ooo", "--trace-out", str(path)) == 0
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert path.exists()

    def test_compare_writes_one_trace_per_arch(self, cli, tmp_path):
        path = tmp_path / "cmp.json"
        assert cli("compare", "dotprod", "inorder", "ooo",
                   "--trace-out", str(path)) == 0
        assert (tmp_path / "cmp.inorder.json").exists()
        assert (tmp_path / "cmp.ooo.json").exists()


class TestMetrics:
    def test_metrics_command_prints_tables(self, cli, capsys):
        assert cli("metrics", "histogram", "ballerino",
                   "--sample-interval", "300") == 0
        out = capsys.readouterr().out
        assert "instrumented simulation" in out
        assert "interval time-series" in out
        assert "top counters" in out
        assert "pipeline.commit_ops" in out
        assert "stall-class fractions" in out

    def test_metrics_csv_export(self, cli, capsys, tmp_path):
        path = tmp_path / "samples.csv"
        assert cli("metrics", "dotprod", "ooo",
                   "--sample-interval", "300", "--csv", str(path)) == 0
        lines = path.read_text().splitlines()
        header = lines[0].split(",")
        assert "cycle" in header and "occupancy.rob" in header
        assert len(lines) >= 3  # >= 2 samples at 300-cycle interval

    def test_metrics_trace_out_overlays_counter_events(self, cli, tmp_path):
        from repro.telemetry import read_chrome_trace

        path = tmp_path / "trace.json"
        assert cli("metrics", "dotprod", "ooo",
                   "--sample-interval", "300",
                   "--trace-out", str(path)) == 0
        document = read_chrome_trace(str(path))
        counters = [e for e in document["traceEvents"]
                    if e.get("ph") == "C"]
        assert counters
        assert {"IPC", "occupancy", "queues"} <= {e["name"] for e in counters}

    def test_metrics_json_out(self, cli, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert cli("metrics", "histogram", "ces",
                   "--sample-interval", "400", "--json-out", str(path)) == 0
        payload = json.loads(path.read_text())
        assert payload["workload"] == "histogram"
        assert payload["samples"]
        assert payload["metrics"]["pipeline.commit_ops"]["value"] == 1200
        assert payload["samples"][-1]["committed"] == 1200

    def test_simulate_metrics_flag_appends_tables(self, cli, capsys):
        assert cli("simulate", "histogram", "ballerino",
                   "--metrics", "--sample-interval", "300") == 0
        out = capsys.readouterr().out
        assert "simulation summary" in out  # the normal output stays
        assert "interval time-series" in out
        assert "top counters" in out

    def test_metrics_rejects_bad_interval(self, cli):
        with pytest.raises(ValueError):
            cli("metrics", "histogram", "ooo", "--sample-interval", "0")


class TestRunLogAndCacheHealth:
    def test_compare_writes_run_log(self, cli, tmp_path):
        from repro.telemetry import read_run_log, validate_event

        path = tmp_path / "run.jsonl"
        assert main(["--ops", "1200", "--run-log", str(path),
                     "compare", "dotprod", "ooo", "ces"]) == 0
        records = read_run_log(str(path))
        events = [r["event"] for r in records]
        assert "campaign_start" in events and "campaign_end" in events
        assert events.count("finish") == 2
        for record in records:
            validate_event(record)

    def test_cache_health_summary_in_exit_summary(self, cli, capsys,
                                                  tmp_path):
        assert cli("compare", "dotprod", "ooo") == 0
        capsys.readouterr()
        for entry in (tmp_path / "cache").glob("*.json"):
            entry.write_text("garbage{{{")
        assert cli("compare", "dotprod", "ooo") == 0
        out = capsys.readouterr().out
        assert "cache health:" in out
        assert "re-simulated" in out
        assert "repro reconcile" in out

    def test_healthy_cache_prints_no_warning(self, cli, capsys):
        assert cli("compare", "dotprod", "ooo") == 0
        capsys.readouterr()
        assert cli("compare", "dotprod", "ooo") == 0  # warm, intact
        captured = capsys.readouterr()
        assert "cache health" not in captured.out
        assert "corrupt" not in captured.err


class TestReport:
    def test_report_renders_paper_comparison(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))
        # 600 ops keeps the full multi-figure sweep fast enough for CI
        assert main(["--ops", "600", "report"]) == 0
        out = capsys.readouterr().out
        assert "paper vs. measured" in out
        assert "Figure 11" in out and "Figure 13" in out
        assert "GEOMEAN" not in out.split("Figure 11")[0]  # header is prose


class TestCompare:
    def test_compare_defaults(self, cli, capsys):
        assert cli("compare", "matmul_tile", "inorder", "ooo") == 0
        out = capsys.readouterr().out
        assert "inorder" in out and "ooo" in out and "pJ/op" in out

    def test_compare_unknown_arch_fails_cleanly(self, cli, capsys):
        assert cli("compare", "matmul_tile", "bogus") == 2

    def test_compare_includes_dnb_extension(self, cli, capsys):
        assert cli("compare", "matmul_tile", "dnb") == 0
        assert "dnb" in capsys.readouterr().out


class TestSuite:
    def test_suite_reports_geomean(self, cli, capsys):
        assert cli("suite", "ces") == 0
        out = capsys.readouterr().out
        assert "GEOMEAN" in out
        assert "speedup/InO" in out


class TestFigure:
    def test_figure_fig13_renders_bars(self, cli, capsys, monkeypatch):
        from repro.analysis import experiments

        monkeypatch.setattr(
            experiments, "collect_fig13",
            lambda runner: {"ces": 1.5, "ballerino": 1.8},
        )
        assert cli("figure", "fig13") == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out
        assert "#" in out

    def test_figure_fig16_uses_energy(self, cli, capsys, monkeypatch):
        from repro.analysis import experiments

        monkeypatch.setattr(
            experiments, "collect_energy",
            lambda runner: {
                "ooo": {"total": 10.0, "seconds": 1.0},
                "ballerino": {"total": 8.0, "seconds": 1.05},
            },
        )
        assert cli("figure", "fig16") == 0
        out = capsys.readouterr().out
        assert "1/EDP" in out

    def test_figure_rejects_unknown(self, cli):
        with pytest.raises(SystemExit):
            cli("figure", "fig99")


class TestVersion:
    def test_version_prints_package_and_protocol(self, capsys):
        from repro.serve.protocol import PROTOCOL_VERSION

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert f"serve protocol {PROTOCOL_VERSION}" in out


class TestServeCommands:
    @pytest.fixture()
    def daemon(self, tmp_path):
        from repro.serve.daemon import ServeDaemon

        daemon = ServeDaemon(
            str(tmp_path / "queue"),
            runner_kwargs={"target_ops": 600,
                           "cache_dir": str(tmp_path / "serve-cache")})
        daemon.start()
        yield daemon
        daemon.stop(timeout=30)

    def test_submit_wait_prints_result_table(self, cli, capsys, daemon):
        assert cli("submit", "--server", daemon.url,
                   "--workloads", "dotprod", "--arches", "ooo",
                   "--wait") == 0
        out = capsys.readouterr().out
        assert "submitted" in out
        assert "dotprod" in out and "ooo" in out
        assert "IPC" in out

    def test_submit_then_poll_round_trip(self, cli, capsys, daemon):
        import re

        assert cli("submit", "--server", daemon.url,
                   "--workloads", "histogram", "--arches", "ooo") == 0
        job_id = re.search(r"j-[0-9a-f]{12}",
                           capsys.readouterr().out).group(0)
        assert cli("poll", job_id, "--server", daemon.url,
                   "--results", "--timeout", "120") == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "histogram" in out

    def test_submit_surfaces_structured_refusal(self, cli, capsys,
                                                tmp_path):
        from repro.serve.daemon import ServeDaemon

        daemon = ServeDaemon(
            str(tmp_path / "q2"), workers=0, max_depth=1,
            runner_kwargs={"target_ops": 600,
                           "cache_dir": str(tmp_path / "c2")})
        daemon.start()
        try:
            assert cli("submit", "--server", daemon.url,
                       "--workloads", "dotprod", "--arches", "ooo") == 0
            assert cli("submit", "--server", daemon.url,
                       "--workloads", "histogram", "--arches", "ooo") == 1
            err = capsys.readouterr().err
            assert "queue-full" in err
        finally:
            daemon.stop(timeout=30)


class TestCharacterize:
    def test_characterize_lists_suite_limits(self, cli, capsys):
        assert cli("characterize") == 0
        out = capsys.readouterr().out
        assert "dataflow IPC limit" in out
        assert "pointer_chase" in out


class TestCampaignReconcile:
    """The distributed-campaign CLI pair (see docs/robustness.md)."""

    @pytest.fixture()
    def dirs(self, tmp_path):
        return str(tmp_path / "camp"), str(tmp_path / "shared-cache")

    def _shard_args(self, camp, cache, shard):
        return ("campaign", "--campaign-dir", camp, "--cache-dir", cache,
                "--shard", f"{shard}/2", "--workloads", "dotprod",
                "histogram", "--arches", "inorder", "ooo",
                "--widths", "4", "--ops", "400")

    def test_full_campaign_roundtrip(self, cli, capsys, dirs):
        camp, cache = dirs
        assert cli(*self._shard_args(camp, cache, 0)) == 0
        assert cli(*self._shard_args(camp, cache, 1)) == 0
        assert cli("campaign", "--campaign-dir", camp,
                   "--cache-dir", cache, "--merge") == 0
        out = capsys.readouterr().out
        assert "complete" in out

    def test_dead_shard_merge_names_gaps_then_reconcile_heals(
            self, cli, capsys, dirs):
        camp, cache = dirs
        assert cli(*self._shard_args(camp, cache, 0)) == 0
        assert cli("campaign", "--campaign-dir", camp,
                   "--cache-dir", cache, "--merge") == 1
        out = capsys.readouterr().out
        assert "INCOMPLETE" in out and "repro reconcile" in out
        assert cli("reconcile", "--campaign-dir", camp,
                   "--cache-dir", cache) == 0
        assert "CONVERGED" in capsys.readouterr().out
        assert cli("campaign", "--campaign-dir", camp,
                   "--cache-dir", cache, "--merge") == 0

    def test_reconcile_check_reports_without_repairing(self, cli, capsys,
                                                       dirs):
        camp, cache = dirs
        assert cli(*self._shard_args(camp, cache, 0)) == 0
        assert cli("reconcile", "--campaign-dir", camp,
                   "--cache-dir", cache, "--check") == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out and "missing" in out
        # --check must not have repaired anything
        assert cli("reconcile", "--campaign-dir", camp,
                   "--cache-dir", cache, "--check") == 1

    def test_reconcile_writes_machine_readable_report(self, cli, tmp_path,
                                                      dirs):
        import json

        camp, cache = dirs
        assert cli(*self._shard_args(camp, cache, 0)) == 0
        out_file = tmp_path / "report.json"
        assert cli("reconcile", "--campaign-dir", camp, "--cache-dir",
                   cache, "--out", str(out_file)) == 0
        payload = json.loads(out_file.read_text())
        assert payload["converged"] is True
        assert payload["initial"]["missing"] > 0

    def test_reconcile_without_manifest_fails_cleanly(self, cli, capsys,
                                                      tmp_path):
        assert cli("reconcile", "--campaign-dir",
                   str(tmp_path / "empty")) == 2
        assert "manifest" in capsys.readouterr().err

    def test_bad_shard_syntax_rejected(self, cli, dirs):
        camp, cache = dirs
        with pytest.raises(SystemExit):
            cli("campaign", "--campaign-dir", camp, "--cache-dir", cache,
                "--shard", "zero-of-two", "--workloads", "dotprod",
                "--arches", "ooo")

    def test_campaign_without_action_is_an_error(self, cli, capsys, dirs):
        camp, cache = dirs
        assert cli("campaign", "--campaign-dir", camp,
                   "--cache-dir", cache, "--workloads", "dotprod",
                   "--arches", "ooo") == 2
        assert "--shard" in capsys.readouterr().err
