"""The perf-regression gate must catch slowdowns and refuse bad diffs."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "compare_bench", REPO / "benchmarks" / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_bench)


def _report(scale=1.0, **overrides):
    """A synthetic harness report; ``scale`` multiplies every phase time."""
    base = {
        "ops": 3000,
        "jobs": 2,
        "cpu_count": 8,
        "workloads": ["a", "b"],
        "arches": ["ooo", "ballerino"],
        "simulations": 4,
        "phases": {
            "trace_warm": {"seconds": round(0.1 * scale, 4)},
            "serial_cold": {
                "seconds": round(2.0 * scale, 4),
                "simulations": 4,
                "sims_per_sec": round(2.0 / scale, 4),
                "cache_hits": 0,
            },
            "warm_cached": {
                "seconds": round(0.002 * scale, 4),
                "simulations": 0,
                "sims_per_sec": None,
                "cache_hits": 4,
            },
            "single_sim_ooo": {
                "seconds": round(0.5 * scale, 4),
                "cycles": 5000,
                "kcycles_per_sec": round(10.0 / scale, 4),
            },
        },
    }
    base.update(overrides)
    return base


class TestCompareReports:
    def test_self_compare_has_no_regressions(self):
        rows, regressions = compare_bench.compare_reports(
            _report(), _report()
        )
        assert regressions == []
        assert {r["phase"] for r in rows} == {
            "trace_warm", "serial_cold", "warm_cached", "single_sim_ooo",
        }

    def test_two_x_slowdown_fails(self):
        rows, regressions = compare_bench.compare_reports(
            _report(), _report(scale=2.0), threshold=1.5
        )
        slow = {r.split(":")[0] for r in regressions}
        assert "serial_cold" in slow and "single_sim_ooo" in slow
        # rate fields are reported alongside wall-clock
        assert any("sims_per_sec" in r for r in regressions)
        assert any("kcycles_per_sec" in r for r in regressions)

    def test_threshold_is_configurable(self):
        _, at_3x = compare_bench.compare_reports(
            _report(), _report(scale=2.0), threshold=3.0
        )
        assert at_3x == []
        _, at_1_5x = compare_bench.compare_reports(
            _report(), _report(scale=2.0), threshold=1.5
        )
        assert at_1_5x

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError):
            compare_bench.compare_reports(_report(), _report(), threshold=1.0)

    def test_sub_floor_phases_are_skipped(self):
        # warm_cached is 2ms vs 4ms: huge ratio, but pure timer noise
        rows, regressions = compare_bench.compare_reports(
            _report(), _report(scale=2.0), threshold=1.5
        )
        warm = next(r for r in rows if r["phase"] == "warm_cached")
        assert "skipped" in warm["verdict"]
        assert not any(r.startswith("warm_cached") for r in regressions)

    def test_speedups_pass(self):
        _, regressions = compare_bench.compare_reports(
            _report(), _report(scale=0.5)
        )
        assert regressions == []

    def test_phase_missing_from_new_report_warns_not_fails(self):
        fresh = _report()
        del fresh["phases"]["single_sim_ooo"]
        rows, regressions = compare_bench.compare_reports(_report(), fresh)
        assert regressions == []
        row = next(r for r in rows if r["phase"] == "single_sim_ooo")
        assert row["verdict"].startswith("warning:")
        assert row["new_seconds"] is None

    def test_phase_only_in_new_report_warns_not_fails(self):
        fresh = _report()
        fresh["phases"]["lockstep_sweep"] = {
            "seconds": 1.0, "sims_per_sec": 12.0}
        rows, regressions = compare_bench.compare_reports(_report(), fresh)
        assert regressions == []
        row = next(r for r in rows if r["phase"] == "lockstep_sweep")
        assert row["verdict"].startswith("warning:")
        assert row["old_seconds"] is None

    def test_skipped_phase_marker_warns_not_fails(self):
        fresh = _report()
        fresh["phases"]["single_sim_ooo"] = {
            "skipped": "cpu_count == 1"}
        rows, regressions = compare_bench.compare_reports(_report(), fresh)
        assert regressions == []
        row = next(r for r in rows if r["phase"] == "single_sim_ooo")
        assert "skipped in new report" in row["verdict"]
        # warning rows must render (None seconds) without raising
        assert "single_sim_ooo" in compare_bench.format_rows(rows)


class TestZeroWorkRates:
    """Rate comparisons need real work on both sides (regression: a
    0.0-vs-0.0 rate pair passed silently and a 0.0 baseline rate could
    never fail anything)."""

    def _with_phase(self, report, **phase):
        report["phases"]["serial_cold"].update(phase)
        return report

    def test_zero_work_on_both_sides_is_skipped(self):
        # a phase that simulated nothing (e.g. fully cached) carries a
        # 0.0 rate; comparing 0.0 against 0.0 must not count as "checked"
        old = self._with_phase(_report(), simulations=0, sims_per_sec=0.0)
        new = self._with_phase(
            _report(scale=2.0), simulations=0, sims_per_sec=0.0)
        _, regressions = compare_bench.compare_reports(old, new)
        assert not any("sims_per_sec" in r for r in regressions)

    def test_zero_baseline_rate_with_work_is_skipped(self):
        # work happened but the recorded rate rounded to zero: there is
        # no usable reference, so neither pass nor fail — skip
        old = self._with_phase(_report(), sims_per_sec=0.0)
        new = self._with_phase(_report(scale=4.0), sims_per_sec=0.0)
        _, regressions = compare_bench.compare_reports(old, new)
        assert not any("sims_per_sec" in r for r in regressions)

    def test_stalled_new_rate_with_work_fails(self):
        # the inverse must NOT be skipped: baseline had a real rate and
        # the new run did work at rate zero -> that is a stall, not noise
        old = _report()
        new = self._with_phase(_report(), sims_per_sec=0.0)
        _, regressions = compare_bench.compare_reports(old, new)
        assert any(
            "sims_per_sec" in r and "stalled" in r for r in regressions)

    def test_zero_work_in_new_report_only_is_skipped(self):
        old = _report()
        new = self._with_phase(
            _report(scale=2.0), simulations=0, sims_per_sec=0.0)
        _, regressions = compare_bench.compare_reports(
            old, new, threshold=1.5)
        assert not any("sims_per_sec" in r for r in regressions)
        # wall-clock seconds are still gated for the same phase
        assert any(r.startswith("serial_cold:") or "serial_cold" in r
                   for r in regressions)


class TestComparability:
    def test_matrix_mismatch_is_hard_issue(self):
        issues, _ = compare_bench.comparability_issues(
            _report(), _report(ops=9999)
        )
        assert issues and "ops" in issues[0]

    def test_jobs_and_cpu_count_only_warn(self):
        issues, warnings = compare_bench.comparability_issues(
            _report(), _report(jobs=8, cpu_count=2)
        )
        assert issues == []
        assert len(warnings) == 2


class TestCli:
    def _write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", _report())
        assert compare_bench.main(
            ["--baseline", baseline, "--new", baseline]
        ) == 0
        assert "OK: no phase regressed" in capsys.readouterr().out

    def test_synthetic_slowdown_exits_one(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", _report())
        slow = self._write(tmp_path, "slow.json", _report(scale=2.0))
        assert compare_bench.main(
            ["--baseline", baseline, "--new", slow]
        ) == 1
        err = capsys.readouterr().err
        assert "FAIL" in err and "serial_cold" in err

    def test_incomparable_exits_two(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", _report())
        other = self._write(tmp_path, "other.json", _report(ops=9999))
        assert compare_bench.main(
            ["--baseline", baseline, "--new", other]
        ) == 2
        assert "not comparable" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, tmp_path, monkeypatch):
        monkeypatch.setattr(compare_bench, "find_baseline", lambda: None)
        assert compare_bench.main(["--new", "whatever.json"]) == 2

    def test_find_baseline_prefers_newest_name(self, tmp_path):
        for name in ("BENCH.json", "BENCH_PR2.json", "BENCH_PR5.json"):
            (tmp_path / name).write_text("{}")
        assert compare_bench.find_baseline(tmp_path).name == "BENCH_PR5.json"

    def test_repo_baseline_self_compares_clean(self, capsys):
        """The committed baseline must pass the gate against itself."""
        baseline = compare_bench.find_baseline()
        assert baseline is not None
        assert compare_bench.main(
            ["--baseline", str(baseline), "--new", str(baseline)]
        ) == 0
