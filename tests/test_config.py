"""Tests that the configuration presets encode paper Tables I and II."""

import pytest

from repro.core import FIG11_ARCHES, FIG13_ARCHES, config_for


class TestTable1WidthParams:
    def test_8wide_core(self):
        cfg = config_for("ooo", width=8)
        assert cfg.issue_width == 8
        assert cfg.decode_width == 4
        assert cfg.frequency_ghz == 3.4
        assert cfg.rob_size == 224
        assert cfg.lq_size == 72
        assert cfg.sq_size == 56
        assert cfg.phys_int == 180
        assert cfg.phys_fp == 168
        assert cfg.recovery_penalty == 11

    def test_4wide_core(self):
        cfg = config_for("ooo", width=4)
        assert cfg.frequency_ghz == 2.5
        assert cfg.rob_size == 128
        assert cfg.scheduler.iq_size == 64

    def test_2wide_core(self):
        cfg = config_for("ooo", width=2)
        assert cfg.frequency_ghz == 2.0
        assert cfg.rob_size == 48
        assert cfg.scheduler.iq_size == 32

    def test_inorder_uses_smaller_penalty_and_no_mdp(self):
        cfg = config_for("inorder")
        assert cfg.recovery_penalty == 8
        assert not cfg.mdp_enabled
        assert config_for("ooo").mdp_enabled

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            config_for("ooo", width=6)

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            config_for("tomasulo")


class TestTable2SchedulingWindows:
    def test_ces_8wide(self):
        sched = config_for("ces").scheduler
        assert sched.kind == "ces"
        assert sched.num_piqs == 8
        assert sched.piq_size == 12
        assert not sched.mda_steering

    def test_ces_mda_variant(self):
        assert config_for("ces_mda").scheduler.mda_steering

    def test_casino_8wide(self):
        sched = config_for("casino").scheduler
        assert sched.casino_queues == (8, 40, 40, 8)
        assert sched.casino_window == 4

    def test_casino_narrow_widths(self):
        assert config_for("casino", width=4).scheduler.casino_queues == (6, 52, 6)
        assert config_for("casino", width=2).scheduler.casino_queues == (4, 28)

    def test_fxa_iq_is_half_of_baseline(self):
        assert config_for("fxa").scheduler.iq_size == 48
        assert config_for("fxa", width=4).scheduler.iq_size == 32

    def test_ballerino_8wide(self):
        sched = config_for("ballerino").scheduler
        assert sched.siq_size == 8
        assert sched.num_piqs == 7
        assert sched.piq_size == 12
        assert sched.mda_steering and sched.piq_sharing
        assert not sched.ideal_sharing

    def test_ballerino12(self):
        assert config_for("ballerino12").scheduler.num_piqs == 11

    def test_step_variants(self):
        step1 = config_for("ballerino_step1").scheduler
        assert not step1.mda_steering and not step1.piq_sharing
        step2 = config_for("ballerino_step2").scheduler
        assert step2.mda_steering and not step2.piq_sharing
        ideal = config_for("ballerino_ideal").scheduler
        assert ideal.piq_sharing and ideal.ideal_sharing

    def test_oldest_first_variant(self):
        assert config_for("ooo_oldest").scheduler.oldest_first
        assert not config_for("ooo").scheduler.oldest_first

    def test_piq_overrides_for_sweeps(self):
        cfg = config_for("ballerino", num_piqs=11, piq_size=24)
        assert cfg.scheduler.num_piqs == 11
        assert cfg.scheduler.piq_size == 24
        assert "p11" in cfg.name and "s24" in cfg.name


class TestFigureLists:
    def test_fig11_covers_all_designs(self):
        for arch in FIG11_ARCHES:
            config_for(arch)  # must not raise

    def test_fig13_step_order(self):
        assert FIG13_ARCHES[0] == "ces"
        assert FIG13_ARCHES[-1] == "ballerino_ideal"
        for arch in FIG13_ARCHES:
            config_for(arch)

    def test_config_names_unique(self):
        names = {config_for(a).name for a in FIG11_ARCHES}
        assert len(names) == len(FIG11_ARCHES)
