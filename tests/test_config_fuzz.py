"""Configuration-space fuzzing: random (legal) configs must all commit.

Catches interactions between structural limits that no hand-written test
enumerates (tiny ROB + wide issue + small queues + narrow windows...).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import config_for
from repro.core.pipeline import Pipeline
from repro.workloads import build_trace

ARCHES = ("inorder", "ooo", "ces", "casino", "fxa", "ballerino", "dnb", "spq")


@st.composite
def fuzzed_config(draw):
    arch = draw(st.sampled_from(ARCHES))
    width = draw(st.sampled_from((2, 4, 8)))
    base = config_for(arch, width=width)
    rob = draw(st.integers(8, 64))
    return dataclasses.replace(
        base,
        rob_size=rob,
        lq_size=draw(st.integers(2, 16)),
        sq_size=draw(st.integers(2, 16)),
        alloc_queue=draw(st.integers(2, 32)),
        phys_int=draw(st.integers(40, 96)),
        phys_fp=draw(st.integers(40, 96)),
        mdp_enabled=draw(st.booleans()),
        name=f"{base.name}-fuzz",
    )


@given(config=fuzzed_config(), workload=st.sampled_from(
    ("histogram", "mixed_int_fp", "spill_fill")))
@settings(max_examples=25, deadline=None)
def test_random_configs_commit_fully(config, workload):
    trace = build_trace(workload, target_ops=700)
    pipeline = Pipeline(trace, config, check_invariants=True)
    result = pipeline.run()
    assert result.stats.committed == len(trace)
    assert result.stats.issued >= result.stats.committed
