"""Tests for ports, the ready file, the ROB, and InFlightOp."""

import pytest

from repro.core import PORT_MAPS_BY_WIDTH, PortFile, ReadyFile, ReorderBuffer
from repro.core.ifop import InFlightOp
from repro.isa import OpClass, R, opcode
from repro.isa.instruction import DynOp


def make_ifop(seq=0, name="add", dest=R[1], srcs=(R[2], R[3])):
    op = DynOp(seq=seq, pc=0, opcode=opcode(name), dest=dest, srcs=srcs)
    return InFlightOp(seq=seq, op=op, decode_cycle=0)


class TestPortMaps:
    @pytest.mark.parametrize("width", [2, 4, 8, 10])
    def test_every_class_has_a_port(self, width):
        ports = PortFile(PORT_MAPS_BY_WIDTH[width])
        for klass in OpClass:
            assert ports.ports_for(klass)

    def test_8wide_matches_table1(self):
        ports = PortFile(PORT_MAPS_BY_WIDTH[8])
        assert list(ports.ports_for(OpClass.INT_ALU)) == [0, 1, 5, 6]
        assert list(ports.ports_for(OpClass.LOAD)) == [2, 3, 4, 7]
        assert list(ports.ports_for(OpClass.BRANCH)) == [0, 6]
        assert list(ports.ports_for(OpClass.INT_DIV)) == [0]
        assert list(ports.ports_for(OpClass.INT_MUL)) == [1]

    def test_port_count_equals_width(self):
        for width, port_map in PORT_MAPS_BY_WIDTH.items():
            assert len(port_map) == width


class TestPortArbitration:
    def test_assignment_balances_load(self):
        ports = PortFile(PORT_MAPS_BY_WIDTH[8])
        assigned = [ports.assign(OpClass.INT_ALU) for _ in range(8)]
        # four ALU ports: each should get two of eight ops
        for port in (0, 1, 5, 6):
            assert assigned.count(port) == 2

    def test_one_grant_per_port_per_cycle(self):
        ports = PortFile(PORT_MAPS_BY_WIDTH[8])
        ports.assign(OpClass.INT_ALU)
        ports.assign(OpClass.INT_ALU)
        assert ports.can_issue(0, OpClass.INT_ALU, cycle=1)
        ports.grant(0, OpClass.INT_ALU, 1, latency=1, pipelined=True)
        assert not ports.can_issue(0, OpClass.INT_ALU, cycle=1)
        assert ports.can_issue(0, OpClass.INT_ALU, cycle=2)

    def test_double_grant_raises(self):
        ports = PortFile(PORT_MAPS_BY_WIDTH[8])
        ports.assign(OpClass.INT_ALU)
        ports.assign(OpClass.INT_ALU)
        ports.grant(0, OpClass.INT_ALU, 1, 1, True)
        with pytest.raises(RuntimeError):
            ports.grant(0, OpClass.INT_ALU, 1, 1, True)

    def test_unpipelined_divide_blocks_its_fu(self):
        ports = PortFile(PORT_MAPS_BY_WIDTH[8])
        ports.assign(OpClass.INT_DIV)
        ports.grant(0, OpClass.INT_DIV, 1, latency=20, pipelined=False)
        # the divider is busy for 20 cycles...
        assert not ports.can_issue(0, OpClass.INT_DIV, cycle=5)
        assert ports.can_issue(0, OpClass.INT_DIV, cycle=21)
        # ...but the port itself is free for other classes next cycle
        assert ports.can_issue(0, OpClass.INT_ALU, cycle=5)

    def test_unassign(self):
        ports = PortFile(PORT_MAPS_BY_WIDTH[8])
        port = ports.assign(OpClass.INT_ALU)
        assert ports.inflight[port] == 1
        ports.unassign(port)
        assert ports.inflight[port] == 0


class TestReadyFile:
    def test_initially_ready(self):
        ready = ReadyFile(8)
        assert ready.is_ready(3, cycle=0)

    def test_pending_then_ready(self):
        ready = ReadyFile(8)
        ready.mark_pending(3)
        assert not ready.is_ready(3, cycle=100)
        ready.mark_ready(3, cycle=42)
        assert not ready.is_ready(3, cycle=41)
        assert ready.is_ready(3, cycle=42)
        assert ready.ready_cycle(3) == 42

    def test_release_resets(self):
        ready = ReadyFile(8)
        ready.mark_pending(3)
        ready.release(3)
        assert ready.is_ready(3, cycle=0)


class TestReorderBuffer:
    def test_fifo_commit_order(self):
        rob = ReorderBuffer(4)
        ops = [make_ifop(seq=i) for i in range(3)]
        for op in ops:
            rob.append(op)
        assert not rob.commit_ready()  # head not completed
        ops[1].completed = True
        assert not rob.commit_ready()  # completion out of order: still blocked
        ops[0].completed = True
        assert rob.commit_ready()
        assert rob.pop_head() is ops[0]

    def test_overflow_raises(self):
        rob = ReorderBuffer(1)
        rob.append(make_ifop(0))
        assert rob.full
        with pytest.raises(RuntimeError):
            rob.append(make_ifop(1))

    def test_flush_returns_youngest_first(self):
        rob = ReorderBuffer(8)
        for i in range(5):
            rob.append(make_ifop(seq=i))
        squashed = rob.flush_from(2)
        assert [op.seq for op in squashed] == [4, 3, 2]
        assert len(rob) == 2

    def test_max_occupancy_tracking(self):
        rob = ReorderBuffer(8)
        for i in range(5):
            rob.append(make_ifop(seq=i))
        rob.flush_from(0)
        assert rob.max_occupancy == 5


class TestInFlightOp:
    def test_passthrough_properties(self):
        load = make_ifop(name="load", dest=R[1], srcs=(R[2],))
        assert load.is_load and not load.is_store and not load.is_branch
        assert load.opcode.name == "load"

    def test_default_timestamps(self):
        op = make_ifop()
        assert op.dispatch_cycle == -1
        assert not op.issued and not op.completed
        assert op.klass == "Rst"
