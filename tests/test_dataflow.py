"""Tests for the dataflow-limit analyzer."""

import pytest

from repro.analysis.dataflow import analyze, characterize_suite
from repro.core import config_for, simulate
from repro.isa import R
from repro.workloads import ProgramBuilder, build_trace, default_suite, execute
from repro.workloads.suite import SMOKE_NAMES


def trace_of(build_fn, name="t", memory=None):
    b = ProgramBuilder(name)
    build_fn(b)
    b.halt()
    return execute(b.build(), memory=memory)


class TestCriticalPath:
    def test_serial_chain_path_equals_length(self):
        def body(b):
            b.li(R[1], 0)
            for _ in range(10):
                b.addi(R[1], R[1], 1)

        report = analyze(trace_of(body), memory_dependences=False)
        # li + 10 serial addis, 1 cycle each
        assert report.critical_path == 11

    def test_independent_ops_have_short_path(self):
        def body(b):
            for lane in range(10):
                b.li(R[1 + lane % 8], lane)

        report = analyze(trace_of(body))
        assert report.critical_path <= 2  # everything parallel
        assert report.ideal_ipc > 5

    def test_latency_weighting(self):
        def body(b):
            b.li(R[1], 100)
            b.li(R[2], 7)
            b.div(R[3], R[1], R[2])   # 20 cycles
            b.addi(R[3], R[3], 1)     # serial after the divide

        report = analyze(trace_of(body))
        assert report.critical_path >= 22

    def test_memory_dependence_serialises(self):
        def body(b):
            b.li(R[1], 0x1000)
            b.li(R[2], 5)
            b.store(R[2], R[1], 0)
            b.load(R[3], R[1], 0)  # must follow the store
            b.addi(R[4], R[3], 1)

        with_mem = analyze(trace_of(body), memory_dependences=True)
        without = analyze(trace_of(body), memory_dependences=False)
        assert with_mem.critical_path > without.critical_path

    def test_zero_register_carries_no_dependence(self):
        def body(b):
            for _ in range(6):
                b.addi(R[1], R[0], 1)  # all independent (r0 source)

        report = analyze(trace_of(body))
        assert report.critical_path <= 2


class TestAsOracle:
    @pytest.mark.parametrize("arch", ["inorder", "ooo", "ces", "casino",
                                      "fxa", "ballerino", "dnb"])
    @pytest.mark.parametrize("workload", SMOKE_NAMES)
    def test_no_scheduler_beats_the_dataflow_limit(self, arch, workload):
        trace = build_trace(workload, target_ops=1500)
        limit = analyze(trace).ideal_ipc
        result = simulate(trace, config_for(arch))
        assert result.ipc <= limit * 1.001

    def test_suite_characterisation(self):
        reports = characterize_suite(default_suite(target_ops=1500))
        assert set(reports) == set(t.name for t in default_suite(1500))
        # pointer chasing has (almost) no ILP; dag_wide has plenty
        assert reports["pointer_chase"].ideal_ipc < reports["dag_wide"].ideal_ipc

    def test_bounds_helper(self):
        trace = build_trace("matmul_tile", target_ops=1500)
        report = analyze(trace)
        result = simulate(trace, config_for("ooo"))
        achieved = report.bounds(result.ipc)
        assert 0 < achieved <= 1.001
