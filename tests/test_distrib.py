"""Distributed campaigns: sharding, ordered merge, reconciliation."""

import json

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.distrib import (
    CampaignSpec,
    Detector,
    RepairEngine,
    RepairScheduler,
    cell_label,
    load_manifest,
    merge_shards,
    reconcile_campaign,
    run_shard,
    shard_cells,
    shard_of,
)
from repro.distrib.reconcile import CampaignDiff, CellStatus
from repro.telemetry.runlog import RunLog
from repro.workloads.suite import get_trace

OPS = 400


@pytest.fixture(autouse=True)
def trace_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    get_trace.cache_clear()
    yield
    get_trace.cache_clear()


def make_spec(n_shards=2, salt=1, **kw):
    kw.setdefault("workloads", ("dotprod", "histogram"))
    kw.setdefault("arches", ("inorder", "ooo"))
    kw.setdefault("widths", (4,))
    kw.setdefault("ops", OPS)
    return CampaignSpec(n_shards=n_shards, salt=salt, **kw)


def paths(tmp_path):
    return tmp_path / "camp", str(tmp_path / "cache")


def run_all_shards(spec, camp, cache, **kw):
    for shard in range(spec.n_shards):
        run_shard(spec, shard, camp, cache_dir=cache, **kw)


# ---------------------------------------------------------------------------
# sharding


class TestSharding:
    def test_every_cell_lands_in_exactly_one_shard(self):
        cells = make_spec().cells()
        shards = shard_cells(cells, 3, salt=0)
        seqs = sorted(seq for shard in shards for seq, _ in shard)
        assert seqs == list(range(len(cells)))

    def test_assignment_is_deterministic_and_salted(self):
        cells = make_spec().cells()
        first = [shard_of(cell, 4, salt=0) for cell in cells]
        again = [shard_of(cell, 4, salt=0) for cell in cells]
        resalted = [shard_of(cell, 4, salt=99) for cell in cells]
        assert first == again
        assert first != resalted  # 16 cells: collision odds ~4^-16

    def test_zero_shards_rejected(self):
        cell = make_spec().cells()[0]
        with pytest.raises(ValueError):
            shard_of(cell, 0, salt=0)

    def test_label_distinguishes_default_and_explicit_seed(self):
        spec = make_spec(seeds=(None, 3))
        labels = {cell_label(cell) for cell in spec.cells()}
        assert len(labels) == len(spec.cells())


# ---------------------------------------------------------------------------
# manifest


class TestManifest:
    def test_roundtrip(self, tmp_path):
        camp, _ = paths(tmp_path)
        spec = make_spec()
        spec.save(camp)
        assert load_manifest(camp) == spec

    def test_conflicting_manifest_refused(self, tmp_path):
        camp, _ = paths(tmp_path)
        make_spec().save(camp)
        with pytest.raises(ValueError):
            make_spec(salt=42).save(camp)

    def test_missing_manifest_names_the_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_manifest(tmp_path / "nowhere")


# ---------------------------------------------------------------------------
# shard execution + ordered merge


class TestMerge:
    def test_full_campaign_merges_complete_and_ordered(self, tmp_path):
        camp, cache = paths(tmp_path)
        spec = make_spec()
        run_all_shards(spec, camp, cache)
        merged = merge_shards(spec, camp, cache_dir=cache)
        assert merged.complete
        assert [env["seq"] for env in merged.envelopes] == \
            list(range(len(spec.cells())))
        assert (camp / "merged.json").exists()

    def test_merge_is_byte_identical_to_serial_run(self, tmp_path):
        camp, cache = paths(tmp_path)
        spec = make_spec()
        run_all_shards(spec, camp, cache, jobs=2)
        merged = merge_shards(spec, camp, cache_dir=cache)
        serial = ExperimentRunner(target_ops=spec.ops, seed=spec.seed,
                                  cache_dir=str(tmp_path / "serial"))
        results = serial.run_many([cell.task(spec.seed)
                                   for cell in spec.cells()], jobs=1)
        for envelope, result in zip(merged.envelopes, results):
            assert json.dumps(envelope["result"], sort_keys=True) == \
                json.dumps(result.to_dict(), sort_keys=True)

    def test_dead_shard_leaves_named_gaps(self, tmp_path):
        camp, cache = paths(tmp_path)
        spec = make_spec()
        run_shard(spec, 0, camp, cache_dir=cache)  # shard 1 never runs
        merged = merge_shards(spec, camp, cache_dir=cache)
        assert not merged.complete
        owed = sorted(seq for seq, _ in spec.shards()[1])
        assert sorted(merged.gaps) == owed

    def test_shredded_log_recovers_from_cache(self, tmp_path):
        """Log damage must not lose cells whose cache entry survived."""
        camp, cache = paths(tmp_path)
        spec = make_spec()
        run_all_shards(spec, camp, cache)
        victim = sorted(camp.glob("shard-*.jsonl"))[0]
        lines = victim.read_text().splitlines()
        victim.write_text("\n".join("GARBAGE" for _ in lines) + "\n")
        merged = merge_shards(spec, camp, cache_dir=cache)
        assert merged.complete
        assert merged.skipped_lines == len(lines)
        assert merged.unlogged  # recovered via direct cache probe

    def test_invalid_shard_index_rejected(self, tmp_path):
        camp, cache = paths(tmp_path)
        spec = make_spec()
        with pytest.raises(ValueError):
            run_shard(spec, 9, camp, cache_dir=cache)


# ---------------------------------------------------------------------------
# detector


class TestDetector:
    def _setup(self, tmp_path):
        camp, cache = paths(tmp_path)
        spec = make_spec()
        run_all_shards(spec, camp, cache)
        return spec, camp, cache, Detector(spec, cache_dir=cache)

    def test_healthy_campaign_converges(self, tmp_path):
        _, camp, _, detector = self._setup(tmp_path)
        diff = detector.diff(camp)
        assert diff.converged
        assert diff.by_state()["ok"] == len(diff.statuses)

    def test_deleted_entry_with_finish_record_is_orphaned(self, tmp_path):
        _, camp, _, detector = self._setup(tmp_path)
        seq, cell, key = detector.expected()[0]
        detector._runner.cache_path(key).unlink()
        (status,) = detector.diff(camp).damaged
        assert status.state == "orphaned"
        assert status.key == key

    def test_garbage_entry_is_corrupt(self, tmp_path):
        _, camp, _, detector = self._setup(tmp_path)
        _, _, key = detector.expected()[0]
        detector._runner.cache_path(key).write_bytes(b"\x00\xff{nope")
        (status,) = detector.diff(camp).damaged
        assert status.state == "corrupt"

    def test_zero_byte_entry_is_corrupt(self, tmp_path):
        _, camp, _, detector = self._setup(tmp_path)
        _, _, key = detector.expected()[0]
        detector._runner.cache_path(key).write_text("")
        (status,) = detector.diff(camp).damaged
        assert status.state == "corrupt"
        assert "zero-byte" in status.detail

    def test_field_stripped_entry_is_stale_schema(self, tmp_path):
        _, camp, _, detector = self._setup(tmp_path)
        _, _, key = detector.expected()[0]
        path = detector._runner.cache_path(key)
        payload = json.loads(path.read_text())
        del payload["sampling"], payload["memory_stats"]
        path.write_text(json.dumps(payload))
        (status,) = detector.diff(camp).damaged
        assert status.state == "stale-schema"
        assert "sampling" in status.detail

    def test_misfiled_entry_is_corrupt(self, tmp_path):
        """An entry whose payload claims a different workload."""
        _, camp, _, detector = self._setup(tmp_path)
        expected = detector.expected()
        (_, cell_a, key_a), (_, cell_b, key_b) = expected[0], expected[-1]
        assert cell_a.workload != cell_b.workload
        path_a = detector._runner.cache_path(key_a)
        path_b = detector._runner.cache_path(key_b)
        path_a.write_text(path_b.read_text())
        damaged = {s.key: s for s in detector.diff(camp).damaged}
        assert damaged[key_a].state == "corrupt"
        assert "misfiled" in damaged[key_a].detail

    def test_unran_cell_with_no_account_is_missing(self, tmp_path):
        camp, cache = paths(tmp_path)
        spec = make_spec()
        run_shard(spec, 0, camp, cache_dir=cache)  # shard 1 dead
        detector = Detector(spec, cache_dir=cache)
        diff = detector.diff(camp)
        states = {status.state for status in diff.damaged}
        assert states == {"missing"}
        assert len(diff.damaged) == len(spec.shards()[1])

    def test_quarantine_record_classifies_quarantined(self, tmp_path):
        """A cell that only ever quarantined (no finish anywhere)."""
        camp, cache = paths(tmp_path)
        spec = make_spec()
        spec.save(camp)
        detector = Detector(spec, cache_dir=cache)
        _, _, key = detector.expected()[0]
        with RunLog(str(camp / "shard-0-of-2.jsonl")) as log:
            log.log("quarantine", key=key, kind="poison",
                    error="injected", attempts=3)
        damaged = {s.key: s for s in detector.diff(camp).damaged}
        assert damaged[key].state == "quarantined"
        assert "poison" in damaged[key].detail

    def test_later_finish_supersedes_quarantine(self, tmp_path):
        """A repaired cell's finish record clears its old quarantine."""
        _, camp, _, detector = self._setup(tmp_path)
        _, _, key = detector.expected()[0]
        with RunLog(str(camp / "shard-0-of-2.jsonl")) as log:
            log.log("quarantine", key=key, kind="poison",
                    error="stale record from an earlier life", attempts=3)
        diff = detector.diff(camp)
        assert diff.converged  # healthy cache entry is the arbiter

    def test_probe_is_read_only(self, tmp_path):
        """Unlike the runner, the detector must not delete bad entries."""
        _, camp, _, detector = self._setup(tmp_path)
        _, _, key = detector.expected()[0]
        path = detector._runner.cache_path(key)
        path.write_text("{broken")
        detector.diff(camp)
        assert path.exists()
        assert path.read_text() == "{broken"


# ---------------------------------------------------------------------------
# repair engine


def _status(state, key="k", seq=0):
    cell = make_spec().cells()[seq]
    return CellStatus(seq=seq, cell=cell, key=key, state=state)


class TestRepairEngine:
    def test_corrupt_and_stale_get_purge_rerun(self):
        diff = CampaignDiff(statuses=[
            _status("corrupt", "a"), _status("stale-schema", "b"),
            _status("missing", "c"), _status("orphaned", "d"),
        ])
        plan = RepairEngine().plan(diff)
        actions = {r.status.key: r.action for r in plan.repairs}
        assert actions == {"a": "purge-rerun", "b": "purge-rerun",
                           "c": "rerun", "d": "rerun"}

    def test_ok_cells_never_planned(self):
        plan = RepairEngine().plan(CampaignDiff(statuses=[_status("ok")]))
        assert plan.empty and not plan.exhausted

    def test_budget_exhaustion_reported_not_retried(self):
        diff = CampaignDiff(statuses=[_status("missing", "x")])
        engine = RepairEngine(cell_budget=2)
        plan = engine.plan(diff, attempts={"x": 2})
        assert plan.empty
        assert [s.key for s in plan.exhausted] == ["x"]

    def test_attempts_below_budget_still_planned(self):
        diff = CampaignDiff(statuses=[_status("missing", "x")])
        plan = RepairEngine(cell_budget=2).plan(diff, attempts={"x": 1})
        assert [r.attempt for r in plan.repairs] == [1]


# ---------------------------------------------------------------------------
# scheduler / end-to-end reconciliation


class TestReconcile:
    def test_dead_shard_repaired_to_convergence(self, tmp_path):
        camp, cache = paths(tmp_path)
        spec = make_spec()
        spec.save(camp)
        run_shard(spec, 0, camp, cache_dir=cache)
        report = reconcile_campaign(camp, cache_dir=cache)
        assert report.converged
        assert report.repaired == len(spec.shards()[1])
        assert merge_shards(spec, camp, cache_dir=cache).complete

    def test_repaired_results_are_byte_identical(self, tmp_path):
        camp, cache = paths(tmp_path)
        spec = make_spec()
        spec.save(camp)
        run_shard(spec, 0, camp, cache_dir=cache)
        detector = Detector(spec, cache_dir=cache)
        _, _, key = detector.expected()[0]
        corrupt_path = detector._runner.cache_path(key)
        if corrupt_path.exists():
            corrupt_path.write_text("{broken")
        reconcile_campaign(camp, cache_dir=cache)
        merged = merge_shards(spec, camp, cache_dir=cache)
        serial = ExperimentRunner(target_ops=spec.ops, seed=spec.seed,
                                  cache_dir=str(tmp_path / "serial"))
        results = serial.run_many([cell.task(spec.seed)
                                   for cell in spec.cells()], jobs=1)
        for envelope, result in zip(merged.envelopes, results):
            assert json.dumps(envelope["result"], sort_keys=True) == \
                json.dumps(result.to_dict(), sort_keys=True)

    def test_converged_campaign_runs_zero_rounds(self, tmp_path):
        camp, cache = paths(tmp_path)
        spec = make_spec()
        spec.save(camp)
        run_all_shards(spec, camp, cache)
        report = reconcile_campaign(camp, cache_dir=cache)
        assert report.converged and not report.rounds
        assert report.repaired == 0

    def test_unrepairable_cell_exhausts_budget(self, tmp_path):
        """A repair that never lands must stop at the budget, not spin."""
        camp, cache = paths(tmp_path)
        spec = make_spec()
        spec.save(camp)
        run_shard(spec, 0, camp, cache_dir=cache)

        class NoOpRunner:
            run_log = None

            def run_many(self, tasks, jobs=None):
                return []

        scheduler = RepairScheduler(
            spec, cache_dir=cache, engine=RepairEngine(cell_budget=2),
            runner_factory=NoOpRunner, max_rounds=5)
        report = scheduler.reconcile(camp)
        assert not report.converged
        assert len(report.rounds) == 2  # budget, not max_rounds, stopped it
        assert report.unrepaired

    def test_report_is_machine_readable(self, tmp_path):
        camp, cache = paths(tmp_path)
        spec = make_spec()
        spec.save(camp)
        run_shard(spec, 0, camp, cache_dir=cache)
        report = reconcile_campaign(camp, cache_dir=cache)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["converged"] is True
        assert set(payload["initial"]) == set(payload["final"])
        assert payload["rounds"][0]["repairs"] > 0

    def test_reconcile_log_records_lifecycle(self, tmp_path):
        from repro.telemetry.runlog import read_run_log_tolerant

        camp, cache = paths(tmp_path)
        spec = make_spec()
        spec.save(camp)
        run_shard(spec, 0, camp, cache_dir=cache)
        reconcile_campaign(camp, cache_dir=cache)
        records, skipped = read_run_log_tolerant(
            str(camp / "reconcile.jsonl"))
        events = [record["event"] for record in records]
        assert skipped == 0
        assert "reconcile_start" in events
        assert "reconcile_round" in events
        assert "reconcile_end" in events
        assert "finish" in events  # repairs leave lifecycle records
