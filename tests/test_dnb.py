"""Tests for the DNB (Delay-and-Bypass) extension scheduler."""

import pytest

from repro.core import config_for, simulate
from repro.isa import R
from repro.workloads import ProgramBuilder, build_trace, execute


def trace_of(build_fn, name="t", memory=None):
    b = ProgramBuilder(name)
    build_fn(b)
    b.halt()
    return execute(b.build(), memory=memory)


class TestConfig:
    def test_dnb_preset_exists(self):
        cfg = config_for("dnb")
        assert cfg.scheduler.kind == "dnb"
        # the OoO IQ is a quarter of the baseline's (hybrid point)
        assert cfg.scheduler.iq_size == 24

    def test_dnb_scales_with_width(self):
        assert config_for("dnb", width=4).scheduler.iq_size == 16
        assert config_for("dnb", width=2).scheduler.iq_size == 8


class TestBehaviour:
    def test_commits_all_suite_smoke_kernels(self):
        for name in ("histogram", "dag_wide", "matmul_tile"):
            trace = build_trace(name, target_ops=1500)
            result = simulate(trace, config_for("dnb"))
            assert result.stats.committed == len(trace)

    def test_bypass_captures_ready_work(self):
        def body(b):
            b.li(R[10], 100)
            b.label("top")
            b.li(R[1], 1)
            b.li(R[2], 2)
            b.addi(R[10], R[10], -1)
            b.bne(R[10], R[0], "top")

        result = simulate(trace_of(body), config_for("dnb"))
        sched = result.stats.scheduler
        assert sched["issued_bypass"] > 0

    def test_critical_ops_use_the_ooo_iq(self):
        trace = build_trace("hash_probe", target_ops=3000)
        result = simulate(trace, config_for("dnb"))
        sched = result.stats.scheduler
        assert sched["issued_ooo"] > 0

    def test_noncritical_chains_use_delay_queues(self):
        trace = build_trace("mixed_int_fp", target_ops=3000)
        result = simulate(trace, config_for("dnb"))
        assert result.stats.scheduler["issued_delay"] > 0

    def test_issue_accounting_is_complete(self):
        trace = build_trace("dag_wide", target_ops=3000)
        result = simulate(trace, config_for("dnb"))
        sched = result.stats.scheduler
        total = (
            sched["issued_bypass"] + sched["issued_ooo"] + sched["issued_delay"]
        )
        assert total == result.stats.issued

    def test_performance_between_inorder_and_ooo(self):
        trace = build_trace("hash_probe", target_ops=4000)
        ino = simulate(trace, config_for("inorder"))
        dnb = simulate(trace, config_for("dnb"))
        ooo = simulate(trace, config_for("ooo"))
        assert ooo.cycles <= dnb.cycles <= ino.cycles

    def test_cheaper_wakeup_than_full_ooo(self):
        trace = build_trace("matmul_tile", target_ops=3000)
        dnb = simulate(trace, config_for("dnb"))
        ooo = simulate(trace, config_for("ooo"))
        assert (
            dnb.stats.energy_events["wakeup_cam"]
            < ooo.stats.energy_events["wakeup_cam"]
        )

    def test_survives_flush_storm(self):
        import dataclasses

        trace = build_trace("histogram", target_ops=3000)
        cfg = dataclasses.replace(
            config_for("dnb"), mdp_enabled=False, name="dnb-nomdp"
        )
        result = simulate(trace, cfg)
        assert result.stats.committed == len(trace)
        assert result.stats.order_violations > 0
