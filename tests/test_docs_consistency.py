"""Guards against documentation rot: names and paths the docs rely on."""

from pathlib import Path

import pytest

from repro.cli import _ALL_ARCHES
from repro.core import config_for
from repro.workloads import KERNELS

REPO = Path(__file__).resolve().parents[1]


class TestDocFiles:
    @pytest.mark.parametrize("path", [
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "docs/microarchitecture.md",
        "docs/adding_a_scheduler.md",
        "docs/workloads.md",
        "docs/energy_model.md",
        "docs/api.md",
        "docs/observability.md",
        "docs/performance.md",
        "docs/serving.md",
    ])
    def test_exists_and_nonempty(self, path):
        file = REPO / path
        assert file.exists(), f"{path} missing"
        assert len(file.read_text()) > 500

    def test_readme_references_existing_paths(self):
        text = (REPO / "README.md").read_text()
        for path in ("examples/quickstart.py", "examples/custom_workload.py",
                     "examples/design_space.py", "EXPERIMENTS.md",
                     "DESIGN.md", "docs/api.md"):
            assert path in text
            assert (REPO / path).exists()


class TestCliAndConfigAgreement:
    def test_every_cli_arch_has_a_preset(self):
        for arch in _ALL_ARCHES:
            config_for(arch)  # must not raise

    def test_workloads_doc_lists_every_suite_kernel(self):
        text = (REPO / "docs" / "workloads.md").read_text()
        for name, spec in KERNELS.items():
            if spec.in_suite:
                assert f"`{name}`" in text, f"{name} missing from docs"


class TestExamplesAreRunnableFiles:
    @pytest.mark.parametrize("name", [
        "quickstart.py", "custom_workload.py", "design_space.py",
        "figure_gallery.py",
    ])
    def test_example_compiles(self, name):
        import py_compile

        py_compile.compile(str(REPO / "examples" / name), doraise=True)


class TestBenchmarksCoverEveryFigure:
    def test_one_bench_per_figure(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        expected = {
            "bench_fig03_breakdown.py",
            "bench_fig04_ces_steering.py",
            "bench_fig06_bottlenecks.py",
            "bench_fig11_performance.py",
            "bench_fig12_sched_perf.py",
            "bench_fig13_steps.py",
            "bench_fig14_issue_mix.py",
            "bench_fig15_energy.py",
            "bench_fig16_efficiency.py",
            "bench_fig17a_width.py",
            "bench_fig17b_dvfs.py",
            "bench_fig17c_piq_count.py",
            "bench_tables_config.py",
            "bench_mdp_ablation.py",
            "bench_ablation_extensions.py",
            "bench_seed_stability.py",
        }
        assert expected <= benches
