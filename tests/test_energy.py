"""Tests for the energy model and DVFS scaling."""

import pytest

from repro.core import config_for, simulate
from repro.energy import (
    CATEGORIES,
    DVFS_LEVELS,
    EnergyModel,
    LeakageParams,
    evaluate_level,
    sweep_levels,
)
from repro.workloads import build_trace


@pytest.fixture(scope="module")
def runs():
    trace = build_trace("mixed_int_fp", target_ops=4000)
    out = {}
    for arch in ("inorder", "ooo", "ces", "ballerino"):
        cfg = config_for(arch)
        out[arch] = (simulate(trace, cfg), cfg)
    return out


class TestEnergyModel:
    def test_all_categories_present(self, runs):
        result, cfg = runs["ooo"]
        report = EnergyModel().evaluate(result, cfg)
        assert set(report.categories) == set(CATEGORIES)
        assert report.total_pj > 0

    def test_fractions_sum_to_one(self, runs):
        result, cfg = runs["ooo"]
        report = EnergyModel().evaluate(result, cfg)
        assert abs(sum(report.fractions().values()) - 1.0) < 1e-9

    def test_ooo_scheduling_energy_dominates_ballerino(self, runs):
        """The headline claim: in-order IQs slash scheduling energy."""
        ooo_res, ooo_cfg = runs["ooo"]
        bal_res, bal_cfg = runs["ballerino"]
        model = EnergyModel()
        ooo = model.evaluate(ooo_res, ooo_cfg)
        bal = model.evaluate(bal_res, bal_cfg)
        assert bal.categories["Schedule"] < ooo.categories["Schedule"]
        assert bal.total_pj < ooo.total_pj

    def test_ballerino_pays_for_steering_and_mdp(self, runs):
        bal_res, bal_cfg = runs["ballerino"]
        report = EnergyModel().evaluate(bal_res, bal_cfg)
        assert report.categories["Steer"] > 0
        assert report.categories["MDP"] > 0

    def test_inorder_has_no_steer_or_mdp_energy(self, runs):
        res, cfg = runs["inorder"]
        report = EnergyModel().evaluate(res, cfg)
        assert report.categories["Steer"] == 0
        assert report.categories["MDP"] == 0

    def test_energy_per_instruction_reasonable(self, runs):
        res, cfg = runs["ooo"]
        epi = EnergyModel().evaluate(res, cfg).energy_per_instruction_pj
        assert 10 < epi < 1000  # sanity band for a core at 22 nm

    def test_leakage_scales_with_structures(self, runs):
        res, cfg = runs["ooo"]
        small = EnergyModel(leakage=LeakageParams())
        large = EnergyModel(
            leakage=LeakageParams(per_iq_entry=1.0, per_rob_entry=1.0)
        )
        assert (
            large.evaluate(res, cfg).categories["Schedule"]
            > small.evaluate(res, cfg).categories["Schedule"]
        )

    def test_edp_and_efficiency_inverse(self, runs):
        res, cfg = runs["ooo"]
        report = EnergyModel().evaluate(res, cfg)
        assert report.efficiency == pytest.approx(1.0 / report.edp)


class TestDVFS:
    def test_levels_match_paper(self):
        assert DVFS_LEVELS["L4"] == (3.4, 1.04)
        assert DVFS_LEVELS["L1"] == (2.8, 0.96)

    def test_lower_level_is_slower_but_leaner(self, runs):
        res, cfg = runs["ballerino"]
        l4 = evaluate_level(res, cfg, "L4")
        l1 = evaluate_level(res, cfg, "L1")
        assert l1.seconds > l4.seconds
        assert l1.energy_joules < l4.energy_joules
        assert l1.power_watts < l4.power_watts

    def test_sweep_covers_all_levels(self, runs):
        res, cfg = runs["ballerino"]
        points = sweep_levels(res, cfg)
        assert set(points) == set(DVFS_LEVELS)

    def test_ballerino_vs_ooo_iso_performance(self, runs):
        """Paper: at the same performance, Ballerino runs at a lower level
        with better efficiency than OoO needs."""
        bal_res, bal_cfg = runs["ballerino"]
        ooo_res, ooo_cfg = runs["ooo"]
        bal_l4 = evaluate_level(bal_res, bal_cfg, "L4")
        ooo_l4 = evaluate_level(ooo_res, ooo_cfg, "L4")
        # similar performance (within ~20%) but less energy
        assert bal_l4.seconds < ooo_l4.seconds * 1.25
        assert bal_l4.energy_joules < ooo_l4.energy_joules
