"""Unit tests for the functional executor's ISA semantics."""

import pytest

from repro.isa import F, R
from repro.workloads import (
    ExecutionLimitExceeded,
    FunctionalExecutor,
    ProgramBuilder,
    execute,
)


def run(build_fn, memory=None, registers=None):
    """Build a program with ``build_fn(builder)``, run it, return executor."""
    b = ProgramBuilder("t")
    build_fn(b)
    b.halt()
    ex = FunctionalExecutor(b.build(), memory=memory, registers=registers)
    trace = ex.run()
    return ex, trace


class TestArithmetic:
    def test_add_addi_sub(self):
        def body(b):
            b.li(R[1], 10)
            b.addi(R[2], R[1], 5)
            b.add(R[3], R[1], R[2])
            b.sub(R[4], R[3], R[1])

        ex, _ = run(body)
        assert ex.registers[R[2]] == 15
        assert ex.registers[R[3]] == 25
        assert ex.registers[R[4]] == 15

    def test_logical_and_shifts(self):
        def body(b):
            b.li(R[1], 0b1100)
            b.li(R[2], 0b1010)
            b.and_(R[3], R[1], R[2])
            b.or_(R[4], R[1], R[2])
            b.xor(R[5], R[1], R[2])
            b.shl(R[6], R[1], 2)
            b.shr(R[7], R[1], 2)

        ex, _ = run(body)
        assert ex.registers[R[3]] == 0b1000
        assert ex.registers[R[4]] == 0b1110
        assert ex.registers[R[5]] == 0b0110
        assert ex.registers[R[6]] == 0b110000
        assert ex.registers[R[7]] == 0b11

    def test_mul_div_rem(self):
        def body(b):
            b.li(R[1], 17)
            b.li(R[2], 5)
            b.mul(R[3], R[1], R[2])
            b.div(R[4], R[1], R[2])
            b.rem(R[5], R[1], R[2])

        ex, _ = run(body)
        assert ex.registers[R[3]] == 85
        assert ex.registers[R[4]] == 3
        assert ex.registers[R[5]] == 2

    def test_divide_by_zero_yields_zero(self):
        def body(b):
            b.li(R[1], 9)
            b.div(R[2], R[1], R[0])
            b.rem(R[3], R[1], R[0])

        ex, _ = run(body)
        assert ex.registers[R[2]] == 0
        assert ex.registers[R[3]] == 0

    def test_slt_and_mov(self):
        def body(b):
            b.li(R[1], 3)
            b.li(R[2], 7)
            b.slt(R[3], R[1], R[2])
            b.slt(R[4], R[2], R[1])
            b.mov(R[5], R[2])

        ex, _ = run(body)
        assert ex.registers[R[3]] == 1
        assert ex.registers[R[4]] == 0
        assert ex.registers[R[5]] == 7

    def test_r0_is_hardwired_zero(self):
        def body(b):
            b.li(R[0], 42)  # write is discarded
            b.add(R[1], R[0], R[0])

        ex, _ = run(body)
        assert ex.registers[R[0]] == 0
        assert ex.registers[R[1]] == 0


class TestFloatingPoint:
    def test_fp_arithmetic(self):
        def body(b):
            b.li(F[1], 6)
            b.li(F[2], 4)
            b.fadd(F[3], F[1], F[2])
            b.fsub(F[4], F[1], F[2])
            b.fmul(F[5], F[1], F[2])
            b.fdiv(F[6], F[1], F[2])
            b.fmov(F[7], F[6])

        ex, _ = run(body)
        assert ex.registers[F[3]] == 10
        assert ex.registers[F[4]] == 2
        assert ex.registers[F[5]] == 24
        assert ex.registers[F[6]] == 1.5
        assert ex.registers[F[7]] == 1.5

    def test_fdiv_by_zero_yields_zero(self):
        def body(b):
            b.li(F[1], 5)
            b.fdiv(F[2], F[1], F[0])

        ex, _ = run(body)
        assert ex.registers[F[2]] == 0.0


class TestMemory:
    def test_load_store_round_trip(self):
        def body(b):
            b.li(R[1], 0x1000)
            b.li(R[2], 99)
            b.store(R[2], R[1], 8)
            b.load(R[3], R[1], 8)

        ex, _ = run(body)
        assert ex.memory[0x1008] == 99
        assert ex.registers[R[3]] == 99

    def test_uninitialised_load_returns_zero(self):
        def body(b):
            b.li(R[1], 0x2000)
            b.load(R[2], R[1], 0)

        ex, _ = run(body)
        assert ex.registers[R[2]] == 0

    def test_initial_memory_image(self):
        def body(b):
            b.li(R[1], 0x40)
            b.load(R[2], R[1], 0)

        ex, _ = run(body, memory={0x40: 123})
        assert ex.registers[R[2]] == 123

    def test_trace_records_addresses(self):
        def body(b):
            b.li(R[1], 0x100)
            b.store(R[1], R[1], 0)
            b.load(R[2], R[1], 0)

        _, trace = run(body)
        mem_ops = [op for op in trace if op.is_mem]
        assert [op.mem_addr for op in mem_ops] == [0x100, 0x100]


class TestControlFlow:
    def test_countdown_loop(self):
        def body(b):
            b.li(R[1], 4)
            b.label("top")
            b.addi(R[1], R[1], -1)
            b.bne(R[1], R[0], "top")

        ex, trace = run(body)
        assert ex.registers[R[1]] == 0
        branches = [op for op in trace if op.is_branch]
        assert [op.taken for op in branches] == [True, True, True, False]

    def test_beq_blt_bge(self):
        def body(b):
            b.li(R[1], 5)
            b.li(R[2], 5)
            b.beq(R[1], R[2], "eq")
            b.li(R[9], 111)  # skipped
            b.label("eq")
            b.blt(R[1], R[2], "never")
            b.bge(R[1], R[2], "ge")
            b.li(R[9], 222)  # skipped
            b.label("ge")
            b.li(R[3], 1)
            b.label("never")

        ex, _ = run(body)
        assert ex.registers[R[9]] == 0
        assert ex.registers[R[3]] == 1

    def test_jmp_is_always_taken(self):
        def body(b):
            b.jmp("end")
            b.li(R[1], 5)  # skipped
            b.label("end")

        ex, trace = run(body)
        assert ex.registers[R[1]] == 0
        assert trace[0].taken is True

    def test_branch_trace_targets(self):
        def body(b):
            b.li(R[1], 1)
            b.label("top")
            b.addi(R[1], R[1], -1)
            b.bne(R[1], R[0], "top")

        _, trace = run(body)
        branch = [op for op in trace if op.is_branch][0]
        assert branch.target_pc == 1
        assert branch.fallthrough_pc == branch.pc + 1


class TestExecutorLimits:
    def test_infinite_loop_hits_limit(self):
        b = ProgramBuilder("spin")
        b.label("spin")
        b.jmp("spin")
        b.halt()
        with pytest.raises(ExecutionLimitExceeded):
            execute(b.build(), max_ops=100)

    def test_trace_is_deterministic(self):
        b = ProgramBuilder("d")
        b.li(R[1], 10)
        b.label("top")
        b.addi(R[1], R[1], -1)
        b.bne(R[1], R[0], "top")
        b.halt()
        program = b.build()
        t1 = execute(program)
        t2 = execute(program)
        assert len(t1) == len(t2)
        assert all(a.pc == b_.pc and a.taken == b_.taken
                   for a, b_ in zip(t1, t2))

    def test_halt_is_last_op(self):
        b = ProgramBuilder("h")
        b.nop()
        b.halt()
        trace = execute(b.build())
        assert trace[-1].opcode.name == "halt"
        assert len(trace) == 2
