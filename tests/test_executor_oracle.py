"""Property test: the functional executor against a direct Python oracle.

Hypothesis generates random straight-line arithmetic programs; a tiny
Python mirror evaluates the same operations directly.  Any divergence is
an executor semantics bug.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import F, R
from repro.workloads import FunctionalExecutor, ProgramBuilder

_INT_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and_": lambda a, b: a & b,
    "or_": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: 0 if b == 0 else a // b,
    "rem": lambda a, b: 0 if b == 0 else a % b,
    "slt": lambda a, b: 1 if a < b else 0,
}

op_strategy = st.tuples(
    st.sampled_from(sorted(_INT_BINOPS)),
    st.integers(1, 7),  # rd
    st.integers(0, 7),  # rs1 (0 = hardwired zero)
    st.integers(0, 7),  # rs2
)

imm_op_strategy = st.tuples(
    st.sampled_from(["addi", "shl", "shr", "li"]),
    st.integers(1, 7),
    st.integers(0, 7),
    st.integers(0, 15),  # immediate / shift amount
)


@given(
    init=st.lists(st.integers(-1000, 1000), min_size=7, max_size=7),
    binops=st.lists(op_strategy, max_size=40),
    immops=st.lists(imm_op_strategy, max_size=20),
)
@settings(max_examples=120, deadline=None)
def test_executor_matches_python_oracle(init, binops, immops):
    regs = [0] * 8
    b = ProgramBuilder("oracle")
    for i, value in enumerate(init, start=1):
        b.li(R[i], value)
        regs[i] = value
    # interleave the two op streams deterministically
    stream = []
    for index in range(max(len(binops), len(immops))):
        if index < len(binops):
            stream.append(("bin", binops[index]))
        if index < len(immops):
            stream.append(("imm", immops[index]))
    for kind, op in stream:
        if kind == "bin":
            name, rd, rs1, rs2 = op
            getattr(b, name)(R[rd], R[rs1], R[rs2])
            regs[rd] = _INT_BINOPS[name](regs[rs1], regs[rs2])
        else:
            name, rd, rs1, imm = op
            if name == "addi":
                b.addi(R[rd], R[rs1], imm)
                regs[rd] = regs[rs1] + imm
            elif name == "shl":
                b.shl(R[rd], R[rs1], imm)
                regs[rd] = regs[rs1] << imm
            elif name == "shr":
                b.shr(R[rd], R[rs1], imm)
                regs[rd] = regs[rs1] >> imm
            else:
                b.li(R[rd], imm)
                regs[rd] = imm
    b.halt()
    executor = FunctionalExecutor(b.build())
    executor.run()
    for i in range(8):
        assert executor.registers[R[i]] == regs[i], f"r{i} diverged"


@given(
    values=st.lists(st.integers(-100, 100), min_size=1, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_memory_store_load_oracle(values):
    """Store a list, reload it, sum it — matches Python's sum()."""
    b = ProgramBuilder("memsum")
    b.li(R[1], 0x1000)
    for i, value in enumerate(values):
        b.li(R[2], value)
        b.store(R[2], R[1], 8 * i)
    b.li(R[3], 0)
    for i in range(len(values)):
        b.load(R[4], R[1], 8 * i)
        b.add(R[3], R[3], R[4])
    b.halt()
    executor = FunctionalExecutor(b.build())
    executor.run()
    assert executor.registers[R[3]] == sum(values)


@given(
    n=st.integers(1, 30),
)
@settings(max_examples=30, deadline=None)
def test_loop_iteration_count_oracle(n):
    """A countdown loop executes exactly n iterations."""
    b = ProgramBuilder("count")
    b.li(R[1], n)
    b.label("top")
    b.addi(R[2], R[2], 1)
    b.addi(R[1], R[1], -1)
    b.bne(R[1], R[0], "top")
    b.halt()
    executor = FunctionalExecutor(b.build())
    trace = executor.run()
    assert executor.registers[R[2]] == n
    branches = [op for op in trace if op.is_branch]
    assert sum(1 for op in branches if op.taken) == n - 1
