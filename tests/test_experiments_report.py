"""Tests for the paper-vs-measured report collectors (small workload set)."""

import pytest

from repro.analysis import ExperimentRunner
from repro.analysis.experiments import (
    collect_energy,
    collect_fig11,
    collect_fig13,
    collect_fig14_siq_share,
    collect_fig17c,
    collect_mdp,
)
from repro.core import FIG11_ARCHES, FIG13_ARCHES

WORKLOADS = ("histogram", "dag_wide")


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(
        target_ops=1200,
        cache_dir=str(tmp_path_factory.mktemp("exp_cache")),
    )


def test_fig11_collector(runner):
    data = collect_fig11(runner, workloads=WORKLOADS)
    assert set(data) == set(FIG11_ARCHES)
    assert data["inorder"] == pytest.approx(1.0)
    assert all(v > 0 for v in data.values())


def test_fig13_collector(runner):
    data = collect_fig13(runner, workloads=WORKLOADS)
    assert set(data) == set(FIG13_ARCHES)


def test_fig14_collector(runner):
    share = collect_fig14_siq_share(runner, workloads=WORKLOADS)
    assert 0.0 < share < 1.0


def test_energy_collector(runner):
    data = collect_energy(runner, workloads=WORKLOADS)
    assert "ooo" in data and "ballerino" in data
    for entry in data.values():
        assert entry["total"] > 0
        assert entry["schedule"] > 0
        assert entry["seconds"] > 0
    assert data["ballerino"]["schedule"] < data["ooo"]["schedule"]


def test_fig17c_collector(runner):
    data = collect_fig17c(runner, workloads=WORKLOADS)
    assert set(data) == {3, 7, 11, 15}
    assert data[11] >= data[3] * 0.9


def test_mdp_collector(runner):
    data = collect_mdp(runner)
    assert data["violation_reduction"] > 0
    assert data["speedup"] > 0


def test_build_report_renders_markdown(monkeypatch, runner):
    """The report generator end to end, with stubbed collectors."""
    from repro.analysis import experiments

    fig11 = {arch: 2.0 for arch in FIG11_ARCHES}
    fig11["inorder"] = 1.0
    monkeypatch.setattr(experiments, "_fig11", lambda r, workloads=None: fig11)
    monkeypatch.setattr(
        experiments, "_fig13",
        lambda r, workloads=None: {arch: 1.8 for arch in FIG13_ARCHES},
    )
    monkeypatch.setattr(experiments, "_fig14", lambda r, workloads=None: 0.41)
    monkeypatch.setattr(
        experiments, "_energy",
        lambda r, workloads=None: {
            arch: {"total": 100.0, "schedule": 20.0, "seconds": 1.0}
            for arch in ("ces", "casino", "fxa", "ballerino",
                         "ballerino12", "ooo")
        },
    )
    monkeypatch.setattr(
        experiments, "_fig17c",
        lambda r, workloads=None: {3: 0.9, 7: 0.95, 11: 0.97, 15: 0.98},
    )
    monkeypatch.setattr(
        experiments, "_mdp",
        lambda r: {"speedup": 1.5, "violation_reduction": 0.96},
    )
    report = experiments.build_report(runner)
    assert report.startswith("# EXPERIMENTS")
    for heading in ("Figure 11", "Figure 13", "Figure 14",
                    "Figures 15 & 16", "Figure 17c", "SIII-B"):
        assert heading in report
    assert "41%" in report  # the stubbed S-IQ share made it into prose
