"""Cross-module integration tests: full simulations, checked end to end."""

import pytest

from repro import build_trace, config_for, simulate
from repro.analysis import ExperimentRunner, geomean
from repro.core import FIG11_ARCHES
from repro.energy import EnergyModel
from repro.workloads.suite import SMOKE_NAMES

ARCHES = ("inorder", "ooo", "ces", "casino", "fxa", "ballerino")


@pytest.mark.parametrize("arch", ARCHES)
@pytest.mark.parametrize("workload", SMOKE_NAMES)
def test_every_arch_commits_every_smoke_workload(arch, workload):
    trace = build_trace(workload, target_ops=1500)
    result = simulate(trace, config_for(arch))
    assert result.stats.committed == len(trace)
    assert result.cycles > 0
    assert 0 < result.ipc < 8.01


class TestCrossSchedulerConsistency:
    @pytest.fixture(scope="class")
    def results(self):
        trace = build_trace("dag_wide", target_ops=5000)
        return {arch: simulate(trace, config_for(arch)) for arch in ARCHES}

    def test_paper_performance_ordering(self, results):
        """InO slowest; OoO fastest; Ballerino between CASINO and OoO."""
        cycles = {arch: r.cycles for arch, r in results.items()}
        assert cycles["ooo"] <= cycles["ballerino"]
        assert cycles["ballerino"] <= cycles["casino"]
        assert cycles["ballerino"] <= cycles["inorder"]
        assert cycles["ces"] < cycles["inorder"]

    def test_same_commit_counts(self, results):
        counts = {r.stats.committed for r in results.values()}
        assert len(counts) == 1

    def test_energy_events_populated(self, results):
        for arch, result in results.items():
            events = result.stats.energy_events
            assert events["fetch"] > 0
            assert events["rename"] > 0
            assert events["prf_write"] > 0

    def test_ballerino_cheaper_wakeup_than_ooo(self, results):
        ooo = results["ooo"].stats.energy_events["wakeup_cam"]
        bal = results["ballerino"].stats.energy_events["wakeup_cam"]
        assert bal < ooo / 3


class TestHeadlineClaims:
    """Scaled-down versions of the paper's abstract-level claims."""

    @pytest.fixture(scope="class")
    def runner(self, tmp_path_factory):
        return ExperimentRunner(
            target_ops=4000,
            cache_dir=str(tmp_path_factory.mktemp("bench_cache")),
        )

    def test_ballerino12_within_a_few_percent_of_ooo(self, runner):
        ratios = []
        for workload in SMOKE_NAMES:
            ooo = runner.run_arch(workload, "ooo")
            b12 = runner.run_arch(workload, "ballerino12")
            ratios.append(ooo.cycles / b12.cycles)
        assert geomean(ratios) > 0.9

    def test_ballerino_more_energy_efficient_than_ooo(self, runner):
        model = EnergyModel()
        effs = []
        for workload in SMOKE_NAMES:
            ooo = model.evaluate(runner.run_arch(workload, "ooo"),
                                 config_for("ooo"))
            bal = model.evaluate(runner.run_arch(workload, "ballerino12"),
                                 config_for("ballerino12"))
            effs.append(bal.efficiency / ooo.efficiency)
        assert geomean(effs) > 1.0

    def test_all_fig11_arches_simulate(self, runner):
        for arch in FIG11_ARCHES:
            result = runner.run_arch("histogram", arch)
            assert result.stats.committed > 0


class TestRecoveryStress:
    def test_violation_heavy_workload_is_correct_everywhere(self):
        import dataclasses

        trace = build_trace("histogram", target_ops=4000)
        for arch in ("ooo", "ballerino"):
            cfg = dataclasses.replace(
                config_for(arch), mdp_enabled=False, name=f"{arch}-nomdp"
            )
            result = simulate(trace, cfg)
            assert result.stats.committed == len(trace)
            assert result.stats.order_violations > 0  # stress actually hit

    def test_mispredict_heavy_workload(self):
        trace = build_trace("branchy_count", target_ops=4000)
        for arch in ARCHES:
            result = simulate(trace, config_for(arch))
            assert result.stats.committed == len(trace)
            assert result.stats.branch_mispredicts > 0
