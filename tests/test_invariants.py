"""Pipeline-wide invariant checks under stress (debug mode)."""

import dataclasses

import pytest

from repro.core import config_for
from repro.core.pipeline import Pipeline
from repro.workloads import build_trace

ARCHES = ("inorder", "ooo", "ces", "casino", "fxa", "ballerino", "dnb")


@pytest.mark.parametrize("arch", ARCHES)
def test_invariants_hold_on_normal_execution(arch):
    trace = build_trace("mixed_int_fp", target_ops=1500)
    pipeline = Pipeline(trace, config_for(arch), check_invariants=True)
    result = pipeline.run()
    assert result.stats.committed == len(trace)


@pytest.mark.parametrize("arch", ("ooo", "ces", "ballerino", "dnb"))
def test_invariants_hold_under_violation_storm(arch):
    """No MDP: frequent memory-order squashes stress flush paths."""
    trace = build_trace("histogram", target_ops=2500)
    cfg = dataclasses.replace(
        config_for(arch), mdp_enabled=False, name=f"{arch}-nomdp"
    )
    pipeline = Pipeline(trace, cfg, check_invariants=True)
    result = pipeline.run()
    assert result.stats.committed == len(trace)
    assert result.stats.order_violations > 0


@pytest.mark.parametrize("arch", ("casino", "ballerino", "fxa"))
def test_invariants_hold_under_mispredict_storm(arch):
    trace = build_trace("branchy_count", target_ops=2500)
    pipeline = Pipeline(trace, config_for(arch), check_invariants=True)
    result = pipeline.run()
    assert result.stats.committed == len(trace)
    assert result.stats.branch_mispredicts > 10


def test_invariants_with_tiny_structures():
    """Every structural limit simultaneously tight."""
    trace = build_trace("histogram", target_ops=1200)
    cfg = dataclasses.replace(
        config_for("ballerino"),
        rob_size=12,
        lq_size=4,
        sq_size=3,
        phys_int=40,
        phys_fp=40,
        alloc_queue=4,
        name="ballerino-tiny",
    )
    pipeline = Pipeline(trace, cfg, check_invariants=True)
    result = pipeline.run()
    assert result.stats.committed == len(trace)
