"""Unit tests for the micro-op ISA."""

import pytest

from repro.isa import (
    DynOp,
    F,
    NUM_ARCH_REGS,
    NUM_INT_REGS,
    OPCODES,
    OpClass,
    R,
    ZERO,
    fp_reg,
    int_reg,
    is_fp,
    opcode,
    reg_name,
)


class TestOpcodes:
    def test_table_is_closed_and_consistent(self):
        for name, op in OPCODES.items():
            assert op.name == name
            assert op.latency >= 1

    def test_loads_read_memory(self):
        assert opcode("load").reads_memory
        assert opcode("fload").reads_memory
        assert not opcode("load").writes_memory

    def test_stores_write_memory(self):
        assert opcode("store").writes_memory
        assert opcode("fstore").writes_memory
        assert not opcode("store").reads_memory

    def test_branches(self):
        for name in ("beq", "bne", "blt", "bge", "jmp"):
            assert opcode(name).is_branch

    def test_divides_are_unpipelined(self):
        assert not opcode("div").pipelined
        assert not opcode("fdiv").pipelined
        assert not opcode("rem").pipelined

    def test_alu_is_single_cycle(self):
        for name in ("add", "sub", "xor", "mov", "li", "slt"):
            assert opcode(name).latency == 1
            assert opcode(name).pipelined

    def test_latency_ordering(self):
        # mul < div, fp add < fp div: the Table I latency relationships
        assert opcode("mul").latency < opcode("div").latency
        assert opcode("fadd").latency < opcode("fdiv").latency

    def test_unknown_opcode_raises(self):
        with pytest.raises(KeyError):
            opcode("bogus")

    def test_memory_class_flag(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.INT_ALU.is_memory


class TestRegisters:
    def test_int_and_fp_namespaces_disjoint(self):
        assert R[0] == 0
        assert F[0] == NUM_INT_REGS
        assert not is_fp(R[31])
        assert is_fp(F[0])

    def test_reg_name_round_trip(self):
        assert reg_name(R[7]) == "r7"
        assert reg_name(F[3]) == "f3"

    def test_zero_register(self):
        assert ZERO == R[0] == 0

    def test_bounds_checking(self):
        with pytest.raises(IndexError):
            R[32]
        with pytest.raises(IndexError):
            F[32]
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            fp_reg(-1)
        with pytest.raises(ValueError):
            reg_name(NUM_ARCH_REGS)

    def test_attribute_access(self):
        assert R.r5 == 5
        assert F.f1 == NUM_INT_REGS + 1
        with pytest.raises(AttributeError):
            R.x5


class TestDynOp:
    def _op(self, name, **kw):
        defaults = dict(seq=0, pc=0, opcode=opcode(name), dest=None, srcs=())
        defaults.update(kw)
        return DynOp(**defaults)

    def test_load_properties(self):
        op = self._op("load", dest=R[1], srcs=(R[2],), mem_addr=0x100)
        assert op.is_load and op.is_mem and not op.is_store

    def test_branch_next_pc_taken(self):
        op = self._op("bne", taken=True, target_pc=5, fallthrough_pc=11, pc=10)
        assert op.next_pc == 5

    def test_branch_next_pc_not_taken(self):
        op = self._op("bne", taken=False, target_pc=5, fallthrough_pc=11, pc=10)
        assert op.next_pc == 11

    def test_non_branch_next_pc(self):
        op = self._op("add", dest=R[1], srcs=(R[2], R[3]), fallthrough_pc=4, pc=3)
        assert op.next_pc == 4

    def test_immutable(self):
        op = self._op("add", dest=R[1], srcs=(R[2], R[3]))
        with pytest.raises(Exception):
            op.dest = R[5]

    def test_str_contains_mnemonic(self):
        op = self._op("load", dest=R[1], srcs=(R[2],), mem_addr=0x40)
        text = str(op)
        assert "load" in text and "r1" in text and "0x40" in text
