"""Tests for the workload kernels and the suite."""

import pytest

from repro.workloads import KERNELS, SUITE_NAMES, build_trace, default_suite, get_trace
from repro.workloads.suite import SMOKE_NAMES


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_builds_and_traces(name):
    trace = build_trace(name, target_ops=1500)
    assert len(trace) >= 64
    assert len(trace) <= 1500
    # every kernel must exercise memory and control flow
    assert trace.num_branches > 0
    if name != "spill_fill":
        assert trace.num_loads > 0


def test_suite_names_are_the_in_suite_kernels():
    assert set(SUITE_NAMES) == {
        name for name, spec in KERNELS.items() if spec.in_suite
    }
    assert len(SUITE_NAMES) == 13
    assert set(SMOKE_NAMES) <= set(SUITE_NAMES)


def test_extra_kernels_exist_but_stay_out_of_the_suite():
    extras = {name for name, spec in KERNELS.items() if not spec.in_suite}
    assert {"binary_search", "transpose_blocks", "crc_chain"} <= extras
    assert not extras & set(SUITE_NAMES)


def test_crc_chain_is_serial():
    from repro.analysis.dataflow import analyze

    trace = build_trace("crc_chain", target_ops=2000)
    report = analyze(trace)
    assert report.ideal_ipc < 3.0  # dominated by the serial xor chain


def test_binary_search_branches_are_hard():
    trace = build_trace("binary_search", target_ops=4000)
    cond = [op for op in trace if op.is_branch and op.opcode.name == "blt"]
    takens = sum(1 for op in cond if op.taken)
    assert 0.15 < takens / len(cond) < 0.85


def test_trace_length_scales_with_target():
    short = build_trace("stream_triad", target_ops=1000)
    long = build_trace("stream_triad", target_ops=4000)
    assert len(long) > 2 * len(short)


def test_traces_are_seed_deterministic():
    t1 = build_trace("hash_probe", target_ops=1000, seed=3)
    t2 = build_trace("hash_probe", target_ops=1000, seed=3)
    assert [op.mem_addr for op in t1] == [op.mem_addr for op in t2]


def test_different_seeds_change_data_dependent_traces():
    t1 = build_trace("pointer_chase", target_ops=1000, seed=1)
    t2 = build_trace("pointer_chase", target_ops=1000, seed=2)
    addrs1 = [op.mem_addr for op in t1 if op.is_load]
    addrs2 = [op.mem_addr for op in t2 if op.is_load]
    assert addrs1 != addrs2


def test_pointer_chase_is_serial():
    """Each load's address equals the previous load's value (same chain)."""
    trace = build_trace("pointer_chase", target_ops=1000)
    load_addrs = [op.mem_addr for op in trace if op.is_load]
    # a randomly permuted chain never repeats a node within the walk
    assert len(set(load_addrs)) == len(load_addrs)


def test_histogram_has_store_load_aliasing():
    trace = build_trace("histogram", target_ops=2000)
    store_addrs = {op.mem_addr for op in trace if op.is_store}
    load_addrs = [op.mem_addr for op in trace if op.is_load]
    aliased = sum(1 for addr in load_addrs if addr in store_addrs)
    assert aliased > len(load_addrs) * 0.2


def test_stream_triad_is_unit_stride():
    trace = build_trace("stream_triad", target_ops=1500)
    loads = [op.mem_addr for op in trace if op.is_load]
    region_b = sorted(a for a in loads if a < 0x100_0000)
    deltas = {b - a for a, b in zip(region_b, region_b[1:])}
    assert deltas == {8}


def test_dag_wide_has_parallel_loads():
    trace = build_trace("dag_wide", target_ops=2000)
    assert trace.load_fraction > 0.2


def test_gather_stride_spreads_lines():
    trace = build_trace("gather_stride", target_ops=1000)
    assert trace.memory_footprint() > 100


def test_spill_fill_reuses_one_line():
    trace = build_trace("spill_fill", target_ops=1000)
    assert trace.memory_footprint() == 1


def test_get_trace_is_cached():
    a = get_trace("matmul_tile", 1000, 7)
    b = get_trace("matmul_tile", 1000, 7)
    assert a is b


def test_default_suite_returns_all():
    traces = default_suite(target_ops=1000, names=SMOKE_NAMES)
    assert [t.name for t in traces] == list(SMOKE_NAMES)


def test_branchy_count_branches_are_data_dependent():
    trace = build_trace("branchy_count", target_ops=2000)
    # the threshold branch should be taken a non-trivial mixed fraction
    cond = [op for op in trace if op.is_branch and op.opcode.name == "blt"]
    takens = sum(1 for op in cond if op.taken)
    assert 0.2 < takens / len(cond) < 0.9
